//! Invariants of the delay decomposition over *real* simulated corpora —
//! randomized across seeds and job shapes as seeded loops (each case is a
//! full simulation; the case budget is kept deliberately small). These are
//! the algebraic guarantees downstream analyses rely on.

use simkit::{Millis, SimRng};
use sparksim::{profiles, simulate, JobSpec};
use yarnsim::ClusterConfig;

fn run_job(spec: JobSpec, seed: u64) -> sdchecker::Analysis {
    let (logs, summaries) = simulate(
        ClusterConfig::default(),
        seed,
        vec![(Millis(50), spec)],
        Millis::from_mins(600),
    );
    assert_eq!(summaries.len(), 1, "job must complete");
    sdchecker::analyze_store(&logs)
}

/// For any completed Spark job: the decomposition identities hold.
#[test]
fn spark_delay_algebra() {
    for case in 0..24u64 {
        let mut rng = SimRng::new(0xDEC0 + case);
        let seed = rng.range(1, 5_000);
        let executors = rng.range(1, 10) as u32;
        let input_kb = rng.range(64, 8_192); // 64 MB .. 8 GB
        let files = rng.below(12) as u32;
        let parallel = rng.chance(0.5);

        let mut spec = profiles::spark_sql_default(input_kb as f64, executors);
        spec.user_init.files = files;
        spec.user_init.parallel = parallel;
        let an = run_job(spec, seed);
        let d = &an.delays[0];

        // Everything measured.
        let total = d.total_ms.expect("total");
        let am = d.am_ms.expect("am");
        let inn = d.in_app_ms.expect("in");
        let out = d.out_app_ms.expect("out");
        let driver = d.driver_ms.expect("driver");
        let executor = d.executor_ms.expect("executor");
        let cf = d.cf_ms.expect("cf");
        let cl = d.cl_ms.expect("cl");
        let runtime = d.job_runtime_ms.expect("runtime");

        // Algebra.
        assert_eq!(inn, driver + executor, "case {case}");
        assert_eq!(total, inn + out, "case {case}: in+out must equal total");
        assert!(am <= total, "case {case}: am {am} > total {total}");
        assert!(cf <= cl, "case {case}: cf {cf} > cl {cl}");
        assert!(
            cf <= total,
            "case {case}: first executor up before first task"
        );
        assert!(
            total <= runtime,
            "case {case}: scheduling ends before the job does"
        );
        assert!(d.total_over_runtime().unwrap() <= 1.0, "case {case}");

        // Containers: 1 AM + `executors` workers, each fully decomposed.
        assert_eq!(d.containers.len(), executors as usize + 1, "case {case}");
        for c in &d.containers {
            let acq = c.acquisition_ms.expect("acquisition");
            assert!(
                acq <= 1_000,
                "case {case}: acquisition {acq} beyond AM heartbeat"
            );
            let loc = c.localization_ms.expect("localization");
            // Either a real download (≥ 500 MB at ≤ 1 MB/ms) or a same-node
            // cache hit (near-instant).
            assert!(
                !(100..450).contains(&loc),
                "case {case}: localization {loc}ms is neither a download nor a cache hit"
            );
            let launch = c.launching_ms.expect("launching");
            assert!(launch > 0, "case {case}");
            let q = c.nm_queue_ms.expect("handoff");
            assert!(
                q <= 100,
                "case {case}: guaranteed containers never queue: {q}ms"
            );
        }
    }
}

/// Bug emulation invariant: exactly `extra` containers per app are
/// wasted, never the needed ones, across schedulers.
#[test]
fn overallocation_always_detected() {
    for case in 0..24u64 {
        let mut rng = SimRng::new(0xDEC1 + case);
        let seed = rng.range(1, 5_000);
        let extra = rng.range(1, 4) as u32;
        let opportunistic = rng.chance(0.5);

        let mut spec = profiles::spark_sql_default(2048.0, 3);
        spec.overalloc_extra = extra;
        let cfg = if opportunistic {
            ClusterConfig::default().with_opportunistic()
        } else {
            ClusterConfig::default()
        };
        let (logs, summaries) =
            simulate(cfg, seed, vec![(Millis(50), spec)], Millis::from_mins(600));
        assert_eq!(summaries.len(), 1, "case {case}");
        let an = sdchecker::analyze_store(&logs);
        assert_eq!(
            an.unused_containers.len(),
            extra as usize,
            "case {case}: every extra container must be flagged"
        );
        for u in &an.unused_containers {
            assert!(
                !u.reached_nm,
                "case {case}: wasted containers never reach an NM"
            );
        }
    }
}

/// Localization caching: with the cache disabled, localization can
/// only get slower in aggregate (ablation from DESIGN.md).
#[test]
fn cache_ablation_never_speeds_up() {
    for case in 0..12u64 {
        let mut rng = SimRng::new(0xDEC2 + case);
        let seed = rng.range(1, 2_000);
        // Single node so executors *must* colocate with the driver and
        // the cache matters.
        let mk_cfg = |cache: bool| ClusterConfig {
            nodes: 1,
            localization_cache: cache,
            ..ClusterConfig::default()
        };
        let spec = profiles::spark_sql_default(512.0, 2);
        let run = |cache: bool| {
            let (logs, _) = simulate(
                mk_cfg(cache),
                seed,
                vec![(Millis(50), spec.clone())],
                Millis::from_mins(600),
            );
            let an = sdchecker::analyze_store(&logs);
            an.delays[0]
                .containers
                .iter()
                .filter_map(|c| c.localization_ms)
                .sum::<u64>()
        };
        let with_cache = run(true);
        let without = run(false);
        assert!(
            without >= with_cache,
            "case {case}: disabling the cache cannot reduce total localization: {without} < {with_cache}"
        );
    }
}
