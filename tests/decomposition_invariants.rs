//! Invariants of the delay decomposition over *real* simulated corpora —
//! randomized across seeds and job shapes with proptest. These are the
//! algebraic guarantees downstream analyses rely on.

use proptest::prelude::*;
use simkit::Millis;
use sparksim::{profiles, simulate, JobSpec};
use yarnsim::ClusterConfig;

fn run_job(spec: JobSpec, seed: u64) -> sdchecker::Analysis {
    let (logs, summaries) = simulate(
        ClusterConfig::default(),
        seed,
        vec![(Millis(50), spec)],
        Millis::from_mins(600),
    );
    assert_eq!(summaries.len(), 1, "job must complete");
    sdchecker::analyze_store(&logs)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full simulation; keep the budget sane
        .. ProptestConfig::default()
    })]

    /// For any completed Spark job: the decomposition identities hold.
    #[test]
    fn spark_delay_algebra(
        seed in 1u64..5_000,
        executors in 1u32..10,
        input_kb in 64u64..8_192, // 64 MB .. 8 GB
        files in 0u32..12,
        parallel in any::<bool>(),
    ) {
        let mut spec = profiles::spark_sql_default(input_kb as f64, executors);
        spec.user_init.files = files;
        spec.user_init.parallel = parallel;
        let an = run_job(spec, seed);
        let d = &an.delays[0];

        // Everything measured.
        let total = d.total_ms.expect("total");
        let am = d.am_ms.expect("am");
        let inn = d.in_app_ms.expect("in");
        let out = d.out_app_ms.expect("out");
        let driver = d.driver_ms.expect("driver");
        let executor = d.executor_ms.expect("executor");
        let cf = d.cf_ms.expect("cf");
        let cl = d.cl_ms.expect("cl");
        let runtime = d.job_runtime_ms.expect("runtime");

        // Algebra.
        prop_assert_eq!(inn, driver + executor);
        prop_assert_eq!(total, inn + out, "in+out must equal total");
        prop_assert!(am <= total, "am {am} > total {total}");
        prop_assert!(cf <= cl, "cf {cf} > cl {cl}");
        prop_assert!(cf <= total, "first executor up before first task");
        prop_assert!(total <= runtime, "scheduling ends before the job does");
        prop_assert!(d.total_over_runtime().unwrap() <= 1.0);

        // Containers: 1 AM + `executors` workers, each fully decomposed.
        prop_assert_eq!(d.containers.len(), executors as usize + 1);
        for c in &d.containers {
            let acq = c.acquisition_ms.expect("acquisition");
            prop_assert!(acq <= 1_000, "acquisition {acq} beyond AM heartbeat");
            let loc = c.localization_ms.expect("localization");
            // Either a real download (≥ 500 MB at ≤ 1 MB/ms) or a same-node
            // cache hit (near-instant).
            prop_assert!(
                !(100..450).contains(&loc),
                "localization {loc}ms is neither a download nor a cache hit"
            );
            let launch = c.launching_ms.expect("launching");
            prop_assert!(launch > 0);
            let q = c.nm_queue_ms.expect("handoff");
            prop_assert!(q <= 100, "guaranteed containers never queue: {q}ms");
        }
    }

    /// Bug emulation invariant: exactly `extra` containers per app are
    /// wasted, never the needed ones, across schedulers.
    #[test]
    fn overallocation_always_detected(
        seed in 1u64..5_000,
        extra in 1u32..4,
        opportunistic in any::<bool>(),
    ) {
        let mut spec = profiles::spark_sql_default(2048.0, 3);
        spec.overalloc_extra = extra;
        let cfg = if opportunistic {
            ClusterConfig::default().with_opportunistic()
        } else {
            ClusterConfig::default()
        };
        let (logs, summaries) = simulate(cfg, seed, vec![(Millis(50), spec)], Millis::from_mins(600));
        prop_assert_eq!(summaries.len(), 1);
        let an = sdchecker::analyze_store(&logs);
        prop_assert_eq!(an.unused_containers.len(), extra as usize,
            "every extra container must be flagged");
        for u in &an.unused_containers {
            prop_assert!(!u.reached_nm, "wasted containers never reach an NM");
        }
    }

    /// Localization caching: with the cache disabled, localization can
    /// only get slower in aggregate (ablation from DESIGN.md).
    #[test]
    fn cache_ablation_never_speeds_up(seed in 1u64..2_000) {
        // Single node so executors *must* colocate with the driver and
        // the cache matters.
        let mk_cfg = |cache: bool| ClusterConfig {
            nodes: 1,
            localization_cache: cache,
            ..ClusterConfig::default()
        };
        let spec = profiles::spark_sql_default(512.0, 2);
        let run = |cache: bool| {
            let (logs, _) = simulate(mk_cfg(cache), seed, vec![(Millis(50), spec.clone())], Millis::from_mins(600));
            let an = sdchecker::analyze_store(&logs);
            an.delays[0]
                .containers
                .iter()
                .filter_map(|c| c.localization_ms)
                .sum::<u64>()
        };
        let with_cache = run(true);
        let without = run(false);
        prop_assert!(without >= with_cache,
            "disabling the cache cannot reduce total localization: {without} < {with_cache}");
    }
}
