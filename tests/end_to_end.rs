//! Cross-crate integration: simulator → on-disk log corpus → SDchecker,
//! exactly the offline workflow the paper describes (§III-B: "users first
//! need to run a bunch of data analytics applications ... After these
//! applications complete, SDchecker is able to collect both Yarn's logs
//! and applications' logs").

use logmodel::LogSource;
use sdchecker::EventKind;
use simkit::{Millis, SimRng};
use sparksim::{profiles, simulate};
use workloads::{tpch_stream, TraceParams};
use yarnsim::ClusterConfig;

fn small_trace(n: usize, seed: u64) -> (logmodel::LogStore, Vec<sparksim::JobSummary>) {
    let mut rng = SimRng::new(seed);
    let arrivals = tpch_stream(n, 2048.0, 4, &TraceParams::moderate(), &mut rng);
    simulate(
        ClusterConfig::default(),
        seed,
        arrivals,
        Millis::from_mins(240),
    )
}

#[test]
fn disk_roundtrip_preserves_analysis() {
    let (logs, summaries) = small_trace(12, 404);
    assert_eq!(summaries.len(), 12);

    let dir = std::env::temp_dir().join(format!("sdchecker_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    logs.write_dir(&dir).unwrap();

    let from_disk = sdchecker::analyze_dir(&dir).unwrap();
    let in_memory = sdchecker::analyze_store(&logs);
    assert_eq!(from_disk.events.len(), in_memory.events.len());
    assert_eq!(from_disk.delays.len(), in_memory.delays.len());
    for (a, b) in from_disk.delays.iter().zip(in_memory.delays.iter()) {
        assert_eq!(a.app, b.app);
        assert_eq!(a.total_ms, b.total_ms);
        assert_eq!(a.am_ms, b.am_ms);
        assert_eq!(a.in_app_ms, b.in_app_ms);
        assert_eq!(a.containers.len(), b.containers.len());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_table1_event_kind_appears_in_a_real_corpus() {
    let (logs, _) = small_trace(8, 505);
    let analysis = sdchecker::analyze_store(&logs);
    use EventKind::*;
    for kind in [
        AppSubmitted,
        AppAccepted,
        AttemptRegistered,
        ContainerAllocated,
        ContainerAcquired,
        ContainerLocalizing,
        ContainerScheduled,
        ContainerNmRunning,
        DriverFirstLog,
        DriverRegistered,
        StartAllo,
        EndAllo,
        ExecutorFirstLog,
        TaskAssigned,
    ] {
        assert!(
            analysis.events.iter().any(|e| e.kind == kind),
            "Table-I message {kind:?} (#{:?}) missing from the corpus",
            kind.table1_number()
        );
    }
}

#[test]
fn sdchecker_job_runtime_matches_simulator_ground_truth() {
    let (logs, summaries) = small_trace(6, 606);
    let analysis = sdchecker::analyze_store(&logs);
    for s in &summaries {
        let d = analysis.delays_of(s.app).expect("app analyzed");
        let measured = d.job_runtime_ms.expect("runtime measured");
        let truth = s.runtime().as_u64();
        // The log-derived runtime starts at SUBMITTED (a few ms after
        // client submission) and ends at AM unregistration: within 100 ms
        // of ground truth.
        assert!(
            truth.abs_diff(measured) < 100,
            "app {}: log runtime {measured}ms vs ground truth {truth}ms",
            s.app
        );
    }
}

#[test]
fn full_run_determinism_across_processes_shape() {
    // Byte-identical logs for identical (config, seed, arrivals).
    let (a, _) = small_trace(10, 707);
    let (b, _) = small_trace(10, 707);
    let la: Vec<_> = a.iter_lines().collect();
    let lb: Vec<_> = b.iter_lines().collect();
    assert_eq!(la, lb);
}

#[test]
fn per_app_log_files_exist_per_container() {
    let (logs, summaries) = small_trace(5, 808);
    for s in &summaries {
        assert!(
            logs.records(LogSource::Driver(s.app)).len() >= 4,
            "driver log must hold first-log, REGISTER, START/END_ALLO"
        );
        let exec_logs = logs
            .sources()
            .filter(|src| matches!(src, LogSource::Executor(c) if c.app() == s.app))
            .count();
        assert_eq!(exec_logs, 4, "one log per executor container");
    }
}

#[test]
fn mixed_framework_corpus_analyzes_cleanly() {
    // Spark + MapReduce + interference in one corpus: analysis must not
    // confuse populations (MR jobs have no total, Spark jobs do).
    let arrivals = vec![
        (Millis(100), profiles::spark_sql_default(2048.0, 4)),
        (Millis(200), profiles::mr_wordcount(1024.0)),
        (Millis(300), profiles::dfsio(4, 0.2)),
        (Millis(400), profiles::spark_wordcount(1024.0, 2)),
    ];
    let (logs, summaries) = simulate(
        ClusterConfig::default(),
        909,
        arrivals,
        Millis::from_mins(240),
    );
    assert_eq!(summaries.len(), 4, "all four jobs complete");
    let analysis = sdchecker::analyze_store(&logs);
    assert_eq!(analysis.graphs.len(), 4);
    let complete = analysis.complete_delays().count();
    assert_eq!(
        complete, 2,
        "only the two Spark jobs have first-task evidence"
    );
    // MR jobs still decompose their container-level delays.
    let mr_app = summaries.iter().find(|s| s.kind == "mr-wc").unwrap().app;
    let mr = analysis.delays_of(mr_app).unwrap();
    assert!(mr.total_ms.is_none());
    assert!(mr.am_ms.is_some(), "MR AM delay is measurable from RM logs");
    assert!(mr
        .containers
        .iter()
        .all(|c| c.localization_ms.is_some() && c.launching_ms.is_some()));
}

#[test]
fn full_report_covers_corpus() {
    let (logs, summaries) = small_trace(4, 1010);
    let analysis = sdchecker::analyze_store(&logs);
    let report = sdchecker::full_report(&analysis);
    assert!(report.contains("applications: 4 (4 with complete scheduling-delay evidence)"));
    assert!(report.contains("total sched delay"));
    assert!(report.contains("executor delay"));
    assert!(report.contains("no allocated-but-never-used containers"));
    let _ = summaries;
}
