//! Properties of the critical-path extraction and the fleet quantile
//! sketches over *real* simulated corpora — seeded loops like
//! `decomposition_invariants`, each case a full simulation.

use obs::QuantileSketch;
use sdchecker::{critical_path, Summary};
use simkit::{Millis, SimRng};
use sparksim::simulate;
use workloads::{tpch_stream, TraceParams};
use yarnsim::ClusterConfig;

/// For every completed application in a simulated corpus: the critical
/// path is a monotone, contiguous tiling of submitted → first task whose
/// segment boundaries are real graph events and whose durations sum to
/// the decomposed end-to-end scheduling delay.
#[test]
fn critical_path_tiles_the_delay_across_corpora() {
    for case in 0..8u64 {
        let mut rng = SimRng::new(0xC217 + case);
        let seed = rng.range(1, 5_000);
        let queries = rng.range(3, 8) as usize;
        let executors = rng.range(1, 6) as u32;
        let opportunistic = rng.chance(0.5);

        let arrivals = tpch_stream(
            queries,
            2048.0,
            executors,
            &TraceParams::moderate(),
            &mut rng,
        );
        let cfg = if opportunistic {
            ClusterConfig::default().with_opportunistic()
        } else {
            ClusterConfig::default()
        };
        let (logs, _) = simulate(cfg, seed, arrivals, Millis::from_mins(600));
        let an = sdchecker::analyze_store(&logs);
        assert_eq!(an.graphs.len(), queries, "case {case}");

        for d in &an.delays {
            let g = &an.graphs[&d.app];
            let Some(total) = d.total_ms else {
                assert!(
                    critical_path(g).is_none(),
                    "case {case}: path without a first task"
                );
                continue;
            };
            let p =
                critical_path(g).unwrap_or_else(|| panic!("case {case}: no path for {}", d.app));
            assert_eq!(p.total_ms, total, "case {case}");
            assert!(!p.segments.is_empty(), "case {case}");

            // Monotone and contiguous: each segment starts where the
            // previous one ended, and time never flows backwards.
            for seg in &p.segments {
                assert!(seg.from <= seg.to, "case {case}: {seg:?}");
            }
            for w in p.segments.windows(2) {
                assert_eq!(w[0].to, w[1].from, "case {case}: gap in the tiling");
            }

            // The tiling covers submitted → first task exactly, so the
            // durations sum to the decomposed total delay.
            let sum: u64 = p.segments.iter().map(|s| s.dur_ms()).sum();
            assert_eq!(sum, total, "case {case}: tiling must sum to total");
            let blame: f64 = p.segments.iter().map(|s| p.blame_pct(s)).sum();
            assert!(
                (blame - 100.0).abs() < 1e-6,
                "case {case}: blame sums to {blame}%"
            );

            // Every segment boundary is the timestamp of a real event in
            // the scheduling graph — no invented instants.
            let mut event_ts: Vec<logmodel::TsMs> = g.app_events.iter().map(|(_, t)| *t).collect();
            for c in g.containers.values() {
                event_ts.extend(c.events.iter().map(|(_, t)| *t));
            }
            for seg in &p.segments {
                for t in [seg.from, seg.to] {
                    assert!(
                        event_ts.contains(&t),
                        "case {case}: boundary {t:?} is not a graph event"
                    );
                }
            }
        }
    }
}

/// Fleet-sketch acceptance: on a 1 000-app population, the streaming
/// sketch's percentiles match the exact `Summary` percentiles within 1 %,
/// no matter how the stream is sharded or in what order shards merge.
#[test]
fn sketch_matches_exact_summary_on_1k_apps() {
    // Per-app scheduling delays spanning the realistic range (sub-second
    // to minutes), heavy-tailed like the paper's populations.
    let mut rng = SimRng::new(0x5CE7C4);
    let values: Vec<u64> = (0..1_000)
        .map(|_| {
            let base = rng.range(300, 30_000);
            if rng.chance(0.1) {
                base * rng.range(2, 10) // tail
            } else {
                base
            }
        })
        .collect();
    let exact = Summary::from_ms(&values).unwrap();

    let check = |s: &QuantileSketch, what: &str| {
        for (q, want_s) in [(0.5, exact.p50), (0.95, exact.p95), (0.99, exact.p99)] {
            let got_s = s.quantile(q).unwrap() / 1_000.0; // ms → s like Summary
            let rel = (got_s - want_s).abs() / want_s;
            assert!(
                rel <= 0.01,
                "{what}: p{} off by {:.3}% ({got_s} vs {want_s})",
                q * 100.0,
                rel * 100.0
            );
        }
        assert_eq!(s.count(), 1_000, "{what}");
        assert_eq!(s.min(), Some(*values.iter().min().unwrap()), "{what}");
        assert_eq!(s.max(), Some(*values.iter().max().unwrap()), "{what}");
    };

    // Single stream.
    let mut single = QuantileSketch::new();
    for v in &values {
        single.observe(*v);
    }
    check(&single, "single stream");

    // Sharded round-robin across varying worker counts, merged forward
    // and backward: identical to the single stream, bit for bit.
    for shards in [2usize, 3, 7, 16] {
        let mut parts = vec![QuantileSketch::new(); shards];
        for (i, v) in values.iter().enumerate() {
            parts[i % shards].observe(*v);
        }
        let mut fwd = QuantileSketch::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = QuantileSketch::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, single, "{shards} shards (forward merge)");
        assert_eq!(rev, single, "{shards} shards (reverse merge)");
        check(&fwd, &format!("{shards} shards"));
    }
}
