//! Umbrella crate for the SDchecker reproduction.
//!
//! Re-exports the public surface of every sub-crate so the repository's
//! examples and integration tests have a single import root; see the
//! individual crates for the real APIs:
//!
//! * [`sdchecker`] — the paper's log-mining tool (the contribution);
//! * [`simkit`] — the discrete-event simulation kernel;
//! * [`logmodel`] — log syntax, global IDs, log stores;
//! * [`yarnsim`] — the YARN-like cluster substrate;
//! * [`sparksim`] — the Spark/MapReduce application layer;
//! * [`workloads`] — TPC-H profiles and trace generation;
//! * [`experiments`] — the per-figure/table reproduction harness.

pub use experiments;
pub use logmodel;
pub use sdchecker;
pub use simkit;
pub use sparksim;
pub use workloads;
pub use yarnsim;

/// Convenience: simulate the paper's default setup (one 2 GB TPC-H-like
/// query, 4 executors) and analyze it — the five-line demo.
///
/// ```
/// let (delays, summary) = sdchecker_repro::demo(42);
/// assert!(delays.total_ms.unwrap() > 5_000);
/// assert_eq!(summary.kind, "spark-sql");
/// ```
pub fn demo(seed: u64) -> (sdchecker::AppDelays, sparksim::JobSummary) {
    let (logs, mut summaries) = sparksim::simulate(
        yarnsim::ClusterConfig::default(),
        seed,
        vec![(
            simkit::Millis(100),
            sparksim::profiles::spark_sql_default(2048.0, 4),
        )],
        simkit::Millis::from_mins(60),
    );
    let analysis = sdchecker::analyze_store(&logs);
    let summary = summaries.remove(0);
    let delays = analysis
        .delays_of(summary.app)
        .expect("analyzed the only app")
        .clone();
    (delays, summary)
}
