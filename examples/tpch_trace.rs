//! A production-like query stream: the paper's "short trace" — 200 TPC-H
//! queries arriving in google-trace-style bursts — analyzed end to end.
//!
//! Prints the Figure-4-style overall delay breakdown plus a per-query
//! table of the slowest jobs, showing how individual queries decompose.
//!
//! ```sh
//! cargo run --release --example tpch_trace [n_queries] [seed]
//! ```

use sdchecker::{analyze_store, cdf_table, summary_table, Table};
use simkit::SimRng;
use sparksim::simulate;
use workloads::{tpch_stream, TraceParams};
use yarnsim::ClusterConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(200);
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2018);

    let mut rng = SimRng::new(seed);
    let arrivals = tpch_stream(n, 2048.0, 4, &TraceParams::moderate(), &mut rng);
    let span = arrivals.last().unwrap().0;
    println!("submitting {n} TPC-H queries over {span} of simulated time...");

    let t0 = std::time::Instant::now();
    let (logs, summaries) = simulate(
        ClusterConfig::default(),
        seed,
        arrivals,
        simkit::Millis::from_mins(12 * 60),
    );
    println!(
        "simulated {} completed jobs, {} log records, in {:.2?} wall time",
        summaries.len(),
        logs.total_records(),
        t0.elapsed()
    );

    let an = analyze_store(&logs);
    let series: Vec<(&str, Vec<u64>)> = vec![
        ("job runtime", an.component_ms(|d| d.job_runtime_ms)),
        ("total", an.component_ms(|d| d.total_ms)),
        ("am", an.component_ms(|d| d.am_ms)),
        ("in", an.component_ms(|d| d.in_app_ms)),
        ("out", an.component_ms(|d| d.out_app_ms)),
    ];
    println!("\nOverall delays (seconds):");
    print!("{}", summary_table(&series).render());
    println!("\nCDF quantiles (seconds):");
    print!(
        "{}",
        cdf_table(&series, &[0.25, 0.5, 0.75, 0.9, 0.95, 0.99]).render()
    );

    // The five worst queries by total scheduling delay, decomposed.
    let mut worst: Vec<_> = an.delays.iter().filter(|d| d.total_ms.is_some()).collect();
    worst.sort_by_key(|d| std::cmp::Reverse(d.total_ms));
    let mut t = Table::new(&["app", "query", "total(s)", "am(s)", "in(s)", "out(s)"]);
    for d in worst.iter().take(5) {
        let label = summaries
            .iter()
            .find(|s| s.app == d.app)
            .map(|s| s.label.clone())
            .unwrap_or_default();
        let sec = |v: Option<u64>| {
            v.map(|x| format!("{:.2}", x as f64 / 1000.0))
                .unwrap_or_default()
        };
        t.row(vec![
            d.app.seq.to_string(),
            label,
            sec(d.total_ms),
            sec(d.am_ms),
            sec(d.in_app_ms),
            sec(d.out_app_ms),
        ]);
    }
    println!("\nSlowest-scheduled queries:");
    print!("{}", t.render());
}
