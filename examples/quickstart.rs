//! Quickstart: simulate one Spark-SQL query on the cluster, write the log
//! corpus to disk, and run SDchecker over it — the complete pipeline the
//! paper describes, in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use simkit::Millis;
use sparksim::{profiles, simulate};
use yarnsim::ClusterConfig;

fn main() {
    // 1. Run a TPC-H-like Spark-SQL job (2 GB input, 4 executors — the
    //    paper's default) on the simulated 25-node YARN cluster.
    let job = profiles::spark_sql_default(2048.0, 4);
    let (logs, summaries) = simulate(
        ClusterConfig::default(),
        42,
        vec![(Millis(100), job)],
        Millis::from_mins(60),
    );
    let s = &summaries[0];
    println!(
        "job {} finished: runtime {}, {} log records across {} log files",
        s.label,
        s.runtime(),
        logs.total_records(),
        logs.sources().count()
    );

    // 2. Flush the logs as a directory tree shaped like a real cluster
    //    log collection...
    let dir = std::env::temp_dir().join("sdchecker-quickstart-logs");
    let _ = std::fs::remove_dir_all(&dir);
    logs.write_dir(&dir).expect("write logs");
    println!("wrote log corpus to {}", dir.display());

    // 3. ...and mine them offline with SDchecker (this is exactly what
    //    the `sdchecker` CLI binary does).
    let analysis = sdchecker::analyze_dir(&dir).expect("analyze logs");
    print!("{}", sdchecker::full_report(&analysis));

    // 4. The per-application decomposition is available programmatically.
    let d = analysis.delays_of(s.app).expect("analyzed app");
    println!("\ndecomposition of {}:", s.app);
    for (name, v) in [
        ("total ", d.total_ms),
        ("am    ", d.am_ms),
        ("in    ", d.in_app_ms),
        ("out   ", d.out_app_ms),
        ("driver", d.driver_ms),
        ("exec  ", d.executor_ms),
        ("alloc ", d.alloc_ms),
    ] {
        if let Some(ms) = v {
            println!("  {name} {:>8.3}s", ms as f64 / 1000.0);
        }
    }
}
