//! Reproduce the paper's §V-A bug finding: SDchecker discovers
//! SPARK-21562 (Spark over-requesting containers under the opportunistic
//! scheduler) purely from log evidence — containers with RM states but no
//! executor log.
//!
//! ```sh
//! cargo run --release --example bug_hunt
//! ```

use experiments::{bug_finding, Scale};

fn main() {
    let clean = bug_finding::scenario(0, Scale::Quick, 5);
    let buggy = bug_finding::scenario(2, Scale::Quick, 5);

    println!(
        "clean run : {} apps, {} allocated-but-never-used containers",
        clean.analysis.graphs.len(),
        clean.analysis.unused_containers.len()
    );
    println!(
        "buggy run : {} apps, {} allocated-but-never-used containers",
        buggy.analysis.graphs.len(),
        buggy.analysis.unused_containers.len()
    );

    println!("\nflagged containers (first 8):");
    for u in buggy.analysis.unused_containers.iter().take(8) {
        println!(
            "  {}  acquired={} reached_nm={}",
            u.cid, u.acquired, u.reached_nm
        );
    }
    println!(
        "\nSignature (paper §V-A): RM logs show ALLOCATED/ACQUIRED, but log \
         messages 13 (executor first log) and 14 (first task) never appear \
         — Spark requested more containers than its actual demand."
    );

    // Show the scheduling graph of one buggy application as DOT.
    if let Some(u) = buggy.analysis.unused_containers.first() {
        if let Some(g) = buggy.analysis.graphs.get(&u.app) {
            let path = std::env::temp_dir().join("sdchecker-bug-graph.dot");
            std::fs::write(&path, g.to_dot()).expect("write dot");
            println!(
                "\nwrote the affected app's scheduling graph to {}",
                path.display()
            );
        }
    }
}
