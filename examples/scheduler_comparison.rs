//! Centralized vs distributed scheduling (the paper's Fig 7 scenario):
//! run the same query stream under the Capacity Scheduler and under the
//! opportunistic scheduler, on an idle and a loaded cluster, and compare
//! allocation latency against queueing risk.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison
//! ```

use experiments::fig7;
use experiments::Scale;
use sdchecker::{summary_table, Summary};

fn main() {
    let scale = Scale::Quick;
    let seed = 7;

    println!("== idle cluster: allocation delay (START_ALLO -> END_ALLO) ==");
    let ce = fig7::scenario_alloc(false, scale, seed);
    let de = fig7::scenario_alloc(true, scale, seed);
    let alloc: Vec<(&str, Vec<u64>)> = vec![
        ("centralized", ce.ms(|d| d.alloc_ms)),
        ("distributed", de.ms(|d| d.alloc_ms)),
    ];
    print!("{}", summary_table(&alloc).render());
    if let (Some(c), Some(d)) = (Summary::from_ms(&alloc[0].1), Summary::from_ms(&alloc[1].1)) {
        println!(
            "-> distributed allocates {:.0}x faster at the median (paper: ~80x)\n",
            c.p50 / d.p50.max(1e-9)
        );
    }

    println!("== loaded cluster: NM-side queueing (SCHEDULED -> RUNNING) ==");
    let ceq = fig7::scenario_queueing(false, scale, seed);
    let deq = fig7::scenario_queueing(true, scale, seed);
    let queue: Vec<(&str, Vec<u64>)> = vec![
        ("centralized", ceq.container_ms(true, |c| c.nm_queue_ms)),
        ("distributed", deq.container_ms(true, |c| c.nm_queue_ms)),
    ];
    print!("{}", summary_table(&queue).render());
    println!(
        "-> the distributed scheduler's random placement wins on latency but \
         gambles on queueing (paper: up to 53s queued behind busy nodes)"
    );

    println!("\n== acquisition delay is heartbeat-quantized, not load-bound ==");
    for load in [0.1, 1.0] {
        let r = fig7::scenario_acquisition(load, scale, seed);
        let acq = r.container_ms(true, |c| c.acquisition_ms);
        if let Some(s) = Summary::from_ms(&acq) {
            println!(
                "load {:>4.0}%: acquisition p50 {:.3}s, max {:.3}s (cap = 1s AM heartbeat)",
                load * 100.0,
                s.p50,
                s.max
            );
        }
    }
}
