//! Interference study (the paper's §IV-E): how IO pressure (dfsIO
//! writers) and CPU pressure (Kmeans) hit *different* components of the
//! scheduling delay.
//!
//! The headline asymmetry: IO interference hammers the out-application
//! path (localization, AM delay), while CPU interference hammers the
//! in-application path (driver init, executor setup) and barely touches
//! localization.
//!
//! ```sh
//! cargo run --release --example interference_study
//! ```

use experiments::{fig12, fig13, Scale};
use sdchecker::Summary;

struct Row {
    name: &'static str,
    base: f64,
    loaded: f64,
}

impl Row {
    fn print(&self) {
        println!(
            "  {:<14} {:>7.2}s -> {:>7.2}s  ({:.1}x)",
            self.name,
            self.base,
            self.loaded,
            self.loaded / self.base.max(1e-9)
        );
    }
}

fn p95(v: &[u64]) -> f64 {
    Summary::from_ms(v).map(|s| s.p95).unwrap_or(0.0)
}
fn p50(v: &[u64]) -> f64 {
    Summary::from_ms(v).map(|s| s.p50).unwrap_or(0.0)
}

fn main() {
    let scale = Scale::Quick;
    let seed = 99;

    println!("== IO interference: 100 dfsIO writers x 20GB (p95 unless noted) ==");
    let base = fig12::scenario(0, scale, seed);
    let io = fig12::scenario(100, scale, seed);
    for row in [
        Row {
            name: "total",
            base: p95(&base.ms(|d| d.total_ms)),
            loaded: p95(&io.ms(|d| d.total_ms)),
        },
        Row {
            name: "out-app",
            base: p95(&base.ms(|d| d.out_app_ms)),
            loaded: p95(&io.ms(|d| d.out_app_ms)),
        },
        Row {
            name: "in-app",
            base: p95(&base.ms(|d| d.in_app_ms)),
            loaded: p95(&io.ms(|d| d.in_app_ms)),
        },
        Row {
            name: "am",
            base: p95(&base.ms(|d| d.am_ms)),
            loaded: p95(&io.ms(|d| d.am_ms)),
        },
        Row {
            name: "localize(p50)",
            base: p50(&base.container_ms(false, |c| c.localization_ms)),
            loaded: p50(&io.container_ms(false, |c| c.localization_ms)),
        },
    ] {
        row.print();
    }

    println!("\n== CPU interference: 16 Kmeans apps (p95 unless noted) ==");
    let base = fig13::scenario(0, scale, seed);
    let cpu = fig13::scenario(16, scale, seed);
    for row in [
        Row {
            name: "total",
            base: p95(&base.ms(|d| d.total_ms)),
            loaded: p95(&cpu.ms(|d| d.total_ms)),
        },
        Row {
            name: "out-app",
            base: p95(&base.ms(|d| d.out_app_ms)),
            loaded: p95(&cpu.ms(|d| d.out_app_ms)),
        },
        Row {
            name: "in-app",
            base: p95(&base.ms(|d| d.in_app_ms)),
            loaded: p95(&cpu.ms(|d| d.in_app_ms)),
        },
        Row {
            name: "driver",
            base: p95(&base.ms(|d| d.driver_ms)),
            loaded: p95(&cpu.ms(|d| d.driver_ms)),
        },
        Row {
            name: "localize(p50)",
            base: p50(&base.container_ms(false, |c| c.localization_ms)),
            loaded: p50(&cpu.container_ms(false, |c| c.localization_ms)),
        },
    ] {
        row.print();
    }

    println!(
        "\nPaper's conclusion reproduced: the in-application delay is more \
         vulnerable to CPU interference; the out-application delay \
         (localization) to IO interference."
    );
}
