//! Deterministic fault injection for the simulated cluster.
//!
//! The paper's testbed is a real 26-node cluster where container launch
//! failures, localization failures, NodeManager loss, and
//! ApplicationMaster retries are routine. This module makes the simulator
//! able to produce those runs deterministically: a [`FaultConfig`] holds
//! config-driven rates plus explicitly scripted faults, and the
//! [`FaultPlan`] draws from an RNG stream forked *separately* from the
//! scheduler/latency streams (`fork_named("faults")`), so a run with all
//! faults disabled is byte-identical to a run of a build without fault
//! support at all.

use logmodel::ContainerId;
use simkit::{Millis, SimRng};

/// What faults to inject, and when. The default is fully disabled.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that a container's JVM launch exits with a non-zero
    /// code (NM `RUNNING → EXITED_WITH_FAILURE`).
    pub launch_failure_rate: f64,
    /// Probability that a container's resource download fails
    /// (NM `LOCALIZING → LOCALIZATION_FAILED`).
    pub localization_failure_rate: f64,
    /// Scripted node loss: at each `(time, node index)` the NM stops
    /// heartbeating and the RM kills every container on it.
    pub node_loss: Vec<(Millis, u32)>,
    /// Scripted AM-attempt failures: `(application seq, attempt)` pairs
    /// whose AM container launch is forced to fail — the deterministic
    /// way to exercise the YARN retry protocol in tests.
    pub scripted_am_failures: Vec<(u32, u32)>,
    /// Maximum AM attempts per application (YARN's
    /// `yarn.resourcemanager.am.max-attempts`, default 2). When the last
    /// attempt fails the application goes `FINAL_SAVING → FAILED`.
    pub max_am_attempts: u32,
    /// Extra seed mixed into the fault RNG stream, so fault placement can
    /// be varied independently of the scheduling seed (`--fault-seed`).
    pub fault_seed: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            launch_failure_rate: 0.0,
            localization_failure_rate: 0.0,
            node_loss: Vec::new(),
            scripted_am_failures: Vec::new(),
            max_am_attempts: 2,
            fault_seed: 0,
        }
    }
}

impl FaultConfig {
    /// Whether any fault can ever fire under this config.
    pub fn any_enabled(&self) -> bool {
        self.launch_failure_rate > 0.0
            || self.localization_failure_rate > 0.0
            || !self.node_loss.is_empty()
            || !self.scripted_am_failures.is_empty()
    }
}

/// Running totals of injected faults, kept by the cluster for metrics and
/// experiment sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Container launches that exited with a non-zero code.
    pub launch_failures: u64,
    /// Containers whose resource localization failed.
    pub localization_failures: u64,
    /// Nodes lost to NM heartbeat expiry.
    pub nodes_lost: u64,
    /// Containers killed because their node was lost.
    pub killed_by_node_loss: u64,
    /// AM attempts restarted (attempt N failed, attempt N+1 launched).
    pub am_retries: u64,
    /// Applications that exhausted their AM attempts (terminal FAILED).
    pub apps_failed: u64,
}

impl FaultCounts {
    /// Whether any fault actually fired this run.
    pub fn any(&self) -> bool {
        self.launch_failures > 0
            || self.localization_failures > 0
            || self.nodes_lost > 0
            || self.killed_by_node_loss > 0
            || self.am_retries > 0
            || self.apps_failed > 0
    }
}

/// The per-run fault oracle: owns the fault RNG stream and answers, per
/// injection point, whether the fault fires. All draws happen only when
/// the corresponding rate is positive, so a disabled config consumes no
/// randomness and perturbs nothing.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SimRng,
}

impl FaultPlan {
    /// Build the plan from a config, forking the fault stream off the
    /// cluster's root RNG (independent of scheduler/latency streams).
    pub fn new(cfg: FaultConfig, root: &SimRng) -> FaultPlan {
        let rng = root.fork_named("faults").fork(cfg.fault_seed);
        FaultPlan { cfg, rng }
    }

    /// The underlying config.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether any fault can ever fire.
    pub fn enabled(&self) -> bool {
        self.cfg.any_enabled()
    }

    /// Should this container's JVM launch fail? AM containers also fail
    /// when their `(app seq, attempt)` is scripted.
    pub fn launch_fails(&mut self, cid: ContainerId) -> bool {
        if cid.is_am() && self.am_attempt_scripted(cid) {
            return true;
        }
        self.cfg.launch_failure_rate > 0.0 && self.rng.chance(self.cfg.launch_failure_rate)
    }

    /// Should this container's localization fail?
    pub fn localization_fails(&mut self, _cid: ContainerId) -> bool {
        self.cfg.localization_failure_rate > 0.0
            && self.rng.chance(self.cfg.localization_failure_rate)
    }

    /// Whether this AM container's attempt is scripted to fail.
    fn am_attempt_scripted(&self, cid: ContainerId) -> bool {
        let seq = cid.app().seq;
        let attempt = cid.attempt.attempt;
        self.cfg
            .scripted_am_failures
            .iter()
            .any(|&(s, a)| s == seq && a == attempt)
    }

    /// Maximum AM attempts per application.
    pub fn max_am_attempts(&self) -> u32 {
        self.cfg.max_am_attempts.max(1)
    }

    /// The scripted node-loss schedule.
    pub fn node_loss(&self) -> &[(Millis, u32)] {
        &self.cfg.node_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logmodel::ApplicationId;

    fn cid(app_seq: u32, attempt: u32, seq: u64) -> ContainerId {
        ApplicationId::new(1, app_seq)
            .attempt(attempt)
            .container(seq)
    }

    #[test]
    fn disabled_plan_never_fires_and_draws_nothing() {
        let root = SimRng::new(7);
        let mut plan = FaultPlan::new(FaultConfig::default(), &root);
        assert!(!plan.enabled());
        for i in 0..100 {
            assert!(!plan.launch_fails(cid(1, 1, i + 1)));
            assert!(!plan.localization_fails(cid(1, 1, i + 1)));
        }
        assert!(plan.node_loss().is_empty());
    }

    #[test]
    fn scripted_am_failure_is_exact() {
        let root = SimRng::new(7);
        let cfg = FaultConfig {
            scripted_am_failures: vec![(3, 1)],
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg, &root);
        assert!(plan.enabled());
        assert!(plan.launch_fails(cid(3, 1, 1))); // the scripted AM
        assert!(!plan.launch_fails(cid(3, 2, 1))); // retry succeeds
        assert!(!plan.launch_fails(cid(4, 1, 1))); // other app untouched
        assert!(!plan.launch_fails(cid(3, 1, 2))); // non-AM container
    }

    #[test]
    fn rates_are_deterministic_per_seed() {
        let root = SimRng::new(11);
        let cfg = FaultConfig {
            launch_failure_rate: 0.3,
            ..FaultConfig::default()
        };
        let run = |root: &SimRng| -> Vec<bool> {
            let mut plan = FaultPlan::new(cfg.clone(), root);
            (0..64)
                .map(|i| plan.launch_fails(cid(1, 1, i + 2)))
                .collect()
        };
        let a = run(&root);
        let b = run(&root);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "0.3 over 64 draws should fire");
        assert!(!a.iter().all(|&x| x));
        // A different fault seed moves the draws.
        let other = FaultPlan::new(
            FaultConfig {
                fault_seed: 99,
                ..cfg.clone()
            },
            &root,
        );
        let mut other = other;
        let c: Vec<bool> = (0..64)
            .map(|i| other.launch_fails(cid(1, 1, i + 2)))
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn max_attempts_floor_is_one() {
        let root = SimRng::new(1);
        let plan = FaultPlan::new(
            FaultConfig {
                max_am_attempts: 0,
                ..FaultConfig::default()
            },
            &root,
        );
        assert_eq!(plan.max_am_attempts(), 1);
    }
}
