//! Per-node state: resource accounting, shared CPU/IO pools, the
//! opportunistic-container queue, and the localization cache.

use std::collections::{HashMap, HashSet, VecDeque};

use logmodel::{ApplicationId, ContainerId, NodeId};
use simkit::PsResource;

use crate::config::{ClusterConfig, ResourceCalculator, ResourceReq};

/// One worker node (NodeManager host).
#[derive(Debug)]
pub struct Node {
    /// Identity.
    pub id: NodeId,
    /// False once the NM is lost (heartbeat expiry, fault injection): the
    /// node stops heartbeating and the schedulers skip it.
    pub alive: bool,
    /// Shared CPU pool: capacity = vcores (cpu-ms of work per wall ms).
    pub cpu: PsResource,
    /// Shared IO channel (disk + NIC folded, see DESIGN.md).
    pub io: PsResource,
    total_vcores: u32,
    total_mem_mb: u64,
    used_vcores: u32,
    used_mem_mb: u64,
    calculator: ResourceCalculator,
    /// §V-B optimization: dedicated localization channel (storage
    /// class), isolated from the main IO channel.
    pub local_store: Option<PsResource>,
    /// Cache entries are keyed per application (YARN APPLICATION
    /// visibility) unless the public-cache optimization is on.
    public_cache: bool,
    /// Opportunistic containers localized but waiting for capacity
    /// (paper Fig. 7-(b)'s queueing delay happens here).
    pub opp_queue: VecDeque<ContainerId>,
    /// Localized resources: `(app, resource name)` — YARN APPLICATION
    /// visibility, so the cache never crosses applications.
    cache: HashSet<(ApplicationId, String)>,
    /// Resources currently downloading, with containers waiting on them.
    inflight: HashMap<(ApplicationId, String), Vec<ContainerId>>,
}

impl Node {
    /// A node shaped by `cfg`.
    pub fn new(id: NodeId, cfg: &ClusterConfig) -> Node {
        Node {
            id,
            alive: true,
            cpu: PsResource::new(cfg.vcores_per_node as f64),
            io: PsResource::new(cfg.io_capacity_mb_per_ms),
            total_vcores: cfg.vcores_per_node,
            total_mem_mb: cfg.mem_mb_per_node,
            used_vcores: 0,
            used_mem_mb: 0,
            calculator: cfg.resource_calculator,
            local_store: cfg.localization_store_mb_per_ms.map(PsResource::new),
            public_cache: cfg.public_localization_cache,
            opp_queue: VecDeque::new(),
            cache: HashSet::new(),
            inflight: HashMap::new(),
        }
    }

    /// Whether `req` fits in the currently free resources, under the
    /// configured resource calculator.
    pub fn fits(&self, req: ResourceReq) -> bool {
        let mem_ok = self.used_mem_mb + req.mem_mb <= self.total_mem_mb;
        match self.calculator {
            ResourceCalculator::MemoryOnly => mem_ok,
            ResourceCalculator::Dominant => {
                mem_ok && self.used_vcores + req.vcores <= self.total_vcores
            }
        }
    }

    /// Reserve resources for a container. Panics when it does not fit —
    /// callers must check [`Node::fits`] first; the scheduler never
    /// oversubscribes guaranteed capacity.
    pub fn reserve(&mut self, req: ResourceReq) {
        assert!(self.fits(req), "node {} oversubscribed", self.id);
        self.used_vcores += req.vcores;
        self.used_mem_mb += req.mem_mb;
    }

    /// Release resources held by a container.
    pub fn release(&mut self, req: ResourceReq) {
        debug_assert!(self.used_vcores >= req.vcores && self.used_mem_mb >= req.mem_mb);
        self.used_vcores = self.used_vcores.saturating_sub(req.vcores);
        self.used_mem_mb = self.used_mem_mb.saturating_sub(req.mem_mb);
    }

    /// Currently used vcores.
    pub fn used_vcores(&self) -> u32 {
        self.used_vcores
    }

    /// Total vcores.
    pub fn total_vcores(&self) -> u32 {
        self.total_vcores
    }

    /// Fraction of vcores in use.
    pub fn vcore_utilization(&self) -> f64 {
        self.used_vcores as f64 / self.total_vcores as f64
    }

    /// Cache key: with the public-cache optimization, entries are shared
    /// across applications (keyed under a sentinel id) and survive app
    /// completion — the paper's proposed caching service.
    fn cache_app(&self, app: ApplicationId) -> ApplicationId {
        if self.public_cache {
            ApplicationId::new(0, 0)
        } else {
            app
        }
    }

    /// Whether `(app, name)` is already localized here.
    pub fn is_cached(&self, app: ApplicationId, name: &str) -> bool {
        self.cache
            .contains(&(self.cache_app(app), name.to_string()))
    }

    /// Record `(app, name)` as localized.
    pub fn cache_insert(&mut self, app: ApplicationId, name: &str) {
        let key = (self.cache_app(app), name.to_string());
        self.cache.insert(key);
    }

    /// Is a download of `(app, name)` already in flight?
    pub fn inflight_contains(&self, app: ApplicationId, name: &str) -> bool {
        self.inflight
            .contains_key(&(self.cache_app(app), name.to_string()))
    }

    /// Start tracking an in-flight download owned by `owner`.
    pub fn inflight_start(&mut self, app: ApplicationId, name: &str, owner: ContainerId) {
        let key = (self.cache_app(app), name.to_string());
        let prev = self.inflight.insert(key, vec![owner]);
        debug_assert!(prev.is_none(), "duplicate in-flight download");
    }

    /// Add a waiter to an in-flight download. If the download is not in
    /// flight (e.g. it completed on the same tick) the waiter simply is
    /// not blocked, so this degrades to a no-op.
    pub fn inflight_wait(&mut self, app: ApplicationId, name: &str, waiter: ContainerId) {
        let key = (self.cache_app(app), name.to_string());
        if let Some(waiters) = self.inflight.get_mut(&key) {
            waiters.push(waiter);
        } else {
            debug_assert!(false, "no such in-flight download");
        }
    }

    /// Complete an in-flight download: caches the resource and returns all
    /// containers (owner + waiters) that were blocked on it.
    pub fn inflight_finish(&mut self, app: ApplicationId, name: &str) -> Vec<ContainerId> {
        self.cache_insert(app, name);
        let key = (self.cache_app(app), name.to_string());
        self.inflight.remove(&key).unwrap_or_default()
    }

    /// Drop cache/in-flight entries of a finished application. Public
    /// cache entries outlive applications by design.
    pub fn forget_app(&mut self, app: ApplicationId) {
        if self.public_cache {
            return;
        }
        self.cache.retain(|(a, _)| *a != app);
        self.inflight.retain(|(a, _), _| *a != app);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        // Tests below exercise vcore enforcement, so pin the dominant
        // calculator (the cluster default is memory-only).
        let cfg = ClusterConfig {
            resource_calculator: ResourceCalculator::Dominant,
            ..ClusterConfig::default()
        };
        Node::new(NodeId(3), &cfg)
    }

    const EXEC: ResourceReq = ResourceReq::SPARK_EXECUTOR;

    #[test]
    fn reserve_release_roundtrip() {
        let mut n = node();
        assert!(n.fits(EXEC));
        n.reserve(EXEC);
        assert_eq!(n.used_vcores(), 8);
        n.release(EXEC);
        assert_eq!(n.used_vcores(), 0);
        assert_eq!(n.vcore_utilization(), 0.0);
    }

    #[test]
    fn fits_respects_both_dimensions() {
        let mut n = node();
        // Fill vcores: 32 / 8 = 4 executors.
        for _ in 0..4 {
            assert!(n.fits(EXEC));
            n.reserve(EXEC);
        }
        assert!(!n.fits(EXEC));
        assert!((n.vcore_utilization() - 1.0).abs() < 1e-9);
        // Memory-bound request.
        let big = ResourceReq {
            mem_mb: 200 * 1024,
            vcores: 0,
        };
        assert!(!n.fits(big));
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn reserve_past_capacity_panics() {
        let mut n = node();
        for _ in 0..5 {
            n.reserve(EXEC);
        }
    }

    #[test]
    fn localization_cache_per_app() {
        let mut n = node();
        let a = ApplicationId::new(1, 1);
        let b = ApplicationId::new(1, 2);
        assert!(!n.is_cached(a, "spark.jar"));
        n.cache_insert(a, "spark.jar");
        assert!(n.is_cached(a, "spark.jar"));
        assert!(!n.is_cached(b, "spark.jar"), "cache must not cross apps");
        n.forget_app(a);
        assert!(!n.is_cached(a, "spark.jar"));
    }

    #[test]
    fn inflight_tracks_waiters() {
        let mut n = node();
        let a = ApplicationId::new(1, 1);
        let c1 = a.attempt(1).container(2);
        let c2 = a.attempt(1).container(3);
        assert!(!n.inflight_contains(a, "app.jar"));
        n.inflight_start(a, "app.jar", c1);
        assert!(n.inflight_contains(a, "app.jar"));
        n.inflight_wait(a, "app.jar", c2);
        let woken = n.inflight_finish(a, "app.jar");
        assert_eq!(woken, vec![c1, c2]);
        assert!(n.is_cached(a, "app.jar"));
        assert!(!n.inflight_contains(a, "app.jar"));
    }
}
