//! YARN-style state machines with transition logging.
//!
//! YARN models each scheduling entity as a state machine and logs every
//! transition (paper §III-A) — that is the very property SDchecker mines.
//! This module reproduces the three machines SDchecker cares about
//! (`RMAppImpl`, `RMContainerImpl`, `ContainerImpl`) with their legal
//! transition sets and the exact log phrasings of the respective daemons.

use logmodel::{LogSource, LogStore, TsMs};
use std::fmt;

/// `RMAppImpl` states (ResourceManager's view of an application).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmAppState {
    /// Just created.
    New,
    /// Being persisted to the RM state store.
    NewSaving,
    /// Persisted; visible to the scheduler. **Log message 1.**
    Submitted,
    /// Admitted by the scheduler; AM container pending. **Log message 2.**
    Accepted,
    /// AM registered (event `ATTEMPT_REGISTERED`). **Log message 3.**
    Running,
    /// Final state being persisted.
    FinalSaving,
    /// Unregistered, waiting for container cleanup.
    Finishing,
    /// Done.
    Finished,
    /// Terminal failure: every AM attempt failed.
    Failed,
}

impl fmt::Display for RmAppState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl RmAppState {
    /// Every state, in lifecycle order (`ALL[0]` is the initial state).
    pub const ALL: [RmAppState; 9] = [
        RmAppState::New,
        RmAppState::NewSaving,
        RmAppState::Submitted,
        RmAppState::Accepted,
        RmAppState::Running,
        RmAppState::FinalSaving,
        RmAppState::Finishing,
        RmAppState::Finished,
        RmAppState::Failed,
    ];

    /// The log spelling of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            RmAppState::New => "NEW",
            RmAppState::NewSaving => "NEW_SAVING",
            RmAppState::Submitted => "SUBMITTED",
            RmAppState::Accepted => "ACCEPTED",
            RmAppState::Running => "RUNNING",
            RmAppState::FinalSaving => "FINAL_SAVING",
            RmAppState::Finishing => "FINISHING",
            RmAppState::Finished => "FINISHED",
            RmAppState::Failed => "FAILED",
        }
    }

    /// Whether the application can never progress again.
    pub fn is_terminal(self) -> bool {
        matches!(self, RmAppState::Finished | RmAppState::Failed)
    }

    /// Legal next states. `Running → Accepted` is YARN's AM-retry path
    /// (event `ATTEMPT_FAILED` with attempts remaining);
    /// `Accepted/Running → FinalSaving → Failed` is attempt exhaustion.
    pub fn can_go(self, to: RmAppState) -> bool {
        use RmAppState::*;
        matches!(
            (self, to),
            (New, NewSaving)
                | (NewSaving, Submitted)
                | (Submitted, Accepted)
                | (Accepted, Running)
                | (Running, FinalSaving)
                | (FinalSaving, Finishing)
                | (Finishing, Finished)
                | (Running, Accepted)
                | (Accepted, FinalSaving)
                | (FinalSaving, Failed)
        )
    }
}

/// `RMContainerImpl` states (ResourceManager's view of a container).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmContainerState {
    /// Created by the scheduler.
    New,
    /// Assigned to a node. **Log message 4.**
    Allocated,
    /// Pulled by the AppMaster via heartbeat. **Log message 5.**
    Acquired,
    /// Reported running by the NM.
    Running,
    /// Finished or released.
    Completed,
    /// Forcibly terminated (node loss, attempt cleanup).
    Killed,
}

impl fmt::Display for RmContainerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl RmContainerState {
    /// Every state, in lifecycle order (`ALL[0]` is the initial state).
    pub const ALL: [RmContainerState; 6] = [
        RmContainerState::New,
        RmContainerState::Allocated,
        RmContainerState::Acquired,
        RmContainerState::Running,
        RmContainerState::Completed,
        RmContainerState::Killed,
    ];

    /// The log spelling of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            RmContainerState::New => "NEW",
            RmContainerState::Allocated => "ALLOCATED",
            RmContainerState::Acquired => "ACQUIRED",
            RmContainerState::Running => "RUNNING",
            RmContainerState::Completed => "COMPLETED",
            RmContainerState::Killed => "KILLED",
        }
    }

    /// Whether the container can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(self, RmContainerState::Completed | RmContainerState::Killed)
    }

    /// Legal next states. `Allocated → Completed` covers the
    /// never-acquired containers of the SPARK-21562 bug; `Acquired →
    /// Completed` covers cancelled-before-running. Any live state may go
    /// to `Killed` (node loss, failed-attempt cleanup).
    pub fn can_go(self, to: RmContainerState) -> bool {
        use RmContainerState::*;
        matches!(
            (self, to),
            (New, Allocated)
                | (Allocated, Acquired)
                | (Acquired, Running)
                | (Running, Completed)
                | (Allocated, Completed)
                | (Acquired, Completed)
                | (Allocated, Killed)
                | (Acquired, Killed)
                | (Running, Killed)
        )
    }
}

/// `ContainerImpl` states (NodeManager's view of a container).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NmContainerState {
    /// startContainer received.
    New,
    /// Downloading localization resources. **Log message 6.**
    Localizing,
    /// Localized; queued for the launcher. **Log message 7.**
    Scheduled,
    /// Launch script invoked. **Log message 8.**
    Running,
    /// Process exited.
    Done,
    /// Resource download failed.
    LocalizationFailed,
    /// Process exited with a non-zero code.
    ExitedWithFailure,
}

impl fmt::Display for NmContainerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl NmContainerState {
    /// Every state, in lifecycle order (`ALL[0]` is the initial state).
    pub const ALL: [NmContainerState; 7] = [
        NmContainerState::New,
        NmContainerState::Localizing,
        NmContainerState::Scheduled,
        NmContainerState::Running,
        NmContainerState::Done,
        NmContainerState::LocalizationFailed,
        NmContainerState::ExitedWithFailure,
    ];

    /// The log spelling of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            NmContainerState::New => "NEW",
            NmContainerState::Localizing => "LOCALIZING",
            NmContainerState::Scheduled => "SCHEDULED",
            NmContainerState::Running => "RUNNING",
            NmContainerState::Done => "DONE",
            NmContainerState::LocalizationFailed => "LOCALIZATION_FAILED",
            NmContainerState::ExitedWithFailure => "EXITED_WITH_FAILURE",
        }
    }

    /// Whether the container's lifecycle is over.
    pub fn is_terminal(self) -> bool {
        matches!(self, NmContainerState::Done)
    }

    /// Legal next states, including the two failure exits
    /// (`LOCALIZING → LOCALIZATION_FAILED → DONE`,
    /// `RUNNING → EXITED_WITH_FAILURE → DONE`).
    pub fn can_go(self, to: NmContainerState) -> bool {
        use NmContainerState::*;
        matches!(
            (self, to),
            (New, Localizing)
                | (Localizing, Scheduled)
                | (Scheduled, Running)
                | (Running, Done)
                | (Localizing, LocalizationFailed)
                | (LocalizationFailed, Done)
                | (Running, ExitedWithFailure)
                | (ExitedWithFailure, Done)
        )
    }
}

/// A logged state machine around one of the state enums.
#[derive(Debug, Clone)]
pub struct Tracked<S> {
    state: S,
}

impl<S: Copy + PartialEq + fmt::Display + fmt::Debug> Tracked<S> {
    /// Start in `initial`.
    pub fn new(initial: S) -> Tracked<S> {
        Tracked { state: initial }
    }

    /// Current state.
    pub fn get(&self) -> S {
        self.state
    }
}

impl Tracked<RmAppState> {
    /// Transition with RM-style logging:
    /// `<appId> State change from X to Y on event = EVENT`.
    pub fn transition(
        &mut self,
        to: RmAppState,
        event: &str,
        subject: &str,
        ts: TsMs,
        logs: &mut LogStore,
    ) {
        assert!(
            self.state.can_go(to),
            "illegal RMApp transition {} -> {to}",
            self.state
        );
        let t = &crate::schema::RM_APP_STATE_CHANGE;
        logs.info(
            LogSource::ResourceManager,
            ts,
            t.class,
            t.msg(&[&subject, &self.state, &to, &event]),
        );
        self.state = to;
    }
}

impl Tracked<RmContainerState> {
    /// Transition with RM-style logging:
    /// `<containerId> Container Transitioned from X to Y`.
    pub fn transition(
        &mut self,
        to: RmContainerState,
        subject: &str,
        ts: TsMs,
        logs: &mut LogStore,
    ) {
        assert!(
            self.state.can_go(to),
            "illegal RMContainer transition {} -> {to}",
            self.state
        );
        let t = &crate::schema::RM_CONTAINER_TRANSITION;
        logs.info(
            LogSource::ResourceManager,
            ts,
            t.class,
            t.msg(&[&subject, &self.state, &to]),
        );
        self.state = to;
    }
}

impl Tracked<NmContainerState> {
    /// Transition with NM-style logging:
    /// `Container <containerId> transitioned from X to Y`.
    pub fn transition(
        &mut self,
        to: NmContainerState,
        subject: &str,
        node_log: LogSource,
        ts: TsMs,
        logs: &mut LogStore,
    ) {
        assert!(
            self.state.can_go(to),
            "illegal NmContainer transition {} -> {to}",
            self.state
        );
        let t = &crate::schema::NM_CONTAINER_TRANSITION;
        logs.info(node_log, ts, t.class, t.msg(&[&subject, &self.state, &to]));
        self.state = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logmodel::{Epoch, NodeId};

    #[test]
    fn rm_app_happy_path_is_legal() {
        use RmAppState::*;
        let path = [
            New,
            NewSaving,
            Submitted,
            Accepted,
            Running,
            FinalSaving,
            Finishing,
            Finished,
        ];
        for w in path.windows(2) {
            assert!(w[0].can_go(w[1]), "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn rm_app_illegal_jumps_rejected() {
        use RmAppState::*;
        assert!(!New.can_go(Running));
        assert!(!Finished.can_go(New));
        assert!(!Failed.can_go(Accepted));
    }

    #[test]
    fn failure_paths_are_legal() {
        use RmAppState as A;
        // AM retry: back to ACCEPTED; exhaustion: through FINAL_SAVING.
        assert!(A::Running.can_go(A::Accepted));
        assert!(A::Accepted.can_go(A::FinalSaving));
        assert!(A::FinalSaving.can_go(A::Failed));
        use RmContainerState as C;
        assert!(C::Running.can_go(C::Killed));
        assert!(C::Allocated.can_go(C::Killed));
        assert!(!C::Killed.can_go(C::Running));
        use NmContainerState as N;
        assert!(N::Localizing.can_go(N::LocalizationFailed));
        assert!(N::LocalizationFailed.can_go(N::Done));
        assert!(N::Running.can_go(N::ExitedWithFailure));
        assert!(N::ExitedWithFailure.can_go(N::Done));
        assert!(!N::Scheduled.can_go(N::ExitedWithFailure));
    }

    #[test]
    fn rm_container_bug_path_is_legal() {
        use RmContainerState::*;
        // The SPARK-21562 signature: allocated, never acquired, completed.
        assert!(Allocated.can_go(Completed));
        assert!(!Completed.can_go(Running));
    }

    #[test]
    fn nm_container_path() {
        use NmContainerState::*;
        assert!(New.can_go(Localizing));
        assert!(Localizing.can_go(Scheduled));
        assert!(Scheduled.can_go(Running));
        assert!(!Localizing.can_go(Running));
    }

    #[test]
    fn tracked_rm_app_logs_expected_phrase() {
        let mut logs = LogStore::new(Epoch::default_run());
        let mut st = Tracked::new(RmAppState::Submitted);
        st.transition(
            RmAppState::Accepted,
            "APP_ACCEPTED",
            "application_1_0001",
            TsMs(42),
            &mut logs,
        );
        let recs = logs.records(LogSource::ResourceManager);
        assert_eq!(recs.len(), 1);
        assert_eq!(
            recs[0].message,
            "application_1_0001 State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"
        );
        assert_eq!(st.get(), RmAppState::Accepted);
    }

    #[test]
    fn tracked_nm_container_logs_to_node_log() {
        let mut logs = LogStore::new(Epoch::default_run());
        let mut st = Tracked::new(NmContainerState::New);
        let src = LogSource::NodeManager(NodeId(2));
        st.transition(
            NmContainerState::Localizing,
            "container_1_0001_01_000001",
            src,
            TsMs(1),
            &mut logs,
        );
        st.transition(
            NmContainerState::Scheduled,
            "container_1_0001_01_000001",
            src,
            TsMs(9),
            &mut logs,
        );
        let recs = logs.records(src);
        assert_eq!(recs.len(), 2);
        assert!(recs[1]
            .message
            .contains("transitioned from LOCALIZING to SCHEDULED"));
    }

    #[test]
    #[should_panic(expected = "illegal")]
    fn tracked_panics_on_illegal() {
        let mut logs = LogStore::new(Epoch::default_run());
        let mut st = Tracked::new(RmAppState::New);
        st.transition(RmAppState::Running, "X", "app", TsMs(0), &mut logs);
    }
}
