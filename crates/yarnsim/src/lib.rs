//! # yarnsim — a YARN-like two-level cluster scheduler, simulated
//!
//! Protocol-level discrete-event model of the cluster scheduler substrate
//! the SDchecker paper measures (Hadoop 3.0 YARN): ResourceManager with
//! `RMAppImpl`/`RMContainerImpl` state machines, a centralized Capacity
//! Scheduler and a distributed opportunistic scheduler, NodeManagers with
//! the `ContainerImpl` lifecycle (localization with per-application caching,
//! launcher handoff, Docker overhead, opportunistic queueing), and
//! heartbeat-quantized allocation/acquisition.
//!
//! Every state transition is written to a [`logmodel::LogStore`] in the
//! message shapes of Table I of the paper — the cluster side of the log
//! corpus SDchecker mines.
//!
//! The crate is application-agnostic: Spark/MapReduce behaviour lives in
//! `sparksim`, which drives this cluster through [`Cluster`]'s methods and
//! reacts to [`effects::AppNotice`]s.

pub mod cluster;
pub mod config;
pub mod effects;
pub mod faults;
pub mod node;
pub mod schema;
pub mod state;
#[cfg(test)]
mod tests_protocol;

pub use cluster::Cluster;
pub use config::{
    ClusterConfig, ContainerRuntime, DockerConfig, OppPlacement, QueuePolicy, ResourceCalculator,
    ResourceReq, SchedulerKind,
};
pub use effects::{
    AppNotice, AppSubmission, ClusterEvent, FailureKind, InstanceKind, LaunchSpec, LocalResource,
    Out, Ticket,
};
pub use faults::{FaultConfig, FaultPlan};
pub use state::{NmContainerState, RmAppState, RmContainerState};
