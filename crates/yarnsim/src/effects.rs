//! The cluster's interface to the surrounding simulation: events it
//! schedules for itself, and notices it raises to the application layer.
//!
//! The cluster never owns the event loop. Every method takes the current
//! time and an [`Out`] buffer; the embedding model (see `sparksim`) drains
//! the buffer, forwards events to the simulation kernel, and dispatches
//! notices to per-application logic. This keeps `yarnsim` free of any
//! knowledge about Spark, MapReduce, or the experiment harness.

use logmodel::{ApplicationId, ContainerId, NodeId};
use simkit::{Millis, ResourceGen};

use crate::config::{ContainerRuntime, ResourceReq};

/// Opaque handle for application-submitted work (CPU or IO) running on a
/// node's shared resources. Completion is reported via
/// [`AppNotice::WorkDone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub u64);

/// What kind of process a container hosts. Determines the launch-work
/// profile (paper Fig. 9-(a) instance types) and is echoed in notices so
/// the application layer can route them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceKind {
    /// Spark driver / ApplicationMaster (`spm`).
    SparkDriver,
    /// Spark executor (`spe`).
    SparkExecutor,
    /// MapReduce ApplicationMaster (`mrm`).
    MrMaster,
    /// MapReduce map task (`mrsm`).
    MrMap,
    /// MapReduce reduce task (`mrsr`).
    MrReduce,
}

impl InstanceKind {
    /// The short label the paper uses on Fig. 9-(a)'s x-axis.
    pub fn label(self) -> &'static str {
        match self {
            InstanceKind::SparkDriver => "spm",
            InstanceKind::SparkExecutor => "spe",
            InstanceKind::MrMaster => "mrm",
            InstanceKind::MrMap => "mrsm",
            InstanceKind::MrReduce => "mrsr",
        }
    }
}

/// A file/archive the NodeManager must localize before launching.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalResource {
    /// Cache key within an application (e.g. `"spark-libs.jar"`).
    pub name: String,
    /// Size in MB.
    pub mb: f64,
}

impl LocalResource {
    /// Construct a resource.
    pub fn new(name: impl Into<String>, mb: f64) -> LocalResource {
        LocalResource {
            name: name.into(),
            mb,
        }
    }
}

/// Everything the NodeManager needs to start a container's process.
/// Work amounts are concrete values (already sampled by the application
/// layer) so the cluster stays distribution-agnostic.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// Host process type.
    pub kind: InstanceKind,
    /// Files to localize before launch.
    pub localization: Vec<LocalResource>,
    /// Plain YARN container or Docker.
    pub runtime: ContainerRuntime,
    /// CPU work of the launch script + JVM start, in cpu-ms.
    pub launch_cpu_ms: f64,
    /// Parallelism of the launch work (JVM startup is mostly one hot
    /// thread plus some JIT helpers).
    pub launch_threads: f64,
    /// Disk reads during process start (classloading from the localized
    /// jars), MB. This is why heavy disk interference slows JVM start
    /// (paper §IV-E factor 2).
    pub launch_io_mb: f64,
}

/// Application submission context (what the client ships to the RM).
#[derive(Debug, Clone)]
pub struct AppSubmission {
    /// Display name for logs.
    pub name: String,
    /// AM container size.
    pub am_resource: ResourceReq,
    /// AM container launch spec (localization of the driver's jars etc.).
    pub am_launch: LaunchSpec,
    /// AM→RM heartbeat interval. The container *acquisition* delay is
    /// quantized by this (paper Fig. 7-(c): capped at 1 s for MapReduce).
    pub am_heartbeat_ms: u64,
}

/// Events the cluster schedules for itself.
#[derive(Debug, Clone)]
pub enum ClusterEvent {
    /// A NodeManager's periodic heartbeat: the Capacity Scheduler assigns
    /// backlog containers to the heartbeating node; self-reschedules.
    NmHeartbeat(NodeId),
    /// An application master's periodic heartbeat: pulls newly allocated
    /// containers (ALLOCATED → ACQUIRED) and self-reschedules while the
    /// application lives.
    AmHeartbeat(ApplicationId),
    /// A node's CPU pool may have completed flows.
    CpuTick(NodeId, ResourceGen),
    /// A node's IO channel may have completed flows.
    IoTick(NodeId, ResourceGen),
    /// A node's dedicated localization store may have completed flows
    /// (§V-B optimization).
    StoreTick(NodeId, ResourceGen),
    /// RM state-store write finished: NEW_SAVING → SUBMITTED.
    RmAppSaved(ApplicationId),
    /// Scheduler admission finished: SUBMITTED → ACCEPTED, AM queued.
    RmAppAccepted(ApplicationId),
    /// Distributed-scheduler decision latency elapsed: place `count`
    /// containers on random nodes.
    OppAllocate {
        /// Requesting application.
        app: ApplicationId,
        /// Containers to place.
        count: u32,
        /// Shape of each container.
        req: ResourceReq,
    },
    /// startContainer RPC reached the NodeManager.
    NmStartContainer(ContainerId),
    /// NM launcher picked the container up (SCHEDULED → RUNNING handoff).
    NmHandoff(ContainerId),
    /// Final state-store write for a finishing application.
    RmAppFinalSaved(ApplicationId),
    /// Scripted fault: the node's NodeManager stops heartbeating; the RM
    /// expires it and kills every container it was hosting.
    NodeLost(NodeId),
}

/// Why a container died before doing useful work (fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Resource download failed (NM `LOCALIZING → LOCALIZATION_FAILED`).
    Localization,
    /// Launch script / JVM exited with a non-zero code
    /// (NM `RUNNING → EXITED_WITH_FAILURE`).
    Launch,
    /// The hosting node was lost (NM heartbeat expiry; RM kills the
    /// container).
    NodeLost,
}

impl FailureKind {
    /// Short label used in metrics.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Localization => "localization",
            FailureKind::Launch => "launch",
            FailureKind::NodeLost => "node_lost",
        }
    }
}

/// Notices raised to the application layer.
#[derive(Debug, Clone)]
pub enum AppNotice {
    /// Containers became visible to the AM (post-acquisition). The AM
    /// should respond with `Cluster::launch_container` for each (or
    /// release them).
    ContainersGranted {
        /// Owning application.
        app: ApplicationId,
        /// `(container, node)` pairs.
        containers: Vec<(ContainerId, NodeId)>,
    },
    /// A container's host process finished starting (the moment the real
    /// process would emit its first log line).
    ProcessStarted {
        /// Owning application.
        app: ApplicationId,
        /// The container.
        container: ContainerId,
        /// Where it runs.
        node: NodeId,
        /// Host process type from the launch spec.
        kind: InstanceKind,
    },
    /// Application-submitted CPU/IO work completed.
    WorkDone {
        /// Owning application.
        app: ApplicationId,
        /// The handle returned by `spawn_cpu` / `spawn_io`.
        ticket: Ticket,
    },
    /// A container died before (or instead of) reaching a useful running
    /// state. For non-AM containers the application layer may re-request a
    /// replacement; AM failures are handled by the RM (see
    /// [`AppNotice::AttemptRetry`] / [`AppNotice::AppFailed`]).
    ProcessFailed {
        /// Owning application.
        app: ApplicationId,
        /// The dead container.
        container: ContainerId,
        /// Where it ran.
        node: NodeId,
        /// What went wrong.
        kind: FailureKind,
    },
    /// The application's AM attempt failed and the RM is starting a new
    /// attempt: the application layer must reset its protocol state and
    /// will see the submission→launch sequence again for `new_attempt`.
    AttemptRetry {
        /// Owning application.
        app: ApplicationId,
        /// The attempt number now being launched (2, 3, ...).
        new_attempt: u32,
    },
    /// The application exhausted its AM attempts and is terminally FAILED.
    AppFailed {
        /// Owning application.
        app: ApplicationId,
    },
}

/// Buffer of effects produced by cluster methods: events to merge into the
/// simulation queue (absolute times) and notices for the application layer.
#[derive(Debug, Default)]
pub struct Out {
    /// `(absolute time, event)` pairs.
    pub events: Vec<(Millis, ClusterEvent)>,
    /// Notices in raise order.
    pub notices: Vec<AppNotice>,
}

impl Out {
    /// Empty buffer.
    pub fn new() -> Out {
        Out::default()
    }

    /// Schedule `ev` at absolute time `at`.
    pub fn at(&mut self, at: Millis, ev: ClusterEvent) {
        self.events.push((at, ev));
    }

    /// Raise a notice.
    pub fn notify(&mut self, n: AppNotice) {
        self.notices.push(n);
    }

    /// True when nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.notices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_labels_match_paper() {
        assert_eq!(InstanceKind::SparkDriver.label(), "spm");
        assert_eq!(InstanceKind::SparkExecutor.label(), "spe");
        assert_eq!(InstanceKind::MrMaster.label(), "mrm");
        assert_eq!(InstanceKind::MrMap.label(), "mrsm");
        assert_eq!(InstanceKind::MrReduce.label(), "mrsr");
    }

    #[test]
    fn out_buffers_in_order() {
        let mut out = Out::new();
        assert!(out.is_empty());
        out.at(Millis(5), ClusterEvent::NmHeartbeat(NodeId(1)));
        out.notify(AppNotice::WorkDone {
            app: ApplicationId::new(1, 1),
            ticket: Ticket(9),
        });
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.notices.len(), 1);
        assert!(!out.is_empty());
    }
}
