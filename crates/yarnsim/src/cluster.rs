//! The cluster: ResourceManager + NodeManagers + schedulers, wired to the
//! log store and the effect buffer.
//!
//! This is a faithful protocol-level model of two-level scheduling
//! (paper §II-A):
//!
//! 1. a client submits an application; the RM persists it
//!    (NEW → NEW_SAVING → SUBMITTED), admits it (→ ACCEPTED), and
//!    schedules the AM container;
//! 2. the Capacity Scheduler's asynchronous scheduling threads (Hadoop
//!    3.0 global scheduling) drain the request backlog onto the
//!    least-loaded fitting nodes; allocated containers wait to be
//!    *acquired* by the AM's next heartbeat;
//! 3. the AM launches containers via startContainer RPCs; the NM
//!    localizes resources (per-application cache), hands off to the
//!    launcher, and the process start (JVM) burns CPU on the node's
//!    shared pool;
//! 4. alternatively the distributed opportunistic scheduler places
//!    containers in milliseconds at random nodes, queueing NM-side when
//!    the node is full.
//!
//! Every state transition is logged in the exact shapes of Table I of the
//! paper, which is what makes the SDchecker pipeline downstream work on
//! *text*, not simulator internals.

use std::collections::{BTreeMap, VecDeque};

use logmodel::{ApplicationId, ContainerId, LogSource, LogStore, NodeId, TsMs};
use simkit::{Dist, Millis, Sample, SimRng};

use crate::config::{
    ClusterConfig, ContainerRuntime, OppPlacement, QueuePolicy, ResourceReq, SchedulerKind,
};
use crate::effects::{
    AppNotice, AppSubmission, ClusterEvent, FailureKind, LaunchSpec, Out, Ticket,
};
use crate::faults::{FaultCounts, FaultPlan};
use crate::node::Node;
use crate::state::{NmContainerState, RmAppState, RmContainerState, Tracked};

/// Convert engine time to log offsets.
fn ts(now: Millis) -> TsMs {
    TsMs(now.0)
}

/// A queued (not yet allocated) container request under the Capacity
/// Scheduler.
#[derive(Debug)]
struct PendingReq {
    app: ApplicationId,
    remaining: u32,
    req: ResourceReq,
    is_am: bool,
}

/// RM-side application record.
#[derive(Debug)]
struct RmApp {
    state: Tracked<RmAppState>,
    submission: AppSubmission,
    am_container: Option<ContainerId>,
    /// Current AM attempt (1-based; bumps on YARN-style AM retry).
    attempt: u32,
    /// Terminally failed (attempts exhausted): the final state-store write
    /// lands on FAILED instead of FINISHED.
    failed: bool,
    /// Container asks waiting for the next AM heartbeat to reach the RM
    /// (the allocate() protocol: asks ride heartbeats).
    pending_asks: Vec<(u32, ResourceReq)>,
    /// Allocated, waiting for the next AM heartbeat to be acquired.
    newly_allocated: Vec<(ContainerId, NodeId)>,
    next_container_seq: u64,
    /// Heartbeats run / containers are granted only while alive.
    alive: bool,
    /// Whether AM heartbeats have been started (post-registration).
    heartbeating: bool,
    /// Containers currently allocated (for fair-share ordering).
    live_containers: u32,
}

/// Everything the cluster knows about one container.
#[derive(Debug)]
struct ContainerInfo {
    id: ContainerId,
    app: ApplicationId,
    node: NodeId,
    req: ResourceReq,
    rm_state: Tracked<RmContainerState>,
    nm_state: Option<Tracked<NmContainerState>>,
    spec: Option<LaunchSpec>,
    /// Localization resources still outstanding.
    pending_local: usize,
    opportunistic: bool,
    /// Node resources currently reserved by this container.
    reserved: bool,
}

/// What a completed CPU/IO flow means.
#[derive(Debug, Clone)]
enum FlowPurpose {
    /// Application-submitted work.
    AppWork { app: ApplicationId, ticket: Ticket },
    /// NameNode lookup / client setup preceding a localization download.
    LocalizeMeta { cid: ContainerId, res_idx: usize },
    /// The localization download itself.
    LocalizeIo { cid: ContainerId, res_idx: usize },
    /// Docker image read at container start.
    DockerIo { cid: ContainerId },
    /// Docker runtime setup CPU.
    DockerCpu { cid: ContainerId },
    /// Classloading reads during process start.
    LaunchIo { cid: ContainerId },
    /// Launch script + JVM start.
    LaunchCpu { cid: ContainerId },
}

/// The simulated cluster.
pub struct Cluster {
    /// Configuration (public for read access by embedders).
    pub cfg: ClusterConfig,
    cluster_ts: u64,
    nodes: Vec<Node>,
    apps: BTreeMap<ApplicationId, RmApp>,
    containers: BTreeMap<ContainerId, ContainerInfo>,
    backlog: VecDeque<PendingReq>,
    cpu_flows: BTreeMap<(u32, u64), FlowPurpose>,
    io_flows: BTreeMap<(u32, u64), FlowPurpose>,
    store_flows: BTreeMap<(u32, u64), FlowPurpose>,
    next_app_seq: u32,
    next_ticket: u64,
    rng_sched: SimRng,
    rng_lat: SimRng,
    containers_allocated: u64,
    faults: FaultPlan,
    fault_counts: FaultCounts,
}

impl Cluster {
    /// Build a cluster. `cluster_ts` seeds application IDs (use the run
    /// epoch's unix-ms); `seed` drives scheduler/latency randomness.
    pub fn new(cfg: ClusterConfig, cluster_ts: u64, seed: u64) -> Cluster {
        let root = SimRng::new(seed);
        let faults = FaultPlan::new(cfg.faults.clone(), &root);
        let nodes = (0..cfg.nodes).map(|i| Node::new(NodeId(i), &cfg)).collect();
        Cluster {
            cfg,
            cluster_ts,
            nodes,
            apps: BTreeMap::new(),
            containers: BTreeMap::new(),
            backlog: VecDeque::new(),
            cpu_flows: BTreeMap::new(),
            io_flows: BTreeMap::new(),
            store_flows: BTreeMap::new(),
            next_app_seq: 0,
            next_ticket: 0,
            rng_sched: root.fork_named("scheduler"),
            rng_lat: root.fork_named("latency"),
            containers_allocated: 0,
            faults,
            fault_counts: FaultCounts::default(),
        }
    }

    /// Schedule the first NodeManager heartbeats, staggered across the
    /// interval (real NMs start at different times, which is what
    /// decorrelates allocation times from any AM's heartbeat phase).
    pub fn start(&mut self, out: &mut Out) {
        let interval = self.cfg.nm_heartbeat_ms;
        let n = self.nodes.len() as u64;
        for (i, node) in self.nodes.iter().enumerate() {
            let offset = interval * i as u64 / n.max(1);
            out.at(Millis(offset), ClusterEvent::NmHeartbeat(node.id));
        }
        for &(at, idx) in self.faults.node_loss() {
            if (idx as usize) < self.nodes.len() {
                out.at(at, ClusterEvent::NodeLost(NodeId(idx)));
            }
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Worker count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node a container was placed on.
    pub fn node_of(&self, cid: ContainerId) -> Option<NodeId> {
        self.containers.get(&cid).map(|c| c.node)
    }

    /// Cluster-wide vcore utilization in `[0, 1]`.
    pub fn vcore_utilization(&self) -> f64 {
        let used: u32 = self.nodes.iter().map(|n| n.used_vcores()).sum();
        let total: u32 = self.nodes.iter().map(|n| n.total_vcores()).sum();
        used as f64 / total as f64
    }

    /// Total containers ever allocated (Table II's throughput numerator).
    pub fn containers_allocated(&self) -> u64 {
        self.containers_allocated
    }

    /// Pending (unallocated) container requests in the central backlog.
    pub fn backlog_len(&self) -> u32 {
        self.backlog.iter().map(|p| p.remaining).sum()
    }

    /// Containers currently held by an application (allocated and not yet
    /// completed) — the fair-share ordering signal.
    pub fn live_containers(&self, app: ApplicationId) -> u32 {
        self.apps.get(&app).map(|a| a.live_containers).unwrap_or(0)
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    fn sample(&mut self, d: &Dist) -> Millis {
        d.sample_ms(&mut self.rng_lat)
    }

    // ------------------------------------------------------------------
    // Client / AM API
    // ------------------------------------------------------------------

    /// Submit an application. Returns its id; the AM container is
    /// scheduled automatically once the app is ACCEPTED.
    pub fn submit_application(
        &mut self,
        now: Millis,
        submission: AppSubmission,
        logs: &mut LogStore,
        out: &mut Out,
    ) -> ApplicationId {
        self.next_app_seq += 1;
        let id = ApplicationId::new(self.cluster_ts, self.next_app_seq);
        let mut state = Tracked::new(RmAppState::New);
        state.transition(
            RmAppState::NewSaving,
            "START",
            &id.to_string(),
            ts(now),
            logs,
        );
        let save = self.sample(&self.cfg.rm_state_store_ms.clone());
        self.apps.insert(
            id,
            RmApp {
                state,
                submission,
                am_container: None,
                attempt: 1,
                failed: false,
                pending_asks: Vec::new(),
                newly_allocated: Vec::new(),
                next_container_seq: 1,
                alive: true,
                heartbeating: false,
                live_containers: 0,
            },
        );
        out.at(now + save, ClusterEvent::RmAppSaved(id));
        id
    }

    /// The AM registered with the RM (event `ATTEMPT_REGISTERED`,
    /// log message 3). Starts AM heartbeats at a random phase — the
    /// AMRMClient heartbeat thread starts asynchronously, which is what
    /// gives acquisition delays their uniform-in-[0, interval] spread
    /// (paper Fig 7-(c): "very high variances").
    pub fn am_register(
        &mut self,
        now: Millis,
        app: ApplicationId,
        logs: &mut LogStore,
        out: &mut Out,
    ) {
        let interval = {
            let a = self.apps.get_mut(&app).expect("unknown app");
            a.state.transition(
                RmAppState::Running,
                "ATTEMPT_REGISTERED",
                &app.to_string(),
                ts(now),
                logs,
            );
            a.heartbeating = true;
            a.submission.am_heartbeat_ms
        };
        let phase = self.rng_sched.range(1, interval.max(2));
        out.at(now + Millis(phase), ClusterEvent::AmHeartbeat(app));
    }

    /// The AM requests `count` additional containers of shape `req`.
    pub fn request_containers(
        &mut self,
        now: Millis,
        app: ApplicationId,
        count: u32,
        req: ResourceReq,
        out: &mut Out,
    ) {
        if count == 0 {
            return;
        }
        match self.cfg.scheduler {
            SchedulerKind::Capacity => {
                // The ask reaches the RM on the AM's next allocate()
                // heartbeat; grants are picked up on the one after. This
                // two-heartbeat round trip is what makes centralized
                // allocation ~seconds while the distributed scheduler's
                // local decisions take milliseconds (Fig 7-(a)).
                let a = self.apps.get_mut(&app).expect("unknown app");
                a.pending_asks.push((count, req));
            }
            SchedulerKind::Opportunistic => {
                let d = self.sample(&self.cfg.opportunistic_decision_ms.clone());
                out.at(now + d, ClusterEvent::OppAllocate { app, count, req });
            }
        }
    }

    /// Cancel up to `count` not-yet-allocated requests of `app`. Returns
    /// how many were actually cancelled.
    pub fn cancel_pending(&mut self, app: ApplicationId, mut count: u32) -> u32 {
        let mut cancelled = 0;
        if let Some(a) = self.apps.get_mut(&app) {
            let mut asks = std::mem::take(&mut a.pending_asks);
            for (c, req) in asks.iter_mut() {
                let take = (*c).min(count);
                *c -= take;
                count -= take;
                cancelled += take;
                let _ = req;
                if count == 0 {
                    break;
                }
            }
            a.pending_asks = asks.into_iter().filter(|(c, _)| *c > 0).collect();
        }
        for p in self.backlog.iter_mut() {
            if p.app != app || p.is_am {
                continue;
            }
            let take = p.remaining.min(count);
            p.remaining -= take;
            count -= take;
            cancelled += take;
            if count == 0 {
                break;
            }
        }
        self.backlog.retain(|p| p.remaining > 0);
        cancelled
    }

    /// Release acquired-but-unlaunched containers (the SPARK-21562 path:
    /// Spark over-requested, got the grants, never used them).
    pub fn release_containers(&mut self, now: Millis, cids: &[ContainerId], logs: &mut LogStore) {
        for cid in cids {
            let Some(c) = self.containers.get_mut(cid) else {
                continue;
            };
            if c.nm_state.is_some() || c.rm_state.get().is_terminal() {
                continue; // already launching (or already dead)
            }
            c.rm_state
                .transition(RmContainerState::Completed, &cid.to_string(), ts(now), logs);
            let app = c.app;
            if c.reserved {
                let (node, req) = (c.node, c.req);
                self.node_mut(node).release(req);
                self.containers.get_mut(cid).unwrap().reserved = false;
            }
            if let Some(a) = self.apps.get_mut(&app) {
                a.live_containers = a.live_containers.saturating_sub(1);
            }
        }
    }

    /// Launch a granted container with the given spec (startContainer RPC).
    pub fn launch_container(
        &mut self,
        now: Millis,
        cid: ContainerId,
        spec: LaunchSpec,
        out: &mut Out,
    ) {
        let c = self.containers.get_mut(&cid).expect("unknown container");
        assert!(c.spec.is_none(), "container launched twice");
        c.spec = Some(spec);
        let d = self.sample(&self.cfg.rpc_ms.clone());
        out.at(now + d, ClusterEvent::NmStartContainer(cid));
    }

    /// Submit CPU work (`cpu_ms` of compute at `threads` parallelism) to a
    /// node's shared pool on behalf of `app`.
    pub fn spawn_cpu(
        &mut self,
        now: Millis,
        node: NodeId,
        app: ApplicationId,
        cpu_ms: f64,
        threads: f64,
        out: &mut Out,
    ) -> Ticket {
        self.next_ticket += 1;
        let ticket = Ticket(self.next_ticket);
        let flow = self
            .node_mut(node)
            .cpu
            .add_flow(now, cpu_ms, threads, threads);
        self.cpu_flows
            .insert((node.0, flow.0), FlowPurpose::AppWork { app, ticket });
        self.resched_cpu(node, now, out);
        ticket
    }

    /// Submit an IO transfer of `mb` megabytes on a node's channel on
    /// behalf of `app`.
    pub fn spawn_io(
        &mut self,
        now: Millis,
        node: NodeId,
        app: ApplicationId,
        mb: f64,
        out: &mut Out,
    ) -> Ticket {
        self.next_ticket += 1;
        let ticket = Ticket(self.next_ticket);
        let cap = self.cfg.io_single_flow_mb_per_ms;
        let flow = self.node_mut(node).io.add_flow(now, mb, 1.0, cap);
        self.io_flows
            .insert((node.0, flow.0), FlowPurpose::AppWork { app, ticket });
        self.resched_io(node, now, out);
        ticket
    }

    /// A container's process exited normally.
    pub fn finish_container(
        &mut self,
        now: Millis,
        cid: ContainerId,
        logs: &mut LogStore,
        out: &mut Out,
    ) {
        let node_req_reserved = {
            let c = self.containers.get_mut(&cid).expect("unknown container");
            if let Some(nm) = c.nm_state.as_mut() {
                if nm.get() == NmContainerState::Running {
                    nm.transition(
                        NmContainerState::Done,
                        &cid.to_string(),
                        LogSource::NodeManager(c.node),
                        ts(now),
                        logs,
                    );
                }
            }
            if c.rm_state.get() == RmContainerState::Running {
                c.rm_state
                    .transition(RmContainerState::Completed, &cid.to_string(), ts(now), logs);
            }
            let r = (c.node, c.req, c.reserved, c.app);
            c.reserved = false;
            r
        };
        let (node, req, reserved, app) = (
            node_req_reserved.0,
            node_req_reserved.1,
            node_req_reserved.2,
            node_req_reserved.3,
        );
        if reserved {
            self.node_mut(node).release(req);
        }
        if let Some(a) = self.apps.get_mut(&app) {
            a.live_containers = a.live_containers.saturating_sub(1);
        }
        self.drain_opp_queue(now, node, out);
    }

    /// The AM unregistered: finish the application. Live containers are
    /// torn down; pending requests cancelled.
    pub fn finish_application(
        &mut self,
        now: Millis,
        app: ApplicationId,
        logs: &mut LogStore,
        out: &mut Out,
    ) {
        self.cancel_pending(app, u32::MAX);
        // Tear down any containers still holding resources.
        let cids: Vec<ContainerId> = self
            .containers
            .values()
            .filter(|c| c.app == app && c.rm_state.get() != RmContainerState::Completed)
            .map(|c| c.id)
            .collect();
        for cid in cids {
            let state = self.containers[&cid].rm_state.get();
            match state {
                RmContainerState::Running => self.finish_container(now, cid, logs, out),
                RmContainerState::Allocated | RmContainerState::Acquired => {
                    let (node, req, reserved) = {
                        let c = self.containers.get_mut(&cid).unwrap();
                        c.rm_state.transition(
                            RmContainerState::Completed,
                            &cid.to_string(),
                            ts(now),
                            logs,
                        );
                        let r = (c.node, c.req, c.reserved);
                        c.reserved = false;
                        r
                    };
                    if reserved {
                        self.node_mut(node).release(req);
                        self.drain_opp_queue(now, node, out);
                    }
                    if let Some(a) = self.apps.get_mut(&app) {
                        a.live_containers = a.live_containers.saturating_sub(1);
                    }
                }
                _ => {}
            }
        }
        let a = self.apps.get_mut(&app).expect("unknown app");
        a.alive = false;
        a.newly_allocated.clear();
        if a.state.get() == RmAppState::Running {
            a.state.transition(
                RmAppState::FinalSaving,
                "ATTEMPT_UNREGISTERED",
                &app.to_string(),
                ts(now),
                logs,
            );
            let d = self.sample(&self.cfg.rm_state_store_ms.clone());
            out.at(now + d, ClusterEvent::RmAppFinalSaved(app));
        }
        for n in &mut self.nodes {
            n.forget_app(app);
        }
    }

    // ------------------------------------------------------------------
    // Fault handling
    // ------------------------------------------------------------------

    /// Totals of injected faults so far (for metrics and sweeps).
    pub fn fault_counts(&self) -> FaultCounts {
        self.fault_counts
    }

    fn container_dead(&self, cid: ContainerId) -> bool {
        self.containers
            .get(&cid)
            .map(|c| c.rm_state.get().is_terminal())
            .unwrap_or(true)
    }

    /// A container died abnormally: NM-side failure transitions (unless
    /// the node itself is gone — a lost node's log simply truncates),
    /// RM-side KILLED, resource release, and routing — an AM container
    /// failure becomes an attempt failure, a worker failure a
    /// [`AppNotice::ProcessFailed`] the application layer can react to.
    fn fail_container(
        &mut self,
        now: Millis,
        cid: ContainerId,
        kind: FailureKind,
        logs: &mut LogStore,
        out: &mut Out,
    ) {
        match kind {
            FailureKind::Localization => self.fault_counts.localization_failures += 1,
            FailureKind::Launch => self.fault_counts.launch_failures += 1,
            FailureKind::NodeLost => self.fault_counts.killed_by_node_loss += 1,
        }
        obs::count_labeled("sim_faults_total", &[("kind", kind.label())], 1);
        let (app, node, req, reserved) = {
            let c = self.containers.get_mut(&cid).expect("unknown container");
            if kind != FailureKind::NodeLost {
                if let Some(nm) = c.nm_state.as_mut() {
                    let src = LogSource::NodeManager(c.node);
                    match nm.get() {
                        NmContainerState::Localizing => {
                            nm.transition(
                                NmContainerState::LocalizationFailed,
                                &cid.to_string(),
                                src,
                                ts(now),
                                logs,
                            );
                            nm.transition(
                                NmContainerState::Done,
                                &cid.to_string(),
                                src,
                                ts(now),
                                logs,
                            );
                        }
                        NmContainerState::Running => {
                            nm.transition(
                                NmContainerState::ExitedWithFailure,
                                &cid.to_string(),
                                src,
                                ts(now),
                                logs,
                            );
                            nm.transition(
                                NmContainerState::Done,
                                &cid.to_string(),
                                src,
                                ts(now),
                                logs,
                            );
                        }
                        _ => {}
                    }
                }
            }
            if !c.rm_state.get().is_terminal() {
                c.rm_state
                    .transition(RmContainerState::Killed, &cid.to_string(), ts(now), logs);
            }
            let r = (c.app, c.node, c.req, c.reserved);
            c.reserved = false;
            r
        };
        if reserved && self.nodes[node.0 as usize].alive {
            self.node_mut(node).release(req);
        }
        if let Some(a) = self.apps.get_mut(&app) {
            a.live_containers = a.live_containers.saturating_sub(1);
        }
        self.drain_opp_queue(now, node, out);
        let is_am = self
            .apps
            .get(&app)
            .map(|a| a.am_container == Some(cid))
            .unwrap_or(false);
        if is_am {
            self.fail_am_attempt(now, app, logs, out);
        } else {
            out.notify(AppNotice::ProcessFailed {
                app,
                container: cid,
                node,
                kind,
            });
        }
    }

    /// Kill a container as collateral of an attempt failure: terminal
    /// transitions and resource release, no notice (the application layer
    /// learns about the whole attempt via [`AppNotice::AttemptRetry`]).
    fn kill_container(
        &mut self,
        now: Millis,
        cid: ContainerId,
        logs: &mut LogStore,
        out: &mut Out,
    ) {
        let (node, req, reserved) = {
            let Some(c) = self.containers.get_mut(&cid) else {
                return;
            };
            if c.rm_state.get().is_terminal() {
                return;
            }
            if let Some(nm) = c.nm_state.as_mut() {
                if nm.get() == NmContainerState::Running && self.nodes[c.node.0 as usize].alive {
                    nm.transition(
                        NmContainerState::Done,
                        &cid.to_string(),
                        LogSource::NodeManager(c.node),
                        ts(now),
                        logs,
                    );
                }
            }
            c.rm_state
                .transition(RmContainerState::Killed, &cid.to_string(), ts(now), logs);
            let r = (c.node, c.req, c.reserved);
            c.reserved = false;
            r
        };
        if reserved && self.nodes[node.0 as usize].alive {
            self.node_mut(node).release(req);
        }
        self.drain_opp_queue(now, node, out);
    }

    /// YARN-style AM failure handling: tear down the attempt's containers,
    /// then either start attempt N+1 (re-running the AM scheduling/launch
    /// protocol) or — attempts exhausted — drive the application to
    /// terminal FAILED.
    fn fail_am_attempt(
        &mut self,
        now: Millis,
        app: ApplicationId,
        logs: &mut LogStore,
        out: &mut Out,
    ) {
        self.cancel_pending(app, u32::MAX);
        let victims: Vec<ContainerId> = self
            .containers
            .values()
            .filter(|c| c.app == app && !c.rm_state.get().is_terminal())
            .map(|c| c.id)
            .collect();
        for v in victims {
            self.kill_container(now, v, logs, out);
        }
        let max = self.faults.max_am_attempts();
        let (attempt, am_req) = {
            let a = self.apps.get_mut(&app).expect("unknown app");
            a.heartbeating = false;
            a.am_container = None;
            a.newly_allocated.clear();
            a.pending_asks.clear();
            (a.attempt, a.submission.am_resource)
        };
        let t = &crate::schema::RM_ATTEMPT_FAILED;
        logs.info(
            LogSource::ResourceManager,
            ts(now),
            t.class,
            t.msg(&[&app.attempt(attempt)]),
        );
        if attempt < max {
            let a = self.apps.get_mut(&app).expect("unknown app");
            if a.state.get() == RmAppState::Running {
                // Registered AMs fall back to ACCEPTED while the next
                // attempt launches; unregistered ones never left it.
                a.state.transition(
                    RmAppState::Accepted,
                    "ATTEMPT_FAILED",
                    &app.to_string(),
                    ts(now),
                    logs,
                );
            }
            a.attempt = attempt + 1;
            a.next_container_seq = 1;
            self.fault_counts.am_retries += 1;
            obs::count_labeled("sim_faults_total", &[("kind", "am_retry")], 1);
            self.backlog.push_back(PendingReq {
                app,
                remaining: 1,
                req: am_req,
                is_am: true,
            });
            out.notify(AppNotice::AttemptRetry {
                app,
                new_attempt: attempt + 1,
            });
        } else {
            let a = self.apps.get_mut(&app).expect("unknown app");
            a.alive = false;
            a.failed = true;
            a.state.transition(
                RmAppState::FinalSaving,
                "ATTEMPT_FAILED",
                &app.to_string(),
                ts(now),
                logs,
            );
            self.fault_counts.apps_failed += 1;
            obs::count_labeled("sim_faults_total", &[("kind", "app_failed")], 1);
            let d = self.sample(&self.cfg.rm_state_store_ms.clone());
            out.at(now + d, ClusterEvent::RmAppFinalSaved(app));
            out.notify(AppNotice::AppFailed { app });
            for n in &mut self.nodes {
                n.forget_app(app);
            }
        }
    }

    /// Scripted node loss: the NM stops heartbeating (its log truncates),
    /// the RM expires it and kills every container it hosted.
    fn on_node_lost(&mut self, now: Millis, node: NodeId, logs: &mut LogStore, out: &mut Out) {
        if !self.nodes[node.0 as usize].alive {
            return;
        }
        self.nodes[node.0 as usize].alive = false;
        self.fault_counts.nodes_lost += 1;
        obs::count_labeled("sim_faults_total", &[("kind", "node_lost")], 1);
        let t = &crate::schema::RM_NODE_LOST;
        logs.info(
            LogSource::ResourceManager,
            ts(now),
            t.class,
            t.msg(&[&node]),
        );
        let victims: Vec<ContainerId> = self
            .containers
            .values()
            .filter(|c| c.node == node && !c.rm_state.get().is_terminal())
            .map(|c| c.id)
            .collect();
        for cid in victims {
            if self.container_dead(cid) {
                continue; // killed transitively by an earlier AM failure
            }
            self.fail_container(now, cid, FailureKind::NodeLost, logs, out);
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// Dispatch a cluster event.
    pub fn handle(&mut self, now: Millis, ev: ClusterEvent, logs: &mut LogStore, out: &mut Out) {
        match ev {
            ClusterEvent::NmHeartbeat(node) => self.on_nm_heartbeat(now, node, logs, out),
            ClusterEvent::AmHeartbeat(app) => self.on_am_heartbeat(now, app, logs, out),
            ClusterEvent::CpuTick(node, gen) => {
                let done = self.node_mut(node).cpu.on_tick(now, gen);
                for flow in done {
                    if let Some(p) = self.cpu_flows.remove(&(node.0, flow.0)) {
                        self.on_flow_done(now, node, p, logs, out);
                    }
                }
                self.resched_cpu(node, now, out);
            }
            ClusterEvent::IoTick(node, gen) => {
                let done = self.node_mut(node).io.on_tick(now, gen);
                for flow in done {
                    if let Some(p) = self.io_flows.remove(&(node.0, flow.0)) {
                        self.on_flow_done(now, node, p, logs, out);
                    }
                }
                self.resched_io(node, now, out);
            }
            ClusterEvent::StoreTick(node, gen) => {
                let done = match self.node_mut(node).local_store.as_mut() {
                    Some(store) => store.on_tick(now, gen),
                    None => Vec::new(),
                };
                for flow in done {
                    if let Some(p) = self.store_flows.remove(&(node.0, flow.0)) {
                        self.on_flow_done(now, node, p, logs, out);
                    }
                }
                self.resched_store(node, now, out);
            }
            ClusterEvent::RmAppSaved(app) => {
                let a = self.apps.get_mut(&app).expect("unknown app");
                a.state.transition(
                    RmAppState::Submitted,
                    "APP_NEW_SAVED",
                    &app.to_string(),
                    ts(now),
                    logs,
                );
                let d = self.sample(&self.cfg.rm_accept_ms.clone());
                out.at(now + d, ClusterEvent::RmAppAccepted(app));
            }
            ClusterEvent::RmAppAccepted(app) => {
                let am_req = {
                    let a = self.apps.get_mut(&app).expect("unknown app");
                    a.state.transition(
                        RmAppState::Accepted,
                        "APP_ACCEPTED",
                        &app.to_string(),
                        ts(now),
                        logs,
                    );
                    a.submission.am_resource
                };
                // The AM container always goes through the central
                // scheduler, even in opportunistic mode (hybrid design).
                self.backlog.push_back(PendingReq {
                    app,
                    remaining: 1,
                    req: am_req,
                    is_am: true,
                });
            }
            ClusterEvent::OppAllocate { app, count, req } => {
                self.on_opp_allocate(now, app, count, req, logs, out)
            }
            ClusterEvent::NmStartContainer(cid) => self.on_nm_start(now, cid, logs, out),
            ClusterEvent::NmHandoff(cid) => self.on_nm_handoff(now, cid, logs, out),
            ClusterEvent::RmAppFinalSaved(app) => {
                let a = self.apps.get_mut(&app).expect("unknown app");
                if a.failed {
                    a.state.transition(
                        RmAppState::Failed,
                        "APP_UPDATE_SAVED",
                        &app.to_string(),
                        ts(now),
                        logs,
                    );
                } else {
                    a.state.transition(
                        RmAppState::Finishing,
                        "APP_UPDATE_SAVED",
                        &app.to_string(),
                        ts(now),
                        logs,
                    );
                    a.state.transition(
                        RmAppState::Finished,
                        "ATTEMPT_FINISHED",
                        &app.to_string(),
                        ts(now),
                        logs,
                    );
                }
            }
            ClusterEvent::NodeLost(node) => self.on_node_lost(now, node, logs, out),
        }
    }

    /// Capacity-Scheduler assignment on one node heartbeat: round-robin
    /// over backlog entries, granting to the heartbeating node while it
    /// fits, bounded by the per-heartbeat batch cap and the per-request
    /// spread rule (`ceil(remaining / spread_factor)` per heartbeat, so
    /// small requests scatter across nodes the way block locality scatters
    /// them on a real cluster).
    fn on_nm_heartbeat(&mut self, now: Millis, node: NodeId, logs: &mut LogStore, out: &mut Out) {
        if !self.nodes[node.0 as usize].alive {
            return; // lost node: heartbeats stop, nothing is assigned
        }
        // Fair Scheduler: serve the most starved application first by
        // rotating it to the backlog's front. FIFO leaves arrival order.
        if self.cfg.queue_policy == QueuePolicy::Fair && self.backlog.len() > 1 {
            let mut order: Vec<usize> = (0..self.backlog.len()).collect();
            order.sort_by_key(|&i| {
                let p = &self.backlog[i];
                (self.apps[&p.app].live_containers, i)
            });
            let reordered: Vec<PendingReq> = order
                .into_iter()
                .map(|i| PendingReq {
                    app: self.backlog[i].app,
                    remaining: self.backlog[i].remaining,
                    req: self.backlog[i].req,
                    is_am: self.backlog[i].is_am,
                })
                .collect();
            self.backlog = reordered.into();
        }
        let mut assigned = 0u32;
        let spread = self.cfg.assign_spread_factor.max(1);
        let mut i = 0;
        while i < self.backlog.len() && assigned < self.cfg.assign_per_heartbeat {
            let (app, req, is_am, remaining) = {
                let p = &self.backlog[i];
                (p.app, p.req, p.is_am, p.remaining)
            };
            if !self.apps[&app].alive {
                self.backlog.remove(i);
                continue;
            }
            let quota = remaining.div_ceil(spread);
            let mut granted = 0u32;
            while granted < quota
                && assigned < self.cfg.assign_per_heartbeat
                && self.nodes[node.0 as usize].fits(req)
            {
                self.allocate_container(now, app, node, req, is_am, logs, out);
                granted += 1;
                assigned += 1;
            }
            let p = &mut self.backlog[i];
            p.remaining -= granted;
            if p.remaining == 0 {
                self.backlog.remove(i);
            } else {
                i += 1;
            }
        }
        out.at(
            now + Millis(self.cfg.nm_heartbeat_ms),
            ClusterEvent::NmHeartbeat(node),
        );
    }

    fn on_am_heartbeat(
        &mut self,
        now: Millis,
        app: ApplicationId,
        logs: &mut LogStore,
        out: &mut Out,
    ) {
        let Some(a) = self.apps.get_mut(&app) else {
            return;
        };
        if !a.alive || !a.heartbeating {
            return;
        }
        let pulled: Vec<(ContainerId, NodeId)> = std::mem::take(&mut a.newly_allocated);
        let asks: Vec<(u32, ResourceReq)> = std::mem::take(&mut a.pending_asks);
        let interval = a.submission.am_heartbeat_ms;
        for (count, req) in asks {
            self.backlog.push_back(PendingReq {
                app,
                remaining: count,
                req,
                is_am: false,
            });
        }
        for (cid, _) in &pulled {
            let c = self.containers.get_mut(cid).expect("container");
            c.rm_state
                .transition(RmContainerState::Acquired, &cid.to_string(), ts(now), logs);
        }
        if !pulled.is_empty() {
            out.notify(AppNotice::ContainersGranted {
                app,
                containers: pulled,
            });
        }
        out.at(now + Millis(interval), ClusterEvent::AmHeartbeat(app));
    }

    /// Create a container in ALLOCATED state on `node`.
    #[allow(clippy::too_many_arguments)]
    fn allocate_container(
        &mut self,
        now: Millis,
        app: ApplicationId,
        node: NodeId,
        req: ResourceReq,
        is_am: bool,
        logs: &mut LogStore,
        out: &mut Out,
    ) -> ContainerId {
        let a = self.apps.get_mut(&app).expect("unknown app");
        let cid = app.attempt(a.attempt).container(a.next_container_seq);
        a.next_container_seq += 1;
        let mut rm_state = Tracked::new(RmContainerState::New);
        rm_state.transition(RmContainerState::Allocated, &cid.to_string(), ts(now), logs);
        self.containers_allocated += 1;
        self.apps.get_mut(&app).expect("app").live_containers += 1;
        self.node_mut(node).reserve(req);
        let mut info = ContainerInfo {
            id: cid,
            app,
            node,
            req,
            rm_state,
            nm_state: None,
            spec: None,
            pending_local: 0,
            opportunistic: false,
            reserved: true,
        };
        if is_am {
            // The RM acquires and launches the AM container itself.
            info.rm_state
                .transition(RmContainerState::Acquired, &cid.to_string(), ts(now), logs);
            let spec = self.apps[&app].submission.am_launch.clone();
            info.spec = Some(spec);
            self.containers.insert(cid, info);
            self.apps.get_mut(&app).unwrap().am_container = Some(cid);
            let d = self.sample(&self.cfg.rpc_ms.clone());
            out.at(now + d, ClusterEvent::NmStartContainer(cid));
        } else {
            self.containers.insert(cid, info);
            self.apps
                .get_mut(&app)
                .unwrap()
                .newly_allocated
                .push((cid, node));
        }
        cid
    }

    fn on_opp_allocate(
        &mut self,
        now: Millis,
        app: ApplicationId,
        count: u32,
        req: ResourceReq,
        logs: &mut LogStore,
        out: &mut Out,
    ) {
        if !self.apps.get(&app).map(|a| a.alive).unwrap_or(false) {
            return;
        }
        let mut granted = Vec::new();
        for _ in 0..count {
            // Node choice: uniformly random (the paper's measured system,
            // no global view — §IV-C) or Sparrow-style power-of-d probing;
            // optionally skip over-long queues.
            let mut node = self.pick_opportunistic_node();
            if self.cfg.opp_queue_cap != usize::MAX {
                for _ in 0..self.nodes.len() {
                    if self.nodes[node.0 as usize].opp_queue.len() < self.cfg.opp_queue_cap {
                        break;
                    }
                    node = self.pick_opportunistic_node();
                }
            }
            let a = self.apps.get_mut(&app).expect("unknown app");
            let cid = app.attempt(a.attempt).container(a.next_container_seq);
            a.next_container_seq += 1;
            let mut rm_state = Tracked::new(RmContainerState::New);
            rm_state.transition(RmContainerState::Allocated, &cid.to_string(), ts(now), logs);
            rm_state.transition(RmContainerState::Acquired, &cid.to_string(), ts(now), logs);
            self.containers_allocated += 1;
            self.apps
                .get_mut(&app)
                .expect("unknown app")
                .live_containers += 1;
            self.containers.insert(
                cid,
                ContainerInfo {
                    id: cid,
                    app,
                    node,
                    req,
                    rm_state,
                    nm_state: None,
                    spec: None,
                    pending_local: 0,
                    opportunistic: true,
                    reserved: false,
                },
            );
            granted.push((cid, node));
        }
        out.notify(AppNotice::ContainersGranted {
            app,
            containers: granted,
        });
    }

    /// A uniformly random live node. Re-draws on lost nodes (extra draws
    /// only happen after a scripted node loss); falls back to node 0 when
    /// every node is dead.
    fn random_live_node(&mut self) -> NodeId {
        let n = self.nodes.len() as u64;
        for _ in 0..4 * self.nodes.len().max(1) {
            let id = NodeId(self.rng_sched.below(n) as u32);
            if self.nodes[id.0 as usize].alive {
                return id;
            }
        }
        NodeId(0)
    }

    /// Distributed-scheduler node selection.
    fn pick_opportunistic_node(&mut self) -> NodeId {
        match self.cfg.opp_placement {
            OppPlacement::Random => self.random_live_node(),
            OppPlacement::PowerOfChoices(d) => {
                let mut best = self.random_live_node();
                for _ in 1..d.max(1) {
                    let cand = self.random_live_node();
                    let (bq, cq) = (
                        self.nodes[best.0 as usize].opp_queue.len(),
                        self.nodes[cand.0 as usize].opp_queue.len(),
                    );
                    if cq < bq
                        || (cq == bq
                            && self.nodes[cand.0 as usize].used_vcores()
                                < self.nodes[best.0 as usize].used_vcores())
                    {
                        best = cand;
                    }
                }
                best
            }
        }
    }

    /// startContainer arrived at the NM: begin localization.
    fn on_nm_start(&mut self, now: Millis, cid: ContainerId, logs: &mut LogStore, out: &mut Out) {
        let (node, app, resources) = {
            let c = self.containers.get_mut(&cid).expect("unknown container");
            let mut nm = Tracked::new(NmContainerState::New);
            nm.transition(
                NmContainerState::Localizing,
                &cid.to_string(),
                LogSource::NodeManager(c.node),
                ts(now),
                logs,
            );
            c.nm_state = Some(nm);
            (
                c.node,
                c.app,
                c.spec.as_ref().expect("spec").localization.clone(),
            )
        };
        if self.faults.enabled() && self.faults.localization_fails(cid) {
            let t = &crate::schema::NM_LOCALIZER_FAILED;
            logs.info(
                LogSource::NodeManager(node),
                ts(now),
                t.class,
                t.msg(&[&cid]),
            );
            self.fail_container(now, cid, FailureKind::Localization, logs, out);
            return;
        }
        let mut pending = 0usize;
        for (idx, res) in resources.iter().enumerate() {
            let cached = self.cfg.localization_cache
                && self.nodes[node.0 as usize].is_cached(app, &res.name);
            if cached {
                continue;
            }
            pending += 1;
            if self.nodes[node.0 as usize].inflight_contains(app, &res.name) {
                self.node_mut(node).inflight_wait(app, &res.name, cid);
            } else {
                self.node_mut(node).inflight_start(app, &res.name, cid);
                // NameNode lookup (CPU) then the download (IO).
                let meta = self.sample(&self.cfg.localize_meta_cpu_ms.clone()).as_f64();
                let flow = self.node_mut(node).cpu.add_flow(now, meta, 1.0, 1.0);
                self.cpu_flows.insert(
                    (node.0, flow.0),
                    FlowPurpose::LocalizeMeta { cid, res_idx: idx },
                );
                self.resched_cpu(node, now, out);
            }
        }
        self.containers.get_mut(&cid).unwrap().pending_local = pending;
        if pending == 0 {
            self.mark_scheduled(now, cid, logs, out);
        }
    }

    /// All localization done: LOCALIZING → SCHEDULED, then hand off to the
    /// launcher (queueing opportunistic containers when the node is full).
    fn mark_scheduled(
        &mut self,
        now: Millis,
        cid: ContainerId,
        logs: &mut LogStore,
        out: &mut Out,
    ) {
        let (node, req, opportunistic) = {
            let c = self.containers.get_mut(&cid).expect("unknown container");
            if c.rm_state.get().is_terminal() {
                return; // killed while localizing (node loss, AM retry)
            }
            c.nm_state.as_mut().expect("nm state").transition(
                NmContainerState::Scheduled,
                &cid.to_string(),
                LogSource::NodeManager(c.node),
                ts(now),
                logs,
            );
            (c.node, c.req, c.opportunistic)
        };
        if opportunistic {
            if self.nodes[node.0 as usize].fits(req)
                && self.nodes[node.0 as usize].opp_queue.is_empty()
            {
                self.node_mut(node).reserve(req);
                self.containers.get_mut(&cid).unwrap().reserved = true;
            } else {
                self.node_mut(node).opp_queue.push_back(cid);
                return; // waits for capacity — Fig 7-(b)'s queueing delay
            }
        }
        let d = self.sample(&self.cfg.nm_handoff_ms.clone());
        out.at(now + d, ClusterEvent::NmHandoff(cid));
    }

    /// Launcher picked the container up: SCHEDULED → RUNNING, then the
    /// runtime (optional Docker) and the JVM start burn node resources.
    fn on_nm_handoff(&mut self, now: Millis, cid: ContainerId, logs: &mut LogStore, out: &mut Out) {
        let (node, runtime) = {
            let c = self.containers.get_mut(&cid).expect("unknown container");
            if c.rm_state.get().is_terminal() {
                return; // killed while queued (node loss, AM retry)
            }
            c.nm_state.as_mut().expect("nm state").transition(
                NmContainerState::Running,
                &cid.to_string(),
                LogSource::NodeManager(c.node),
                ts(now),
                logs,
            );
            (c.node, c.spec.as_ref().expect("spec").runtime)
        };
        if self.faults.enabled() && self.faults.launch_fails(cid) {
            let t = &crate::schema::NM_LAUNCH_FAILED;
            logs.info(
                LogSource::NodeManager(node),
                ts(now),
                t.class,
                t.msg(&[&cid]),
            );
            self.fail_container(now, cid, FailureKind::Launch, logs, out);
            return;
        }
        match runtime {
            ContainerRuntime::Docker => {
                let mb = self.cfg.docker.image_mb * self.cfg.docker.read_fraction;
                let cap = self.cfg.io_single_flow_mb_per_ms;
                let flow = self.node_mut(node).io.add_flow(now, mb, 1.0, cap);
                self.io_flows
                    .insert((node.0, flow.0), FlowPurpose::DockerIo { cid });
                self.resched_io(node, now, out);
            }
            ContainerRuntime::Default => self.start_jvm(now, cid, node, out),
        }
    }

    fn start_jvm(&mut self, now: Millis, cid: ContainerId, node: NodeId, out: &mut Out) {
        let io_mb = self.containers[&cid]
            .spec
            .as_ref()
            .expect("spec")
            .launch_io_mb;
        if io_mb > 0.0 {
            let cap = self.cfg.io_single_flow_mb_per_ms;
            let flow = self.node_mut(node).io.add_flow(now, io_mb, 1.0, cap);
            self.io_flows
                .insert((node.0, flow.0), FlowPurpose::LaunchIo { cid });
            self.resched_io(node, now, out);
        } else {
            self.start_jvm_cpu(now, cid, node, out);
        }
    }

    fn start_jvm_cpu(&mut self, now: Millis, cid: ContainerId, node: NodeId, out: &mut Out) {
        let (work, threads) = {
            let spec = self.containers[&cid].spec.as_ref().expect("spec");
            (spec.launch_cpu_ms, spec.launch_threads)
        };
        let flow = self
            .node_mut(node)
            .cpu
            .add_flow(now, work, threads, threads);
        self.cpu_flows
            .insert((node.0, flow.0), FlowPurpose::LaunchCpu { cid });
        self.resched_cpu(node, now, out);
    }

    fn on_flow_done(
        &mut self,
        now: Millis,
        node: NodeId,
        purpose: FlowPurpose,
        logs: &mut LogStore,
        out: &mut Out,
    ) {
        match purpose {
            FlowPurpose::AppWork { app, ticket } => {
                if !self.nodes[node.0 as usize].alive {
                    return; // work died with the node
                }
                out.notify(AppNotice::WorkDone { app, ticket });
            }
            FlowPurpose::LocalizeMeta { cid, res_idx } => {
                // Metadata done: start the download — on the dedicated
                // localization store when configured (§V-B optimization),
                // else on the shared IO channel.
                let Some(c) = self.containers.get(&cid) else {
                    return;
                };
                if c.rm_state.get().is_terminal() {
                    return; // owner died while the lookup ran
                }
                let mb = c.spec.as_ref().expect("spec").localization[res_idx].mb;
                let cap = self.cfg.io_single_flow_mb_per_ms;
                let purpose = FlowPurpose::LocalizeIo { cid, res_idx };
                if self.nodes[node.0 as usize].local_store.is_some() {
                    let store = self.node_mut(node).local_store.as_mut().unwrap();
                    let flow = store.add_flow(now, mb, 1.0, cap);
                    self.store_flows.insert((node.0, flow.0), purpose);
                    self.resched_store(node, now, out);
                } else {
                    let flow = self.node_mut(node).io.add_flow(now, mb, 1.0, cap);
                    self.io_flows.insert((node.0, flow.0), purpose);
                    self.resched_io(node, now, out);
                }
            }
            FlowPurpose::LocalizeIo { cid, res_idx } => {
                let Some(c) = self.containers.get(&cid) else {
                    return;
                };
                let app = c.app;
                let name = c.spec.as_ref().expect("spec").localization[res_idx]
                    .name
                    .clone();
                let woken = self.node_mut(node).inflight_finish(app, &name);
                for w in woken {
                    let Some(wc) = self.containers.get_mut(&w) else {
                        continue;
                    };
                    if wc.rm_state.get().is_terminal() {
                        continue; // waiter died while the download ran
                    }
                    debug_assert!(wc.pending_local > 0);
                    wc.pending_local -= 1;
                    if wc.pending_local == 0 {
                        self.mark_scheduled(now, w, logs, out);
                    }
                }
            }
            FlowPurpose::DockerIo { cid } => {
                if self.container_dead(cid) {
                    return;
                }
                let setup = self.sample(&self.cfg.docker.setup_cpu_ms.clone()).as_f64();
                let flow = self.node_mut(node).cpu.add_flow(now, setup, 1.0, 1.0);
                self.cpu_flows
                    .insert((node.0, flow.0), FlowPurpose::DockerCpu { cid });
                self.resched_cpu(node, now, out);
            }
            FlowPurpose::DockerCpu { cid } => {
                if self.container_dead(cid) {
                    return;
                }
                self.start_jvm(now, cid, node, out)
            }
            FlowPurpose::LaunchIo { cid } => {
                if self.container_dead(cid) {
                    return;
                }
                self.start_jvm_cpu(now, cid, node, out)
            }
            FlowPurpose::LaunchCpu { cid } => {
                let Some(c) = self.containers.get_mut(&cid) else {
                    return;
                };
                if c.rm_state.get().is_terminal() {
                    return; // died while the JVM was starting
                }
                if c.rm_state.get() == RmContainerState::Acquired {
                    c.rm_state.transition(
                        RmContainerState::Running,
                        &cid.to_string(),
                        ts(now),
                        logs,
                    );
                }
                let kind = c.spec.as_ref().expect("spec").kind;
                out.notify(AppNotice::ProcessStarted {
                    app: c.app,
                    container: cid,
                    node,
                    kind,
                });
            }
        }
    }

    /// After capacity freed on `node`, start queued opportunistic
    /// containers FIFO while they fit.
    fn drain_opp_queue(&mut self, now: Millis, node: NodeId, out: &mut Out) {
        if !self.nodes[node.0 as usize].alive {
            return; // lost node starts nothing
        }
        while let Some(&cid) = self.nodes[node.0 as usize].opp_queue.front() {
            let info = self.containers.get(&cid).map(|c| (c.rm_state.get(), c.req));
            let Some((state, req)) = info else {
                self.node_mut(node).opp_queue.pop_front();
                continue;
            };
            if state.is_terminal() {
                // Owner finished (or was killed) while queued.
                self.node_mut(node).opp_queue.pop_front();
                continue;
            }
            if !self.nodes[node.0 as usize].fits(req) {
                break;
            }
            self.node_mut(node).opp_queue.pop_front();
            self.node_mut(node).reserve(req);
            self.containers.get_mut(&cid).unwrap().reserved = true;
            let d = self.sample(&self.cfg.nm_handoff_ms.clone());
            out.at(now + d, ClusterEvent::NmHandoff(cid));
        }
    }

    fn resched_cpu(&mut self, node: NodeId, now: Millis, out: &mut Out) {
        if let Some((at, gen)) = self.nodes[node.0 as usize].cpu.next_completion(now) {
            out.at(at, ClusterEvent::CpuTick(node, gen));
        }
    }

    fn resched_io(&mut self, node: NodeId, now: Millis, out: &mut Out) {
        if let Some((at, gen)) = self.nodes[node.0 as usize].io.next_completion(now) {
            out.at(at, ClusterEvent::IoTick(node, gen));
        }
    }

    fn resched_store(&mut self, node: NodeId, now: Millis, out: &mut Out) {
        if let Some(store) = self.nodes[node.0 as usize].local_store.as_ref() {
            if let Some((at, gen)) = store.next_completion(now) {
                out.at(at, ClusterEvent::StoreTick(node, gen));
            }
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("apps", &self.apps.len())
            .field("containers", &self.containers.len())
            .field("backlog", &self.backlog.len())
            .finish()
    }
}
