//! End-to-end protocol tests: drive the cluster through full application
//! lifecycles with a minimal event pump and assert on the *logs* it emits —
//! the same evidence SDchecker consumes.

use logmodel::{ApplicationId, ContainerId, Epoch, LogSource, LogStore, NodeId};
use simkit::{EventQueue, Millis};

use crate::cluster::Cluster;
use crate::config::{ClusterConfig, ContainerRuntime, ResourceReq};
use crate::effects::{
    AppNotice, AppSubmission, ClusterEvent, InstanceKind, LaunchSpec, LocalResource, Out,
};
use crate::faults::FaultConfig;

/// Minimal deterministic event pump around a [`Cluster`].
struct Pump {
    cluster: Cluster,
    logs: LogStore,
    queue: EventQueue<ClusterEvent>,
    notices: Vec<AppNotice>,
    now: Millis,
}

impl Pump {
    fn new(cfg: ClusterConfig) -> Pump {
        let epoch = Epoch::default_run();
        let mut cluster = Cluster::new(cfg, epoch.unix_ms, 7);
        let mut out = Out::new();
        cluster.start(&mut out);
        let mut p = Pump {
            cluster,
            logs: LogStore::new(epoch),
            queue: EventQueue::new(),
            notices: Vec::new(),
            now: Millis::ZERO,
        };
        p.absorb(out);
        p
    }

    fn absorb(&mut self, out: Out) {
        for (t, ev) in out.events {
            self.queue.push(t, ev);
        }
        self.notices.extend(out.notices);
    }

    fn step(&mut self) -> bool {
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        self.now = t;
        let mut out = Out::new();
        self.cluster.handle(t, ev, &mut self.logs, &mut out);
        self.absorb(out);
        true
    }

    /// Run until a notice satisfying `pred` appears (consuming earlier
    /// notices into the buffer), up to `cap` events.
    fn run_until<F: Fn(&AppNotice) -> bool>(&mut self, pred: F, cap: u64) -> AppNotice {
        for _ in 0..cap {
            if let Some(pos) = self.notices.iter().position(&pred) {
                return self.notices.remove(pos);
            }
            assert!(self.step(), "queue drained before notice");
        }
        panic!("notice not raised within {cap} events");
    }

    /// Run until the clock passes `t` or the queue drains.
    fn run_past(&mut self, t: Millis) {
        while self.now < t && self.step() {}
    }

    fn submit(&mut self, sub: AppSubmission) -> ApplicationId {
        let mut out = Out::new();
        let id = self
            .cluster
            .submit_application(self.now, sub, &mut self.logs, &mut out);
        self.absorb(out);
        id
    }

    fn with_cluster<R>(
        &mut self,
        f: impl FnOnce(&mut Cluster, Millis, &mut LogStore, &mut Out) -> R,
    ) -> R {
        let mut out = Out::new();
        let r = f(&mut self.cluster, self.now, &mut self.logs, &mut out);
        self.absorb(out);
        r
    }
}

fn driver_launch() -> LaunchSpec {
    LaunchSpec {
        kind: InstanceKind::SparkDriver,
        localization: vec![
            LocalResource::new("spark-libs.jar", 450.0),
            LocalResource::new("app.jar", 50.0),
        ],
        runtime: ContainerRuntime::Default,
        launch_cpu_ms: 700.0,
        launch_threads: 1.0,
        launch_io_mb: 0.0,
    }
}

fn executor_launch() -> LaunchSpec {
    LaunchSpec {
        kind: InstanceKind::SparkExecutor,
        ..driver_launch()
    }
}

fn spark_submission() -> AppSubmission {
    AppSubmission {
        name: "spark-sql".into(),
        am_resource: ResourceReq::SPARK_DRIVER,
        am_launch: driver_launch(),
        am_heartbeat_ms: 200,
    }
}

fn messages_about<'a>(logs: &'a LogStore, src: LogSource, needle: &str) -> Vec<&'a str> {
    logs.records(src)
        .iter()
        .filter(|r| r.message.contains(needle))
        .map(|r| r.message.as_str())
        .collect()
}

#[test]
fn am_container_full_lifecycle_logs() {
    let mut p = Pump::new(ClusterConfig::default());
    let app = p.submit(spark_submission());
    let notice = p.run_until(
        |n| {
            matches!(
                n,
                AppNotice::ProcessStarted {
                    kind: InstanceKind::SparkDriver,
                    ..
                }
            )
        },
        100_000,
    );
    let AppNotice::ProcessStarted {
        app: napp,
        container,
        node,
        ..
    } = notice
    else {
        unreachable!()
    };
    assert_eq!(napp, app);
    assert!(container.is_am());

    // RM app state chain.
    let rm = messages_about(&p.logs, LogSource::ResourceManager, &app.to_string());
    let expect = [
        "from NEW to NEW_SAVING",
        "from NEW_SAVING to SUBMITTED",
        "from SUBMITTED to ACCEPTED",
    ];
    for (i, e) in expect.iter().enumerate() {
        assert!(rm[i].contains(e), "rm[{i}] = {}", rm[i]);
    }

    // RM container chain: ALLOCATED then ACQUIRED.
    let rc = messages_about(&p.logs, LogSource::ResourceManager, &container.to_string());
    assert!(rc[0].contains("from NEW to ALLOCATED"), "{}", rc[0]);
    assert!(rc[1].contains("from ALLOCATED to ACQUIRED"), "{}", rc[1]);

    // NM chain on the right node's log.
    let nm = messages_about(
        &p.logs,
        LogSource::NodeManager(node),
        &container.to_string(),
    );
    assert!(nm[0].contains("from NEW to LOCALIZING"), "{}", nm[0]);
    assert!(nm[1].contains("from LOCALIZING to SCHEDULED"), "{}", nm[1]);
    assert!(nm[2].contains("from SCHEDULED to RUNNING"), "{}", nm[2]);

    // Timing sanity: ≥ 500 MB of localization at ≤ 1 MB/ms plus a 700 ms
    // JVM start means the process can't be up before ~1.2 s.
    assert!(p.now >= Millis(1200), "driver up too fast: {}", p.now);
}

#[test]
fn executors_are_granted_after_registration() {
    let mut p = Pump::new(ClusterConfig::default());
    let app = p.submit(spark_submission());
    p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 100_000);

    p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
    p.with_cluster(|c, now, _logs, out| {
        c.request_containers(now, app, 4, ResourceReq::SPARK_EXECUTOR, out)
    });

    let notice = p.run_until(
        |n| matches!(n, AppNotice::ContainersGranted { .. }),
        100_000,
    );
    let AppNotice::ContainersGranted { containers, .. } = notice else {
        unreachable!()
    };
    // Executor containers arrive in one or more grants; launch the first
    // batch and expect processes to start.
    assert!(!containers.is_empty());
    let mut started = 0;
    for (cid, _) in &containers {
        let cid = *cid;
        p.with_cluster(|c, now, _l, out| c.launch_container(now, cid, executor_launch(), out));
    }
    for _ in 0..containers.len() {
        p.run_until(
            |n| {
                matches!(
                    n,
                    AppNotice::ProcessStarted {
                        kind: InstanceKind::SparkExecutor,
                        ..
                    }
                )
            },
            200_000,
        );
        started += 1;
    }
    assert_eq!(started, containers.len());
    // RMApp must have logged the registration transition.
    let rm = messages_about(&p.logs, LogSource::ResourceManager, "ATTEMPT_REGISTERED");
    assert_eq!(rm.len(), 1);
    assert!(rm[0].contains("from ACCEPTED to RUNNING"));
}

#[test]
fn acquisition_waits_for_am_heartbeat() {
    // With a 1000 ms AM heartbeat, ALLOCATED→ACQUIRED must take ≤ 1 s and
    // be strictly positive on average (paper Fig 7-(c): capped at the
    // heartbeat interval).
    let mut sub = spark_submission();
    sub.am_heartbeat_ms = 1000;
    let mut p = Pump::new(ClusterConfig::default());
    let app = p.submit(sub);
    p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 100_000);
    p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
    p.with_cluster(|c, now, _l, out| {
        c.request_containers(now, app, 4, ResourceReq::SPARK_EXECUTOR, out)
    });
    p.run_until(
        |n| matches!(n, AppNotice::ContainersGranted { .. }),
        200_000,
    );

    // Mine the logs: per executor container, acquired - allocated ∈ (0, 1000].
    let rm = p.logs.records(LogSource::ResourceManager);
    let mut allocated = std::collections::HashMap::new();
    for r in rm {
        if r.message.contains("from NEW to ALLOCATED") {
            allocated.insert(r.message.split(' ').next().unwrap().to_string(), r.ts);
        }
        if r.message.contains("from ALLOCATED to ACQUIRED") {
            let key = r.message.split(' ').next().unwrap().to_string();
            if key.ends_with("000001") {
                continue; // AM container: acquired immediately by the RM
            }
            let alloc_ts = allocated[&key];
            let delay = r.ts.since(alloc_ts);
            assert!(delay <= 1000, "acquisition {delay} ms > heartbeat");
        }
    }
}

#[test]
fn localization_cache_dedups_same_node_downloads() {
    // One-node cluster: the driver localizes "spark-libs.jar"; executors on
    // the same node must reuse it and localize faster.
    let cfg = ClusterConfig {
        nodes: 1,
        ..ClusterConfig::default()
    };
    let mut p = Pump::new(cfg);
    let app = p.submit(spark_submission());
    p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 100_000);
    p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
    p.with_cluster(|c, now, _l, out| {
        c.request_containers(now, app, 1, ResourceReq::SPARK_EXECUTOR, out)
    });
    let AppNotice::ContainersGranted { containers, .. } = p.run_until(
        |n| matches!(n, AppNotice::ContainersGranted { .. }),
        200_000,
    ) else {
        unreachable!()
    };
    let (cid, node) = containers[0];
    p.with_cluster(|c, now, _l, out| c.launch_container(now, cid, executor_launch(), out));
    p.run_until(
        |n| {
            matches!(
                n,
                AppNotice::ProcessStarted {
                    kind: InstanceKind::SparkExecutor,
                    ..
                }
            )
        },
        200_000,
    );

    // Localization delay per container = LOCALIZING→SCHEDULED.
    let nm = p.logs.records(LogSource::NodeManager(node));
    let mut start = std::collections::HashMap::new();
    let mut local_delays = std::collections::HashMap::new();
    for r in nm {
        let id: ContainerId = r.message.split(' ').nth(1).unwrap().parse().unwrap();
        if r.message.contains("from NEW to LOCALIZING") {
            start.insert(id, r.ts);
        } else if r.message.contains("from LOCALIZING to SCHEDULED") {
            local_delays.insert(id, r.ts.since(start[&id]));
        }
    }
    let am_cid = app.attempt(1).container(1);
    let am_delay = local_delays[&am_cid];
    let exec_delay = local_delays[&cid];
    assert!(
        am_delay >= 450,
        "driver localization should download ≥450 MB: {am_delay} ms"
    );
    assert!(
        exec_delay < am_delay / 4,
        "cached executor localization {exec_delay} ms vs driver {am_delay} ms"
    );
}

#[test]
fn docker_runtime_slows_launch() {
    fn time_to_start(runtime: ContainerRuntime) -> u64 {
        let mut p = Pump::new(ClusterConfig::default());
        let mut sub = spark_submission();
        sub.am_launch.runtime = runtime;
        let _app = p.submit(sub);
        p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 100_000);
        p.now.as_u64()
    }
    let plain = time_to_start(ContainerRuntime::Default);
    let docker = time_to_start(ContainerRuntime::Docker);
    assert!(
        docker > plain + 150,
        "docker {docker} ms vs plain {plain} ms — expected ≥150 ms overhead"
    );
}

#[test]
fn opportunistic_allocates_in_milliseconds() {
    let cfg = ClusterConfig::default().with_opportunistic();
    let mut p = Pump::new(cfg);
    let app = p.submit(spark_submission());
    p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 100_000);
    p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
    let t0 = p.now;
    p.with_cluster(|c, now, _l, out| {
        c.request_containers(now, app, 4, ResourceReq::SPARK_EXECUTOR, out)
    });
    let AppNotice::ContainersGranted { containers, .. } = p.run_until(
        |n| matches!(n, AppNotice::ContainersGranted { .. }),
        200_000,
    ) else {
        unreachable!()
    };
    assert_eq!(containers.len(), 4);
    let grant_latency = p.now - t0;
    assert!(
        grant_latency < Millis(500),
        "opportunistic grant took {grant_latency}"
    );
}

#[test]
fn opportunistic_queues_when_node_full() {
    // Single node, executors take 8 vcores each, node has 32, with the
    // vcore-enforcing calculator: the 4th executor queues until one
    // finishes.
    let cfg = ClusterConfig {
        nodes: 1,
        resource_calculator: crate::config::ResourceCalculator::Dominant,
        ..ClusterConfig::default().with_opportunistic()
    };
    let mut p = Pump::new(cfg);
    let app = p.submit(spark_submission());
    p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 100_000);
    p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
    // Driver holds 1 vcore; 3 executors fit (24 vcores), the 4th would
    // exceed 32 after 1+24=25... still fits (25+8=33 > 32): so 3 fit.
    p.with_cluster(|c, now, _l, out| {
        c.request_containers(now, app, 4, ResourceReq::SPARK_EXECUTOR, out)
    });
    let AppNotice::ContainersGranted { containers, .. } = p.run_until(
        |n| matches!(n, AppNotice::ContainersGranted { .. }),
        200_000,
    ) else {
        unreachable!()
    };
    for (cid, _) in &containers {
        let cid = *cid;
        p.with_cluster(|c, now, _l, out| c.launch_container(now, cid, executor_launch(), out));
    }
    let mut started = Vec::new();
    for _ in 0..3 {
        let AppNotice::ProcessStarted { container, .. } = p.run_until(
            |n| {
                matches!(
                    n,
                    AppNotice::ProcessStarted {
                        kind: InstanceKind::SparkExecutor,
                        ..
                    }
                )
            },
            400_000,
        ) else {
            unreachable!()
        };
        started.push(container);
    }
    // The 4th is queued; run a while and confirm it has not started.
    p.run_past(p.now + Millis(30_000));
    let queued: Vec<_> = containers
        .iter()
        .map(|(c, _)| *c)
        .filter(|c| !started.contains(c))
        .collect();
    assert_eq!(queued.len(), 1);
    assert!(p
        .notices
        .iter()
        .all(|n| !matches!(n, AppNotice::ProcessStarted { .. })));
    // Finish one executor: the queued one starts.
    let done = started[0];
    p.with_cluster(|c, now, logs, out| c.finish_container(now, done, logs, out));
    let AppNotice::ProcessStarted { container, .. } =
        p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 400_000)
    else {
        unreachable!()
    };
    assert_eq!(container, queued[0]);
}

#[test]
fn finish_application_reaches_finished_and_frees_resources() {
    let mut p = Pump::new(ClusterConfig::default());
    let app = p.submit(spark_submission());
    p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 100_000);
    p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
    assert!(p.cluster.vcore_utilization() > 0.0);
    p.with_cluster(|c, now, logs, out| c.finish_application(now, app, logs, out));
    p.run_past(p.now + Millis(5_000));
    assert_eq!(p.cluster.vcore_utilization(), 0.0);
    let rm = messages_about(&p.logs, LogSource::ResourceManager, "to FINISHED");
    assert_eq!(rm.len(), 1);
}

#[test]
fn released_containers_show_bug_signature() {
    // Over-request, then release the extras: they must show
    // ALLOCATED (…ACQUIRED) → COMPLETED with no NM/executor evidence —
    // exactly what sdchecker::bugs looks for.
    let mut p = Pump::new(ClusterConfig::default());
    let app = p.submit(spark_submission());
    p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 100_000);
    p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
    p.with_cluster(|c, now, _l, out| {
        c.request_containers(now, app, 6, ResourceReq::SPARK_EXECUTOR, out)
    });
    let mut granted: Vec<(ContainerId, NodeId)> = Vec::new();
    while granted.len() < 6 {
        let AppNotice::ContainersGranted { containers, .. } = p.run_until(
            |n| matches!(n, AppNotice::ContainersGranted { .. }),
            400_000,
        ) else {
            unreachable!()
        };
        granted.extend(containers);
    }
    // Launch 4, release 2.
    for (cid, _) in granted.iter().take(4) {
        let cid = *cid;
        p.with_cluster(|c, now, _l, out| c.launch_container(now, cid, executor_launch(), out));
    }
    let extras: Vec<ContainerId> = granted.iter().skip(4).map(|(c, _)| *c).collect();
    p.with_cluster(|c, now, logs, _out| c.release_containers(now, &extras, logs));
    for cid in &extras {
        let rc = messages_about(&p.logs, LogSource::ResourceManager, &cid.to_string());
        assert!(
            rc.last().unwrap().contains("to COMPLETED"),
            "released container must complete: {rc:?}"
        );
        // And no NM log anywhere mentions it.
        for node in 0..p.cluster.node_count() {
            let nm = messages_about(
                &p.logs,
                LogSource::NodeManager(NodeId(node as u32)),
                &cid.to_string(),
            );
            assert!(nm.is_empty(), "released container must never reach an NM");
        }
    }
}

#[test]
fn cancel_pending_trims_backlog() {
    let mut p = Pump::new(ClusterConfig::default());
    let app = p.submit(spark_submission());
    p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 100_000);
    p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
    // Request far more than the cluster can hold (800 × 4GB executors
    // fit by memory).
    p.with_cluster(|c, now, _l, out| {
        c.request_containers(now, app, 2000, ResourceReq::SPARK_EXECUTOR, out)
    });
    // The ask is still riding toward the next AM heartbeat: cancelling
    // trims it before it ever reaches the RM backlog.
    let cancelled = p.cluster.cancel_pending(app, 100);
    assert_eq!(cancelled, 100);
    // After the heartbeat delivers the remaining ask, the backlog (plus
    // whatever was already granted) accounts for the other 1900.
    p.run_past(p.now + Millis(1_500));
    let backlog = p.cluster.backlog_len();
    assert!(backlog > 0, "remaining ask must reach the backlog");
    assert!(
        backlog <= 1900,
        "cancelled asks must not reappear: {backlog}"
    );
    let cancelled2 = p.cluster.cancel_pending(app, 50);
    assert_eq!(cancelled2, 50);
    assert_eq!(p.cluster.backlog_len(), backlog - 50);
}

#[test]
fn capacity_allocation_quantized_by_am_heartbeat() {
    // Allocation is fast (RM tick), but the grant only reaches the AM on
    // its next heartbeat, so the AM-visible latency is quantized by the
    // heartbeat interval and never instantaneous.
    let mut p = Pump::new(ClusterConfig::default());
    let app = p.submit(spark_submission());
    p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 100_000);
    p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
    let t0 = p.now;
    p.with_cluster(|c, now, _l, out| {
        c.request_containers(now, app, 4, ResourceReq::SPARK_EXECUTOR, out)
    });
    let mut granted = 0;
    while granted < 4 {
        let AppNotice::ContainersGranted { containers, .. } = p.run_until(
            |n| matches!(n, AppNotice::ContainersGranted { .. }),
            400_000,
        ) else {
            unreachable!()
        };
        granted += containers.len();
    }
    let latency = p.now - t0;
    assert!(
        latency > Millis(1),
        "allocation can't be instant: {latency}"
    );
    assert!(
        latency < Millis(2_500),
        "4 executors should be granted within ~2 heartbeats: {latency}"
    );
}

#[test]
fn dedicated_localization_store_isolates_from_io_interference() {
    // Saturate the main IO channel of every node with app IO; with the
    // §V-B dedicated store, localization should be unaffected.
    fn driver_up_time(store: Option<f64>) -> u64 {
        let cfg = ClusterConfig {
            nodes: 1,
            localization_store_mb_per_ms: store,
            ..ClusterConfig::default()
        };
        let mut p = Pump::new(cfg);
        // Background IO hogs on the single node (4 concurrent streams).
        p.with_cluster(|c, now, _l, out| {
            let app = ApplicationId::new(1, 999); // unrelated flow owner
            for _ in 0..4 {
                let _ = c.spawn_io(now, NodeId(0), app, 400_000.0, out);
            }
        });
        let _app = p.submit(spark_submission());
        p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 400_000);
        p.now.as_u64()
    }
    let shared = driver_up_time(None);
    let isolated = driver_up_time(Some(1.0));
    assert!(
        isolated + 400 < shared,
        "dedicated store must dodge the interference: {isolated}ms vs {shared}ms"
    );
}

#[test]
fn public_cache_survives_application_completion() {
    let cfg = ClusterConfig {
        nodes: 1,
        public_localization_cache: true,
        ..ClusterConfig::default()
    };
    let mut p = Pump::new(cfg);
    // First app localizes spark-libs.jar, then finishes.
    let a1 = p.submit(spark_submission());
    p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 200_000);
    p.with_cluster(|c, now, logs, out| c.am_register(now, a1, logs, out));
    p.with_cluster(|c, now, logs, out| c.finish_application(now, a1, logs, out));
    p.run_past(p.now + Millis(3_000));
    // Second app's driver reuses the public cache: its localization is
    // near-instant.
    let a2 = p.submit(spark_submission());
    p.run_until(
        |n| matches!(n, AppNotice::ProcessStarted { app, .. } if *app == a2),
        200_000,
    );
    let nm = p.logs.records(LogSource::NodeManager(NodeId(0)));
    let c2 = a2.attempt(1).container(1);
    let mut start = 0;
    let mut done = 0;
    for r in nm {
        if r.message.contains(&c2.to_string()) {
            if r.message.contains("to LOCALIZING") {
                start = r.ts.0;
            }
            if r.message.contains("to SCHEDULED") {
                done = r.ts.0;
            }
        }
    }
    assert!(
        done - start < 100,
        "public cache hit must skip the 500MB download: {}ms",
        done - start
    );
}

#[test]
fn small_requests_spread_across_nodes() {
    // The spread rule: a 4-executor request lands on ≥3 distinct nodes.
    let mut p = Pump::new(ClusterConfig::default());
    let app = p.submit(spark_submission());
    p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 100_000);
    p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
    p.with_cluster(|c, now, _l, out| {
        c.request_containers(now, app, 4, ResourceReq::SPARK_EXECUTOR, out)
    });
    let mut granted: Vec<NodeId> = Vec::new();
    while granted.len() < 4 {
        let AppNotice::ContainersGranted { containers, .. } = p.run_until(
            |n| matches!(n, AppNotice::ContainersGranted { .. }),
            400_000,
        ) else {
            unreachable!()
        };
        granted.extend(containers.iter().map(|(_, n)| *n));
    }
    let distinct: std::collections::HashSet<_> = granted.iter().collect();
    assert!(
        distinct.len() >= 3,
        "4 executors should scatter over ≥3 nodes, got {granted:?}"
    );
}

#[test]
fn fair_policy_equalizes_grants_across_apps() {
    // Two apps contend: app A asks for a huge batch first, app B asks for
    // a small one right after. Under FIFO, A's bulk is served first and B
    // waits; under Fair, B's small ask is served promptly.
    fn b_wait(policy: crate::config::QueuePolicy) -> u64 {
        let cfg = ClusterConfig {
            queue_policy: policy,
            ..ClusterConfig::default()
        };
        let mut p = Pump::new(cfg);
        let a = p.submit(spark_submission());
        let b = p.submit(spark_submission());
        for app in [a, b] {
            p.run_until(
                |n| matches!(n, AppNotice::ProcessStarted { app: x, .. } if *x == app),
                400_000,
            );
            p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
        }
        // A floods; B asks for 4.
        p.with_cluster(|c, now, _l, out| {
            c.request_containers(now, a, 700, ResourceReq::SPARK_EXECUTOR, out)
        });
        p.with_cluster(|c, now, _l, out| {
            c.request_containers(now, b, 4, ResourceReq::SPARK_EXECUTOR, out)
        });
        let t0 = p.now;
        let mut granted_b = 0;
        while granted_b < 4 {
            let n = p.run_until(
                |n| matches!(n, AppNotice::ContainersGranted { app: x, .. } if *x == b),
                2_000_000,
            );
            let AppNotice::ContainersGranted { containers, .. } = n else {
                unreachable!()
            };
            granted_b += containers.len();
        }
        (p.now - t0).as_u64()
    }
    let fifo = b_wait(crate::config::QueuePolicy::Fifo);
    let fair = b_wait(crate::config::QueuePolicy::Fair);
    assert!(
        fair <= fifo,
        "fair policy must not serve the small app later: fair {fair}ms vs fifo {fifo}ms"
    );
}

#[test]
fn am_attempt_failure_retries_and_second_attempt_succeeds() {
    // Script the AM of app 1 to fail its first attempt at launch. The RM
    // must retry: attempt 2's AM container (…_02_000001) launches, the app
    // registers, runs, and finishes — and every delay is no smaller than
    // in the fault-free run.
    fn time_to_am_up(faults: FaultConfig) -> (u64, crate::faults::FaultCounts) {
        let cfg = ClusterConfig {
            faults,
            ..ClusterConfig::default()
        };
        let mut p = Pump::new(cfg);
        let app = p.submit(spark_submission());
        let AppNotice::ProcessStarted { container, .. } = p.run_until(
            |n| {
                matches!(
                    n,
                    AppNotice::ProcessStarted {
                        kind: InstanceKind::SparkDriver,
                        ..
                    }
                )
            },
            400_000,
        ) else {
            unreachable!()
        };
        assert!(container.is_am());
        let up = p.now.as_u64();
        // The app still completes normally from here.
        p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
        p.with_cluster(|c, now, logs, out| c.finish_application(now, app, logs, out));
        p.run_past(p.now + Millis(5_000));
        let rm = messages_about(&p.logs, LogSource::ResourceManager, "to FINISHED");
        assert_eq!(rm.len(), 1, "retried app must still reach FINISHED");
        (up, p.cluster.fault_counts())
    }

    let faulty = FaultConfig {
        scripted_am_failures: vec![(1, 1)],
        ..FaultConfig::default()
    };
    let (clean_up, clean_counts) = time_to_am_up(FaultConfig::default());
    let (retry_up, retry_counts) = time_to_am_up(faulty.clone());

    assert!(!clean_counts.any());
    assert_eq!(retry_counts.am_retries, 1);
    assert_eq!(retry_counts.apps_failed, 0);
    // Attempt 2 re-runs the whole submission→launch protocol, so the AM
    // comes up strictly later than in the fault-free run (monotonicity).
    assert!(
        retry_up > clean_up,
        "retry must not be faster: {retry_up} ms vs clean {clean_up} ms"
    );

    // Log evidence: the failed attempt leaves the RMAppAttemptImpl line and
    // the second attempt's AM container id carries attempt number 2.
    let cfg = ClusterConfig {
        faults: faulty,
        ..ClusterConfig::default()
    };
    let mut p = Pump::new(cfg);
    let app = p.submit(spark_submission());
    let retry = p.run_until(|n| matches!(n, AppNotice::AttemptRetry { .. }), 400_000);
    let AppNotice::AttemptRetry { new_attempt, .. } = retry else {
        unreachable!()
    };
    assert_eq!(new_attempt, 2);
    let AppNotice::ProcessStarted { container, .. } =
        p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 400_000)
    else {
        unreachable!()
    };
    assert_eq!(container, app.attempt(2).container(1));
    let failed_attempt = messages_about(
        &p.logs,
        LogSource::ResourceManager,
        "from LAUNCHED to FAILED on event = CONTAINER_FINISHED",
    );
    assert_eq!(failed_attempt.len(), 1);
    assert!(failed_attempt[0].contains(&app.attempt(1).to_string()));
}

#[test]
fn am_attempt_exhaustion_fails_the_application() {
    // Every localization fails: attempt 1 and attempt 2 both die, the app
    // transitions ACCEPTED → FINAL_SAVING → FAILED.
    let cfg = ClusterConfig {
        faults: FaultConfig {
            localization_failure_rate: 1.0,
            ..FaultConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut p = Pump::new(cfg);
    let app = p.submit(spark_submission());
    let failed = p.run_until(|n| matches!(n, AppNotice::AppFailed { .. }), 400_000);
    let AppNotice::AppFailed { app: napp } = failed else {
        unreachable!()
    };
    assert_eq!(napp, app);
    // The FINAL_SAVING → FAILED hop rides a scheduled store-write event.
    p.run_past(p.now + Millis(5_000));
    let counts = p.cluster.fault_counts();
    assert_eq!(counts.apps_failed, 1);
    assert_eq!(counts.am_retries, 1);
    assert!(counts.localization_failures >= 2);
    let rm = messages_about(&p.logs, LogSource::ResourceManager, &app.to_string());
    assert!(rm
        .iter()
        .any(|m| m.contains("from ACCEPTED to FINAL_SAVING on event = ATTEMPT_FAILED")));
    assert!(rm.iter().any(|m| m.contains("from FINAL_SAVING to FAILED")));
    // NM-side evidence of the localizer failures.
    let mut localizer_lines = 0;
    for node in 0..p.cluster.node_count() {
        localizer_lines += messages_about(
            &p.logs,
            LogSource::NodeManager(NodeId(node as u32)),
            "Localizer failed",
        )
        .len();
    }
    assert!(localizer_lines >= 2);
}

#[test]
fn node_loss_deactivates_node_and_kills_its_containers() {
    // Single node, scripted to die at t=60s while the app runs: the RM
    // logs the LOST transition, the NM log truncates, and the node's
    // containers are reclaimed.
    let cfg = ClusterConfig {
        nodes: 1,
        faults: FaultConfig {
            node_loss: vec![(Millis(60_000), 0)],
            ..FaultConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut p = Pump::new(cfg);
    let app = p.submit(spark_submission());
    p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 400_000);
    p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
    p.run_past(Millis(90_000));
    let counts = p.cluster.fault_counts();
    assert_eq!(counts.nodes_lost, 1);
    assert!(counts.killed_by_node_loss >= 1);
    let deactivated = messages_about(&p.logs, LogSource::ResourceManager, "as it is now LOST");
    assert_eq!(deactivated.len(), 1);
    // The NM's log simply stops: nothing at or after the loss instant.
    let last_nm_ts = p
        .logs
        .records(LogSource::NodeManager(NodeId(0)))
        .iter()
        .map(|r| r.ts)
        .max()
        .unwrap();
    assert!(last_nm_ts.0 <= 60_000, "NM logged after loss: {last_nm_ts}");
}

#[test]
fn disabled_faults_leave_logs_byte_identical() {
    // An explicitly default fault config must not perturb the simulation
    // in any way: the logs of two runs (one constructed with the field
    // untouched, one with FaultConfig::default() spelled out) match.
    fn run_logs(cfg: ClusterConfig) -> Vec<String> {
        let mut p = Pump::new(cfg);
        let app = p.submit(spark_submission());
        p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 400_000);
        p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
        p.with_cluster(|c, now, _l, out| {
            c.request_containers(now, app, 4, ResourceReq::SPARK_EXECUTOR, out)
        });
        p.run_past(p.now + Millis(10_000));
        let mut lines = Vec::new();
        for r in p.logs.records(LogSource::ResourceManager) {
            lines.push(format!("{} {}", r.ts, r.message));
        }
        lines
    }
    let a = run_logs(ClusterConfig::default());
    let b = run_logs(ClusterConfig {
        faults: FaultConfig::default(),
        ..ClusterConfig::default()
    });
    assert_eq!(a, b);
}

#[test]
fn live_container_accounting_balances_on_all_paths() {
    // Allocated (AM + executors + released extras + opportunistic) must
    // all return to zero after the application finishes — the invariant
    // behind fair-share ordering.
    for opportunistic in [false, true] {
        let cfg = if opportunistic {
            ClusterConfig::default().with_opportunistic()
        } else {
            ClusterConfig::default()
        };
        let mut p = Pump::new(cfg);
        let app = p.submit(spark_submission());
        p.run_until(|n| matches!(n, AppNotice::ProcessStarted { .. }), 200_000);
        p.with_cluster(|c, now, logs, out| c.am_register(now, app, logs, out));
        p.with_cluster(|c, now, _l, out| {
            c.request_containers(now, app, 4, ResourceReq::SPARK_EXECUTOR, out)
        });
        let mut granted: Vec<ContainerId> = Vec::new();
        while granted.len() < 4 {
            let AppNotice::ContainersGranted { containers, .. } = p.run_until(
                |n| matches!(n, AppNotice::ContainersGranted { .. }),
                400_000,
            ) else {
                unreachable!()
            };
            granted.extend(containers.iter().map(|(c, _)| *c));
        }
        // Launch two, release two (the over-allocation path), then finish.
        for cid in granted.iter().take(2) {
            let cid = *cid;
            p.with_cluster(|c, now, _l, out| c.launch_container(now, cid, executor_launch(), out));
        }
        let extras: Vec<ContainerId> = granted.iter().skip(2).copied().collect();
        p.with_cluster(|c, now, logs, _o| c.release_containers(now, &extras, logs));
        assert!(
            p.cluster.live_containers(app) >= 3,
            "AM + 2 launched must still be live (opportunistic={opportunistic})"
        );
        p.with_cluster(|c, now, logs, out| c.finish_application(now, app, logs, out));
        p.run_past(p.now + Millis(5_000));
        assert_eq!(
            p.cluster.live_containers(app),
            0,
            "accounting must balance after teardown (opportunistic={opportunistic})"
        );
    }
}
