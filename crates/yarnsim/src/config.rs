//! Cluster configuration and calibration constants.
//!
//! Defaults mirror the paper's testbed (§IV-A): 26 nodes (25 workers + 1
//! master), two 8-core Xeons with hyper-threading (32 vcores), 132 GB RAM,
//! RAID-5 HDDs behind 10 GbE, Hadoop 3.0.0-alpha3 with the Capacity
//! Scheduler, NM/AM heartbeats at YARN defaults.
//!
//! Latency distributions are calibrated so the paper's *per-component
//! medians* come out of the model on an idle cluster; tails and crossovers
//! then emerge from contention rather than being baked in. Each constant
//! cites the paper evidence pinning it.

use simkit::Dist;

use crate::faults::FaultConfig;

/// Which scheduler the ResourceManager runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Centralized Capacity Scheduler: containers are assigned when a
    /// NodeManager heartbeats and the node has room, batched per heartbeat.
    Capacity,
    /// Hadoop 3.0's distributed opportunistic scheduler: per-request
    /// millisecond-scale decisions at a random node, queued NM-side when
    /// the node is busy (Mercury-style).
    Opportunistic,
}

/// Ordering policy of the centralized scheduler's request backlog
/// (paper §IV-A: "a user configured scheduler (e.g., Capacity Scheduler
/// or Fair Scheduler)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Capacity-Scheduler-style FIFO with round-robin grants (the paper's
    /// evaluated configuration).
    Fifo,
    /// Fair-Scheduler-style: each heartbeat serves the application
    /// currently holding the fewest containers first, equalizing shares
    /// across concurrent applications.
    Fair,
}

/// Node-selection policy of the distributed opportunistic scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OppPlacement {
    /// Uniformly random node — the behaviour the paper measured ("a
    /// distributed scheduler uses a random algorithm to choose a slave
    /// node for each task", §IV-C), which is what produces the 53 s NM
    /// queueing delays of Fig 7-(b).
    Random,
    /// Sparrow-style power-of-d-choices: probe `d` random nodes and place
    /// on the one with the shortest opportunistic queue (ties: most free
    /// memory). The §VI-cited mitigation for random placement's poor
    /// decisions.
    PowerOfChoices(u32),
}

/// How the scheduler decides whether a container fits on a node.
///
/// The default is `MemoryOnly`, matching the stock Capacity Scheduler —
/// and three of the paper's results independently require it: Table II's
/// 2 831 containers/s (1 GB containers must pack by memory: 3 200 fit,
/// not 800), Fig 6's mild +4 s at 16×8-core executors (129 vcores per
/// job would starve a vcore-enforced 800-vcore cluster), and §IV-E's
/// Kmeans "16 vcores per executor" CPU oversubscription (possible only
/// because vcores are not enforced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceCalculator {
    /// Memory and vcores both enforced (YARN's `DominantResourceCalculator`).
    Dominant,
    /// Memory only (YARN's `DefaultResourceCalculator` — the stock
    /// Capacity Scheduler setting).
    MemoryOnly,
}

/// Container runtime (paper Fig. 9-(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerRuntime {
    /// Plain YARN container: fork/exec of the launch script.
    Default,
    /// Docker container: image load + mount before the process starts.
    Docker,
}

/// Docker launch-overhead model. The paper measures a 350 ms median /
/// 658 ms p95 launch penalty with a 2.65 GB image, attributing it to
/// "loading the image from the local hub and mounting it to a predefined
/// path" plus extra I/O — so the model is an IO flow (the fraction of the
/// image actually read at start) plus constant runtime setup CPU.
#[derive(Debug, Clone)]
pub struct DockerConfig {
    /// Image size in MB (paper: 2.65 GB).
    pub image_mb: f64,
    /// Fraction of the image read at container start (layers not in page
    /// cache). 0.08 ⇒ ~212 MB, ≈ 300 ms at single-stream rate.
    pub read_fraction: f64,
    /// Runtime setup CPU (namespace/cgroup/mount plumbing).
    pub setup_cpu_ms: Dist,
}

impl Default for DockerConfig {
    fn default() -> Self {
        DockerConfig {
            image_mb: 2650.0,
            read_fraction: 0.08,
            setup_cpu_ms: Dist::lognormal(120.0, 0.35),
        }
    }
}

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker (NodeManager) count. Paper: 25 workers.
    pub nodes: u32,
    /// vcores per node. Paper: 2×8 cores with HT = 32.
    pub vcores_per_node: u32,
    /// Memory per node in MB. Paper: 132 GB; 128 GiB usable for containers.
    pub mem_mb_per_node: u64,

    /// Aggregate IO capacity per node in MB/ms (disk + NIC folded into one
    /// channel, see DESIGN.md). RAID-5 HDD array + 10 GbE ≈ 1.2 GB/s.
    pub io_capacity_mb_per_ms: f64,
    /// Single-stream IO cap in MB/ms. 1.0 ⇒ 1 GB/s: HDFS reads served
    /// partly from page cache; pins "500 MB localizes in ~500 ms" (Fig 8).
    pub io_single_flow_mb_per_ms: f64,

    /// NodeManager→RM heartbeat interval (YARN default 1 000 ms). The
    /// Capacity Scheduler assigns containers when a node heartbeats;
    /// because node heartbeats are staggered and uncorrelated with any
    /// AM's own heartbeat phase, this is what gives container acquisition
    /// delays their uniform-in-[0, interval] spread (Fig 7-(c): "very
    /// high variances").
    pub nm_heartbeat_ms: u64,
    /// Max containers assigned on one node heartbeat (assign-multiple).
    /// 25 staggered nodes × min(this, memory fit ≈ 128 × 1 GB) per second
    /// saturates at ≈ 3 200/s — just above Table II's measured 2 831/s.
    pub assign_per_heartbeat: u32,
    /// Locality-style spreading: on one node heartbeat an application is
    /// granted at most `ceil(remaining / spread_factor)` containers, so
    /// small requests (4 executors) land on distinct nodes — standing in
    /// for the HDFS-block-locality spreading of a real scheduler — while
    /// huge MapReduce waves still pack nodes at full rate.
    pub assign_spread_factor: u32,

    /// Which scheduler allocates containers.
    pub scheduler: SchedulerKind,
    /// Fit rule for placement and NM admission.
    pub resource_calculator: ResourceCalculator,
    /// Backlog ordering of the centralized scheduler.
    pub queue_policy: QueuePolicy,
    /// Per-batch decision latency of the distributed scheduler. Paper
    /// Fig 7-(a): median ≈ 1/80 of the centralized scheduler's ≈ 2.4 s,
    /// p95 108 ms.
    pub opportunistic_decision_ms: Dist,
    /// Node selection of the distributed scheduler.
    pub opp_placement: OppPlacement,

    /// RM state-store write latency (NEW_SAVING → SUBMITTED and the final
    /// save). ZooKeeper/Level-DB writes, a few ms.
    pub rm_state_store_ms: Dist,
    /// Scheduler admission latency (SUBMITTED → ACCEPTED).
    pub rm_accept_ms: Dist,
    /// Generic RPC latency (AM→NM startContainer, registrations, ...).
    pub rpc_ms: Dist,
    /// NM internal handoff from SCHEDULED to RUNNING (launch-thread spawn).
    pub nm_handoff_ms: Dist,

    /// Per-resource localization metadata work (HDFS NameNode lookup +
    /// client setup) executed on the node's CPU pool. CPU-bound, which is
    /// why heavy CPU interference still dents localization by ~1.4×
    /// (Fig 13-(d)) even though the transfer itself is IO.
    pub localize_meta_cpu_ms: Dist,

    /// Docker overhead model.
    pub docker: DockerConfig,

    /// Emulate per-(application, node) localization caching as YARN's
    /// APPLICATION-visibility resources do. On: a second container of the
    /// same app on the same node skips the download.
    pub localization_cache: bool,

    /// §V-B proposed optimization: PUBLIC-visibility caching — localized
    /// resources are shared *across* applications on a node (the paper's
    /// "recently most used localization files will be cached on local
    /// nodes"). Off by default (the paper's measured system localizes per
    /// application).
    pub public_localization_cache: bool,

    /// §V-B proposed optimization: a dedicated storage class for
    /// localization (SSD/RAM-disk, isolated from HDFS IO). `Some(rate)`
    /// gives every node a separate localization channel of `rate` MB/ms;
    /// `None` (default) shares the main IO channel, which is what lets
    /// dfsIO interference thrash localization in Fig 12.
    pub localization_store_mb_per_ms: Option<f64>,

    /// Opportunistic containers: max queue length per node before the
    /// allocator skips to another node (usize::MAX = unbounded, the
    /// behaviour the paper measured with 53 s queueing delays).
    pub opp_queue_cap: usize,

    /// Fault injection (launch/localization failures, node loss, scripted
    /// AM-attempt failures). Disabled by default — a default-config run is
    /// byte-identical to a build without fault support.
    pub faults: FaultConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 25,
            vcores_per_node: 32,
            mem_mb_per_node: 128 * 1024,
            io_capacity_mb_per_ms: 1.2,
            io_single_flow_mb_per_ms: 1.0,
            nm_heartbeat_ms: 1000,
            assign_per_heartbeat: 150,
            assign_spread_factor: 6,
            scheduler: SchedulerKind::Capacity,
            resource_calculator: ResourceCalculator::MemoryOnly,
            queue_policy: QueuePolicy::Fifo,
            opportunistic_decision_ms: Dist::lognormal(28.0, 0.65),
            opp_placement: OppPlacement::Random,
            rm_state_store_ms: Dist::lognormal(8.0, 0.3),
            rm_accept_ms: Dist::lognormal(15.0, 0.4),
            rpc_ms: Dist::lognormal(3.0, 0.5),
            nm_handoff_ms: Dist::uniform(1.0, 8.0),
            localize_meta_cpu_ms: Dist::lognormal(35.0, 0.4),
            docker: DockerConfig::default(),
            localization_cache: true,
            public_localization_cache: false,
            localization_store_mb_per_ms: None,
            opp_queue_cap: usize::MAX,
            faults: FaultConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// Total schedulable vcores across the cluster.
    pub fn total_vcores(&self) -> u64 {
        self.nodes as u64 * self.vcores_per_node as u64
    }

    /// Total schedulable memory across the cluster (MB).
    pub fn total_mem_mb(&self) -> u64 {
        self.nodes as u64 * self.mem_mb_per_node
    }

    /// Convenience: switch to the distributed scheduler.
    pub fn with_opportunistic(mut self) -> Self {
        self.scheduler = SchedulerKind::Opportunistic;
        self
    }
}

/// A container's resource demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceReq {
    /// Memory in MB.
    pub mem_mb: u64,
    /// Virtual cores.
    pub vcores: u32,
}

impl ResourceReq {
    /// The paper's executor shape: 4 GB / 8 cores (§IV-A).
    pub const SPARK_EXECUTOR: ResourceReq = ResourceReq {
        mem_mb: 4096,
        vcores: 8,
    };
    /// Spark driver / AM container: 2 GB / 1 core.
    pub const SPARK_DRIVER: ResourceReq = ResourceReq {
        mem_mb: 2048,
        vcores: 1,
    };
    /// MapReduce AM container.
    pub const MR_MASTER: ResourceReq = ResourceReq {
        mem_mb: 2048,
        vcores: 1,
    };
    /// MapReduce map/reduce task container: 1 GB / 1 core.
    pub const MR_TASK: ResourceReq = ResourceReq {
        mem_mb: 1024,
        vcores: 1,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_testbed() {
        let c = ClusterConfig::default();
        assert_eq!(c.nodes, 25);
        assert_eq!(c.total_vcores(), 800);
        assert_eq!(c.total_mem_mb(), 25 * 128 * 1024);
        assert_eq!(c.scheduler, SchedulerKind::Capacity);
    }

    #[test]
    fn with_opportunistic_switches() {
        let c = ClusterConfig::default().with_opportunistic();
        assert_eq!(c.scheduler, SchedulerKind::Opportunistic);
    }

    #[test]
    fn executor_shape_is_papers() {
        assert_eq!(ResourceReq::SPARK_EXECUTOR.mem_mb, 4096);
        assert_eq!(ResourceReq::SPARK_EXECUTOR.vcores, 8);
    }

    #[test]
    fn docker_read_is_nontrivial() {
        let d = DockerConfig::default();
        let mb = d.image_mb * d.read_fraction;
        assert!(mb > 100.0 && mb < 500.0, "docker read {mb} MB");
    }
}
