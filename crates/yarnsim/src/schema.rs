//! The cluster side of the emitter↔parser contract: every log-message
//! shape `yarnsim` can emit, and its three state machines, as
//! introspectable data.
//!
//! The emit sites in [`state`](crate::state) and
//! [`cluster`](crate::cluster) render through these templates, so the
//! table *is* the vocabulary — a template edited here changes the logs,
//! and `sdlint` cross-checks the table against `sdchecker`'s pattern
//! table so the analyzer can never silently fall out of sync.

use logmodel::schema::{Disposition, Family, MachineSpec, MsgTemplate};

use crate::state::{NmContainerState, RmAppState, RmContainerState};

/// `RMAppImpl` state change (Table I messages 1–3 and the terminal
/// transitions). Captures: app id, from-state, to-state, event.
pub const RM_APP_STATE_CHANGE: MsgTemplate = MsgTemplate {
    name: "rm_app_state_change",
    class: "RMAppImpl",
    family: Family::ResourceManager,
    template: "{} State change from {} to {} on event = {}",
    disposition: Disposition::Event,
    file: "crates/yarnsim/src/state.rs",
};

/// `RMContainerImpl` transition (Table I messages 4–5). Captures:
/// container id, from-state, to-state.
pub const RM_CONTAINER_TRANSITION: MsgTemplate = MsgTemplate {
    name: "rm_container_transition",
    class: "RMContainerImpl",
    family: Family::ResourceManager,
    template: "{} Container Transitioned from {} to {}",
    disposition: Disposition::Event,
    file: "crates/yarnsim/src/state.rs",
};

/// NM `ContainerImpl` transition (Table I messages 6–8). Captures:
/// container id, from-state, to-state.
pub const NM_CONTAINER_TRANSITION: MsgTemplate = MsgTemplate {
    name: "nm_container_transition",
    class: "ContainerImpl",
    family: Family::NodeManager,
    template: "Container {} transitioned from {} to {}",
    disposition: Disposition::Event,
    file: "crates/yarnsim/src/state.rs",
};

/// `RMAppAttemptImpl` attempt failure (AM retry vocabulary). Capture:
/// attempt id. Deliberately *not* parsed: sdchecker anchors retries on
/// the `RMAppImpl` bounce back to ACCEPTED instead.
pub const RM_ATTEMPT_FAILED: MsgTemplate = MsgTemplate {
    name: "rm_attempt_failed",
    class: "RMAppAttemptImpl",
    family: Family::ResourceManager,
    template: "{} State change from LAUNCHED to FAILED on event = CONTAINER_FINISHED",
    disposition: Disposition::Noise,
    file: "crates/yarnsim/src/cluster.rs",
};

/// `RMNodeImpl` node-loss notice. Capture: node id.
pub const RM_NODE_LOST: MsgTemplate = MsgTemplate {
    name: "rm_node_lost",
    class: "RMNodeImpl",
    family: Family::ResourceManager,
    template: "Deactivating Node {} as it is now LOST",
    disposition: Disposition::Noise,
    file: "crates/yarnsim/src/cluster.rs",
};

/// NM localization-failure notice (the `LOCALIZATION_FAILED` transition
/// carries the parsed evidence; this line is context). Capture:
/// container id.
pub const NM_LOCALIZER_FAILED: MsgTemplate = MsgTemplate {
    name: "nm_localizer_failed",
    class: "ResourceLocalizationService",
    family: Family::NodeManager,
    template: "Localizer failed for {}",
    disposition: Disposition::Noise,
    file: "crates/yarnsim/src/cluster.rs",
};

/// NM launch-failure notice (the `EXITED_WITH_FAILURE` transition
/// carries the parsed evidence). Capture: container id.
pub const NM_LAUNCH_FAILED: MsgTemplate = MsgTemplate {
    name: "nm_launch_failed",
    class: "ContainerLaunch",
    family: Family::NodeManager,
    template: "Container exited with a non-zero exit code 1: {}",
    disposition: Disposition::Noise,
    file: "crates/yarnsim/src/cluster.rs",
};

/// Every message shape the cluster can write, in one table.
pub const EMITTED: [MsgTemplate; 7] = [
    RM_APP_STATE_CHANGE,
    RM_CONTAINER_TRANSITION,
    NM_CONTAINER_TRANSITION,
    RM_ATTEMPT_FAILED,
    RM_NODE_LOST,
    NM_LOCALIZER_FAILED,
    NM_LAUNCH_FAILED,
];

/// The emitted-template table (the cluster half; `sparksim::schema`
/// holds the application half).
pub fn emitted_templates() -> &'static [MsgTemplate] {
    &EMITTED
}

fn machine_of<S: Copy + std::fmt::Display>(
    name: &'static str,
    states: &[S],
    names: Vec<&'static str>,
    initial: usize,
    terminal: impl Fn(S) -> bool,
    can_go: impl Fn(S, S) -> bool,
) -> MachineSpec {
    MachineSpec {
        name,
        states: names,
        initial,
        terminal: states.iter().map(|s| terminal(*s)).collect(),
        can_go: states
            .iter()
            .map(|a| states.iter().map(|b| can_go(*a, *b)).collect())
            .collect(),
    }
}

/// The three logged state machines, reified from the enums' `can_go`
/// relations (so the spec can never drift from the code).
pub fn machines() -> Vec<MachineSpec> {
    vec![
        machine_of(
            "RMAppImpl",
            &RmAppState::ALL,
            RmAppState::ALL.iter().map(|s| s.as_str()).collect(),
            0,
            RmAppState::is_terminal,
            RmAppState::can_go,
        ),
        machine_of(
            "RMContainerImpl",
            &RmContainerState::ALL,
            RmContainerState::ALL.iter().map(|s| s.as_str()).collect(),
            0,
            RmContainerState::is_terminal,
            RmContainerState::can_go,
        ),
        machine_of(
            "ContainerImpl",
            &NmContainerState::ALL,
            NmContainerState::ALL.iter().map(|s| s.as_str()).collect(),
            0,
            NmContainerState::is_terminal,
            NmContainerState::can_go,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_well_formed() {
        for t in emitted_templates() {
            assert!(!t.name.is_empty());
            assert!(!t.template.contains("{}{}"), "{}", t.name);
            assert!(t.holes() >= 1, "{}", t.name);
        }
        // Names are unique.
        let mut names: Vec<&str> = EMITTED.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EMITTED.len());
    }

    #[test]
    fn templates_render_the_historical_phrasings() {
        assert_eq!(
            RM_APP_STATE_CHANGE.msg(&[
                &"application_1_0001",
                &"SUBMITTED",
                &"ACCEPTED",
                &"APP_ACCEPTED"
            ]),
            "application_1_0001 State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"
        );
        assert_eq!(
            NM_CONTAINER_TRANSITION.msg(&[&"container_1_0001_01_000002", &"NEW", &"LOCALIZING"]),
            "Container container_1_0001_01_000002 transitioned from NEW to LOCALIZING"
        );
    }

    #[test]
    fn machines_mirror_the_enums() {
        let ms = machines();
        assert_eq!(ms.len(), 3);
        let rm_app = &ms[0];
        assert_eq!(rm_app.states[rm_app.initial], "NEW");
        assert!(rm_app.legal("SUBMITTED", "ACCEPTED"));
        assert!(!rm_app.legal("NEW", "RUNNING"));
        assert!(rm_app.terminal[rm_app.index_of("FINISHED").unwrap()]);
        assert!(rm_app.terminal[rm_app.index_of("FAILED").unwrap()]);
        let nm = &ms[2];
        assert!(nm.legal("LOCALIZING", "LOCALIZATION_FAILED"));
        assert!(nm.terminal[nm.index_of("DONE").unwrap()]);
        // Every state is reachable and non-terminal states have exits.
        for m in &ms {
            assert!(m.reachable().iter().all(|r| *r), "{}", m.name);
        }
    }
}
