//! Submission-pattern generation modeled on the google-trace subsets the
//! paper uses (§IV-A: a 2 000-query "long trace" for overall delays and a
//! 200-query "short trace" for component studies).
//!
//! Google-trace arrivals are bursty and heavy-tailed (Reiss et al., SoCC
//! 2012): jobs arrive in clumps separated by longer lulls. We regenerate
//! that character with a two-level process — burst sizes are
//! Pareto-distributed, gaps inside a burst are short exponentials, gaps
//! between bursts are heavy-tailed — scaled so that the paper's "moderate
//! cluster load" holds for the default job mix.

use simkit::{Dist, Millis, Sample, SimRng};

/// Parameters of the arrival process.
#[derive(Debug, Clone)]
pub struct TraceParams {
    /// Mean within-burst gap (ms).
    pub intra_gap_ms: f64,
    /// Burst size tail (Pareto scale / alpha).
    pub burst_scale: f64,
    /// Burst size tail index.
    pub burst_alpha: f64,
    /// Between-burst gap (ms): Pareto for the heavy tail.
    pub inter_gap_scale_ms: f64,
    /// Between-burst gap tail index.
    pub inter_gap_alpha: f64,
}

impl TraceParams {
    /// The default calibration: ~0.2 jobs/s on average, bursts of 1–10,
    /// occasional multi-minute lulls — moderate load for 40-second query
    /// jobs on the paper's 25-node cluster. Bursts are capped well below
    /// cluster capacity: the paper measures the *system's* scheduling
    /// delay and explicitly excludes resource-queueing under overload
    /// (§III-B, §IV-B).
    pub fn moderate() -> TraceParams {
        TraceParams {
            intra_gap_ms: 900.0,
            burst_scale: 1.0,
            burst_alpha: 1.5,
            inter_gap_scale_ms: 7_000.0,
            inter_gap_alpha: 1.6,
        }
    }

    /// A heavy-burst calibration for tail studies: near-simultaneous
    /// submissions within a burst (mean 120 ms gap), bursts reaching the
    /// cap of 10, and long quiet inter-burst valleys. The mix produces
    /// pronounced out-application tail delay — many AMs racing for
    /// containers at once — while staying below sustained overload, so
    /// SLO burn-rate alerts fire during bursts and resolve in valleys.
    pub fn bursty() -> TraceParams {
        TraceParams {
            intra_gap_ms: 120.0,
            burst_scale: 4.0,
            burst_alpha: 1.1,
            inter_gap_scale_ms: 20_000.0,
            inter_gap_alpha: 1.3,
        }
    }

    /// Scale all gaps by `k` (>1 = sparser trace, lighter load). Useful
    /// for sweeps where jobs grow (Fig 5's 200 GB point would otherwise
    /// saturate the cluster, which the paper explicitly avoids).
    pub fn sparser(mut self, k: f64) -> TraceParams {
        assert!(k > 0.0);
        self.intra_gap_ms *= k;
        self.inter_gap_scale_ms *= k;
        self
    }
}

/// Generate `n` arrival offsets (sorted, starting near zero).
pub fn arrival_times(n: usize, params: &TraceParams, rng: &mut SimRng) -> Vec<Millis> {
    let intra = Dist::exp(params.intra_gap_ms);
    let burst = Dist::pareto(params.burst_scale, params.burst_alpha);
    let inter = Dist::pareto(params.inter_gap_scale_ms, params.inter_gap_alpha)
        .clamped(params.inter_gap_scale_ms, params.inter_gap_scale_ms * 50.0);
    let mut out = Vec::with_capacity(n);
    let mut t = 0.0f64;
    while out.len() < n {
        let burst_len = burst.sample(rng).round().clamp(1.0, 10.0) as usize;
        for _ in 0..burst_len {
            if out.len() >= n {
                break;
            }
            out.push(Millis(t as u64));
            t += intra.sample(rng).max(1.0);
        }
        t += inter.sample(rng);
    }
    out
}

/// The paper's long trace: 2 000 query arrivals.
pub fn long_trace(rng: &mut SimRng) -> Vec<Millis> {
    arrival_times(2_000, &TraceParams::moderate(), rng)
}

/// The paper's short trace: 200 query arrivals.
pub fn short_trace(rng: &mut SimRng) -> Vec<Millis> {
    arrival_times(200, &TraceParams::moderate(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_sorted() {
        let mut rng = SimRng::new(1);
        let t = arrival_times(500, &TraceParams::moderate(), &mut rng);
        assert_eq!(t.len(), 500);
        for w in t.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(t[0] < Millis(10_000));
    }

    #[test]
    fn trace_is_bursty() {
        // Coefficient of variation of inter-arrival gaps must exceed 1
        // (a Poisson process has CV = 1; bursty is heavier).
        let mut rng = SimRng::new(2);
        let t = arrival_times(2_000, &TraceParams::moderate(), &mut rng);
        let gaps: Vec<f64> = t.windows(2).map(|w| (w[1].0 - w[0].0) as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.2, "cv {cv} not bursty");
    }

    #[test]
    fn moderate_load_rate() {
        // Average arrival rate in a band that keeps a 25-node cluster
        // moderately loaded for ~40 s jobs: 0.1–1 jobs/s.
        let mut rng = SimRng::new(3);
        let t = long_trace(&mut rng);
        let span_s = (t.last().unwrap().0 - t[0].0) as f64 / 1000.0;
        let rate = t.len() as f64 / span_s;
        assert!((0.1..1.0).contains(&rate), "rate {rate}/s");
    }

    #[test]
    fn sparser_stretches_time() {
        let mut r1 = SimRng::new(4);
        let mut r2 = SimRng::new(4);
        let a = arrival_times(300, &TraceParams::moderate(), &mut r1);
        let b = arrival_times(300, &TraceParams::moderate().sparser(4.0), &mut r2);
        assert!(b.last().unwrap().0 > a.last().unwrap().0 * 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = SimRng::new(9);
        let mut r2 = SimRng::new(9);
        assert_eq!(short_trace(&mut r1), short_trace(&mut r2));
    }
}
