//! Synthetic TPC-H query catalogue.
//!
//! The paper runs TPC-H on Spark-SQL (tables populated via Hive). We do
//! not need the SQL semantics — only each query's *shape* as a short data
//! analytics job: how many stages, how much scan/join/aggregate work, how
//! selective it is. The per-query factors below are hand-assigned from
//! the well-known relative costs of the 22 queries (e.g. Q1 is a heavy
//! single-pass aggregate, Q6 is a cheap selective scan, Q9 and Q21 are
//! expensive multi-join queries) and, per the substitution note in
//! DESIGN.md, only need to produce a realistic *spread* of short-query
//! runtimes around the Spark-SQL default profile.

use simkit::Dist;
use sparksim::{profiles, JobSpec, StageSpec};

/// Per-query shape: relative CPU weight, join depth (extra shuffle
/// stages), and scan selectivity (fraction of input actually read).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryShape {
    /// 1-based TPC-H query number.
    pub q: u8,
    /// CPU weight relative to the default SQL profile.
    pub cpu_weight: f64,
    /// Number of shuffle/join stages after the scan (1–3).
    pub join_stages: u32,
    /// Fraction of the input scanned.
    pub selectivity: f64,
}

/// The 22 query shapes.
pub const QUERIES: [QueryShape; 22] = [
    QueryShape {
        q: 1,
        cpu_weight: 1.45,
        join_stages: 1,
        selectivity: 0.98,
    },
    QueryShape {
        q: 2,
        cpu_weight: 0.75,
        join_stages: 3,
        selectivity: 0.25,
    },
    QueryShape {
        q: 3,
        cpu_weight: 1.05,
        join_stages: 2,
        selectivity: 0.80,
    },
    QueryShape {
        q: 4,
        cpu_weight: 0.85,
        join_stages: 2,
        selectivity: 0.55,
    },
    QueryShape {
        q: 5,
        cpu_weight: 1.20,
        join_stages: 3,
        selectivity: 0.85,
    },
    QueryShape {
        q: 6,
        cpu_weight: 0.55,
        join_stages: 1,
        selectivity: 0.30,
    },
    QueryShape {
        q: 7,
        cpu_weight: 1.15,
        join_stages: 3,
        selectivity: 0.75,
    },
    QueryShape {
        q: 8,
        cpu_weight: 1.10,
        join_stages: 3,
        selectivity: 0.70,
    },
    QueryShape {
        q: 9,
        cpu_weight: 1.80,
        join_stages: 3,
        selectivity: 0.95,
    },
    QueryShape {
        q: 10,
        cpu_weight: 1.00,
        join_stages: 2,
        selectivity: 0.75,
    },
    QueryShape {
        q: 11,
        cpu_weight: 0.60,
        join_stages: 2,
        selectivity: 0.20,
    },
    QueryShape {
        q: 12,
        cpu_weight: 0.80,
        join_stages: 2,
        selectivity: 0.50,
    },
    QueryShape {
        q: 13,
        cpu_weight: 0.95,
        join_stages: 2,
        selectivity: 0.60,
    },
    QueryShape {
        q: 14,
        cpu_weight: 0.70,
        join_stages: 2,
        selectivity: 0.40,
    },
    QueryShape {
        q: 15,
        cpu_weight: 0.75,
        join_stages: 2,
        selectivity: 0.45,
    },
    QueryShape {
        q: 16,
        cpu_weight: 0.65,
        join_stages: 2,
        selectivity: 0.30,
    },
    QueryShape {
        q: 17,
        cpu_weight: 1.30,
        join_stages: 2,
        selectivity: 0.65,
    },
    QueryShape {
        q: 18,
        cpu_weight: 1.55,
        join_stages: 3,
        selectivity: 0.90,
    },
    QueryShape {
        q: 19,
        cpu_weight: 0.90,
        join_stages: 1,
        selectivity: 0.55,
    },
    QueryShape {
        q: 20,
        cpu_weight: 1.00,
        join_stages: 3,
        selectivity: 0.50,
    },
    QueryShape {
        q: 21,
        cpu_weight: 1.70,
        join_stages: 3,
        selectivity: 0.90,
    },
    QueryShape {
        q: 22,
        cpu_weight: 0.60,
        join_stages: 2,
        selectivity: 0.25,
    },
];

/// Build the Spark-SQL job for TPC-H query `q` (1–22) over `input_mb` of
/// table data with `executors` executors.
pub fn tpch_query(q: u8, input_mb: f64, executors: u32) -> JobSpec {
    assert!((1..=22).contains(&q), "TPC-H has queries 1..=22");
    let shape = QUERIES[(q - 1) as usize];
    let mut spec = profiles::spark_sql_default(input_mb, executors);
    spec.label = format!("tpch-q{q:02}");
    spec.stages = shaped_stages(&shape, input_mb);
    spec
}

fn shaped_stages(shape: &QueryShape, input_mb: f64) -> Vec<StageSpec> {
    let base = profiles::sql_stages(input_mb);
    let scan = &base[0];
    let scan_tasks = scan.tasks;
    let mut stages = vec![StageSpec {
        tasks: scan_tasks,
        task_cpu_ms: scan.task_cpu_ms.scaled(shape.cpu_weight),
        task_io_mb: scan.task_io_mb * shape.selectivity,
    }];
    let mut tasks = scan_tasks;
    for j in 0..shape.join_stages {
        tasks = (tasks / 2).max(1);
        let cpu = 2600.0 * shape.cpu_weight * (0.85f64).powi(j as i32);
        stages.push(StageSpec {
            tasks,
            task_cpu_ms: Dist::lognormal(cpu, 0.40),
            task_io_mb: 8.0 / (j + 1) as f64,
        });
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete_and_distinct() {
        assert_eq!(QUERIES.len(), 22);
        for (i, s) in QUERIES.iter().enumerate() {
            assert_eq!(s.q as usize, i + 1);
            assert!(s.cpu_weight > 0.3 && s.cpu_weight < 2.5);
            assert!((1..=3).contains(&s.join_stages));
            assert!(s.selectivity > 0.0 && s.selectivity <= 1.0);
        }
        // Known heavy vs light queries.
        assert!(QUERIES[8].cpu_weight > QUERIES[5].cpu_weight, "Q9 > Q6");
    }

    #[test]
    fn query_specs_differ_in_shape() {
        let q6 = tpch_query(6, 2048.0, 4);
        let q9 = tpch_query(9, 2048.0, 4);
        assert_eq!(q6.label, "tpch-q06");
        assert_eq!(q6.stages.len(), 2); // scan + 1 join stage
        assert_eq!(q9.stages.len(), 4); // scan + 3 join stages
        assert!(q9.stages[0].task_cpu_ms.median() > q6.stages[0].task_cpu_ms.median());
    }

    #[test]
    fn scan_io_respects_selectivity() {
        let q6 = tpch_query(6, 2048.0, 4); // selectivity 0.30
        let full = 2048.0 / 16.0;
        assert!((q6.stages[0].task_io_mb - full * 0.30).abs() < 1e-9);
    }

    #[test]
    fn user_init_still_opens_eight_tables() {
        let q = tpch_query(13, 2048.0, 4);
        assert_eq!(q.user_init.files, 8);
    }

    #[test]
    #[should_panic(expected = "queries 1..=22")]
    fn query_zero_rejected() {
        tpch_query(0, 2048.0, 4);
    }

    #[test]
    fn stage_task_counts_shrink() {
        let q = tpch_query(21, 2048.0, 4);
        for w in q.stages.windows(2) {
            assert!(w[1].tasks <= w[0].tasks);
        }
        assert!(q.stages.iter().all(|s| s.tasks >= 1));
    }
}
