//! # workloads — job catalogue and submission patterns
//!
//! Regenerates the paper's workloads synthetically (see the substitution
//! table in DESIGN.md):
//!
//! * [`tpch`] — 22 TPC-H query shapes as Spark-SQL job specs;
//! * [`trace`] — bursty, heavy-tailed arrival processes standing in for
//!   the google-trace subsets (a 2 000-query long trace and a 200-query
//!   short trace);
//! * [`scenario`] — combinators that assemble arrival lists for the
//!   experiment harness (query streams, interference mixes, sweeps).

pub mod scenario;
pub mod tpch;
pub mod trace;

pub use scenario::{map_jobs, merge, periodic, shifted, tpch_stream};
pub use tpch::{tpch_query, QueryShape, QUERIES};
pub use trace::{arrival_times, long_trace, short_trace, TraceParams};
