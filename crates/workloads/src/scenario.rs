//! Scenario builders: trace arrivals × job catalogue → the arrival lists
//! the experiment harness feeds to `sparksim::simulate`.

use simkit::{Millis, SimRng};
use sparksim::JobSpec;

use crate::tpch::tpch_query;
use crate::trace::{arrival_times, TraceParams};

/// A TPC-H query stream: `n` arrivals following `params`, cycling through
/// the 22 queries in a random (seeded) order, each over `input_mb` with
/// `executors` executors.
pub fn tpch_stream(
    n: usize,
    input_mb: f64,
    executors: u32,
    params: &TraceParams,
    rng: &mut SimRng,
) -> Vec<(Millis, JobSpec)> {
    let times = arrival_times(n, params, rng);
    // Shuffled query order, repeated: every query appears in every window
    // of 22 submissions, matching "TPC-H on Spark-SQL" as the job mix.
    let mut order: Vec<u8> = (1..=22).collect();
    rng.shuffle(&mut order);
    times
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let q = order[i % order.len()];
            (t, tpch_query(q, input_mb, executors))
        })
        .collect()
}

/// Apply one mutation to every job of a stream (e.g. switch runtime to
/// Docker, add extra localized files, enable the over-allocation bug).
pub fn map_jobs(
    mut stream: Vec<(Millis, JobSpec)>,
    f: impl Fn(&mut JobSpec),
) -> Vec<(Millis, JobSpec)> {
    for (_, spec) in stream.iter_mut() {
        f(spec);
    }
    stream
}

/// Merge several arrival streams into one sorted stream.
pub fn merge(streams: Vec<Vec<(Millis, JobSpec)>>) -> Vec<(Millis, JobSpec)> {
    let mut all: Vec<(Millis, JobSpec)> = streams.into_iter().flatten().collect();
    all.sort_by_key(|(t, _)| *t);
    all
}

/// Shift every arrival by `offset`.
pub fn shifted(stream: Vec<(Millis, JobSpec)>, offset: Millis) -> Vec<(Millis, JobSpec)> {
    stream.into_iter().map(|(t, s)| (t + offset, s)).collect()
}

/// `n` copies of a job at fixed `gap` intervals starting at `start`.
pub fn periodic(spec: &JobSpec, n: usize, start: Millis, gap: Millis) -> Vec<(Millis, JobSpec)> {
    (0..n)
        .map(|i| (Millis(start.0 + gap.0 * i as u64), spec.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparksim::profiles;
    use yarnsim::ContainerRuntime;

    #[test]
    fn stream_cycles_queries() {
        let mut rng = SimRng::new(1);
        let s = tpch_stream(44, 2048.0, 4, &TraceParams::moderate(), &mut rng);
        assert_eq!(s.len(), 44);
        // All 22 labels appear exactly twice.
        let mut counts = std::collections::HashMap::new();
        for (_, spec) in &s {
            *counts.entry(spec.label.clone()).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 22);
        assert!(counts.values().all(|c| *c == 2));
    }

    #[test]
    fn map_jobs_applies_mutation() {
        let mut rng = SimRng::new(2);
        let s = tpch_stream(5, 2048.0, 4, &TraceParams::moderate(), &mut rng);
        let s = map_jobs(s, |j| j.runtime = ContainerRuntime::Docker);
        assert!(s.iter().all(|(_, j)| j.runtime == ContainerRuntime::Docker));
    }

    #[test]
    fn merge_sorts() {
        let a = periodic(&profiles::dfsio(4, 1.0), 3, Millis(100), Millis(1000));
        let b = periodic(&profiles::mr_wordcount(512.0), 3, Millis(50), Millis(1500));
        let m = merge(vec![a, b]);
        assert_eq!(m.len(), 6);
        for w in m.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn shifted_offsets_all() {
        let a = periodic(&profiles::mr_wordcount(512.0), 2, Millis(0), Millis(10));
        let b = shifted(a, Millis(500));
        assert_eq!(b[0].0, Millis(500));
        assert_eq!(b[1].0, Millis(510));
    }
}
