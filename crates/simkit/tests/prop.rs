//! Property-based tests for the DES kernel's core data structures.

use proptest::prelude::*;
use simkit::{Dist, EventQueue, Millis, PsResource, Sample, SimRng};

/// Drain a resource via the tick protocol, returning completions.
fn drain(res: &mut PsResource, start: Millis) -> Vec<(u64, Millis)> {
    let mut out = Vec::new();
    let mut now = start;
    let mut guard = 0;
    while let Some((at, gen)) = res.next_completion(now) {
        assert!(at >= now, "completion in the past");
        now = at;
        for id in res.on_tick(now, gen) {
            out.push((id.0, now));
        }
        guard += 1;
        assert!(guard < 100_000, "drain did not terminate");
    }
    out
}

proptest! {
    /// Work conservation: all submitted work completes, and total work
    /// done matches the sum of flow sizes.
    #[test]
    fn ps_completes_all_work(
        flows in prop::collection::vec((1.0f64..5_000.0, 1.0f64..4.0, 0.1f64..4.0), 1..20),
        capacity in 0.5f64..64.0,
    ) {
        let mut res = PsResource::new(capacity);
        let mut expected = 0.0;
        for (work, weight, cap) in &flows {
            res.add_flow(Millis(0), *work, *weight, *cap);
            expected += work;
        }
        let done = drain(&mut res, Millis(0));
        prop_assert_eq!(done.len(), flows.len());
        prop_assert!((res.work_done() - expected).abs() < 1e-3,
            "work done {} != submitted {}", res.work_done(), expected);
        prop_assert_eq!(res.active_flows(), 0);
    }

    /// No flow finishes earlier than its physically fastest possible time
    /// (work / min(cap, capacity)) nor later than the fully serialized
    /// bound (total work / capacity, plus per-flow cap effects).
    #[test]
    fn ps_completion_times_within_physical_bounds(
        flows in prop::collection::vec((10.0f64..2_000.0, 0.1f64..2.0), 1..12),
        capacity in 1.0f64..16.0,
    ) {
        let mut res = PsResource::new(capacity);
        let mut ids = Vec::new();
        let mut total_work = 0.0;
        for (work, cap) in &flows {
            ids.push((res.add_flow(Millis(0), *work, 1.0, *cap), *work, *cap));
            total_work += work;
        }
        let done = drain(&mut res, Millis(0));
        let slowest_cap = flows.iter().map(|(_, c)| *c).fold(f64::INFINITY, f64::min);
        let upper = total_work / capacity.min(slowest_cap) + flows.len() as f64 + 2.0;
        for (fid, at) in &done {
            let (_, work, cap) = ids.iter().find(|(i, _, _)| i.0 == *fid).unwrap();
            let fastest = work / cap.min(capacity);
            prop_assert!(
                (at.as_f64() + 1.0) >= fastest,
                "flow finished at {} but needs at least {fastest}", at.as_f64()
            );
            prop_assert!(at.as_f64() <= upper, "flow at {} beyond bound {upper}", at.as_f64());
        }
    }

    /// Equal flows submitted together finish together (fairness), and a
    /// strictly smaller flow never finishes after a bigger equal-cap one.
    #[test]
    fn ps_smaller_flows_finish_no_later(
        works in prop::collection::vec(1.0f64..1_000.0, 2..10),
        capacity in 1.0f64..8.0,
    ) {
        let mut res = PsResource::new(capacity);
        let ids: Vec<_> = works.iter().map(|w| res.add_flow(Millis(0), *w, 1.0, 1.0)).collect();
        let done = drain(&mut res, Millis(0));
        for (i, a) in ids.iter().enumerate() {
            for (j, b) in ids.iter().enumerate() {
                if works[i] < works[j] {
                    let ta = done.iter().find(|(f, _)| f == &a.0).unwrap().1;
                    let tb = done.iter().find(|(f, _)| f == &b.0).unwrap().1;
                    prop_assert!(ta <= tb, "smaller flow finished later");
                }
            }
        }
    }

    /// The event queue pops in nondecreasing time order with FIFO ties,
    /// regardless of push order.
    #[test]
    fn queue_pops_sorted_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(Millis(*t), i);
        }
        let mut last: Option<(Millis, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated on tie");
                }
            }
            last = Some((t, i));
        }
    }

    /// Distribution samples respect their support.
    #[test]
    fn dist_samples_in_support(seed in any::<u64>(), median in 1.0f64..10_000.0, sigma in 0.0f64..1.5) {
        let mut rng = SimRng::new(seed);
        let ln = Dist::lognormal(median, sigma);
        for _ in 0..50 {
            prop_assert!(ln.sample(&mut rng) > 0.0);
        }
        let cl = Dist::lognormal(median, sigma).clamped(median * 0.5, median * 2.0);
        for _ in 0..50 {
            let x = cl.sample(&mut rng);
            prop_assert!(x >= median * 0.5 && x <= median * 2.0);
        }
        let pareto = Dist::pareto(median, 1.2);
        for _ in 0..50 {
            prop_assert!(pareto.sample(&mut rng) >= median);
        }
    }

    /// Forked RNG streams are reproducible and order-independent.
    #[test]
    fn rng_forks_reproducible(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        prop_assume!(a != b);
        let root = SimRng::new(seed);
        let mut fa1 = root.fork(a);
        let mut fb = root.fork(b);
        let mut fa2 = root.fork(a);
        let xa1 = fa1.u64();
        let _ = fb.u64();
        let xa2 = fa2.u64();
        prop_assert_eq!(xa1, xa2);
    }

    /// Cancelling a flow returns remaining work consistent with elapsed
    /// progress (never more than submitted, never negative).
    #[test]
    fn ps_cancel_remaining_bounded(
        work in 100.0f64..10_000.0,
        cancel_at in 1u64..500,
        capacity in 0.5f64..8.0,
    ) {
        let mut res = PsResource::new(capacity);
        let id = res.add_flow(Millis(0), work, 1.0, 1.0);
        let left = res.cancel(Millis(cancel_at), id).unwrap();
        prop_assert!(left >= 0.0 && left <= work);
        let progressed = work - left;
        let max_possible = cancel_at as f64 * capacity.min(1.0);
        prop_assert!(progressed <= max_possible + 1e-6,
            "progressed {progressed} > possible {max_possible}");
    }
}
