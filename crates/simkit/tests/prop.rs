//! Property-based tests for the DES kernel's core data structures,
//! run as seeded randomized loops over `SimRng` (the workspace is
//! dependency-free, so there is no proptest); each case is deterministic
//! per seed.

use simkit::{Dist, EventQueue, Millis, PsResource, Sample, SimRng};

const CASES: u64 = 200;

/// Drain a resource via the tick protocol, returning completions.
fn drain(res: &mut PsResource, start: Millis) -> Vec<(u64, Millis)> {
    let mut out = Vec::new();
    let mut now = start;
    let mut guard = 0;
    while let Some((at, gen)) = res.next_completion(now) {
        assert!(at >= now, "completion in the past");
        now = at;
        for id in res.on_tick(now, gen) {
            out.push((id.0, now));
        }
        guard += 1;
        assert!(guard < 100_000, "drain did not terminate");
    }
    out
}

/// Work conservation: all submitted work completes, and total work
/// done matches the sum of flow sizes.
#[test]
fn ps_completes_all_work() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x20 + case);
        let nflows = rng.range(1, 20) as usize;
        let flows: Vec<(f64, f64, f64)> = (0..nflows)
            .map(|_| {
                (
                    rng.range_f64(1.0, 5_000.0),
                    rng.range_f64(1.0, 4.0),
                    rng.range_f64(0.1, 4.0),
                )
            })
            .collect();
        let capacity = rng.range_f64(0.5, 64.0);
        let mut res = PsResource::new(capacity);
        let mut expected = 0.0;
        for (work, weight, cap) in &flows {
            res.add_flow(Millis(0), *work, *weight, *cap);
            expected += work;
        }
        let done = drain(&mut res, Millis(0));
        assert_eq!(done.len(), flows.len(), "case {case}");
        assert!(
            (res.work_done() - expected).abs() < 1e-3,
            "case {case}: work done {} != submitted {}",
            res.work_done(),
            expected
        );
        assert_eq!(res.active_flows(), 0, "case {case}");
    }
}

/// No flow finishes earlier than its physically fastest possible time
/// (work / min(cap, capacity)) nor later than the fully serialized
/// bound (total work / capacity, plus per-flow cap effects).
#[test]
fn ps_completion_times_within_physical_bounds() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x21 + case);
        let nflows = rng.range(1, 12) as usize;
        let flows: Vec<(f64, f64)> = (0..nflows)
            .map(|_| (rng.range_f64(10.0, 2_000.0), rng.range_f64(0.1, 2.0)))
            .collect();
        let capacity = rng.range_f64(1.0, 16.0);
        let mut res = PsResource::new(capacity);
        let mut ids = Vec::new();
        let mut total_work = 0.0;
        for (work, cap) in &flows {
            ids.push((res.add_flow(Millis(0), *work, 1.0, *cap), *work, *cap));
            total_work += work;
        }
        let done = drain(&mut res, Millis(0));
        let slowest_cap = flows.iter().map(|(_, c)| *c).fold(f64::INFINITY, f64::min);
        let upper = total_work / capacity.min(slowest_cap) + flows.len() as f64 + 2.0;
        for (fid, at) in &done {
            let (_, work, cap) = ids.iter().find(|(i, _, _)| i.0 == *fid).unwrap();
            let fastest = work / cap.min(capacity);
            assert!(
                (at.as_f64() + 1.0) >= fastest,
                "case {case}: flow finished at {} but needs at least {fastest}",
                at.as_f64()
            );
            assert!(
                at.as_f64() <= upper,
                "case {case}: flow at {} beyond bound {upper}",
                at.as_f64()
            );
        }
    }
}

/// Equal flows submitted together finish together (fairness), and a
/// strictly smaller flow never finishes after a bigger equal-cap one.
#[test]
fn ps_smaller_flows_finish_no_later() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x22 + case);
        let nflows = rng.range(2, 10) as usize;
        let works: Vec<f64> = (0..nflows).map(|_| rng.range_f64(1.0, 1_000.0)).collect();
        let capacity = rng.range_f64(1.0, 8.0);
        let mut res = PsResource::new(capacity);
        let ids: Vec<_> = works
            .iter()
            .map(|w| res.add_flow(Millis(0), *w, 1.0, 1.0))
            .collect();
        let done = drain(&mut res, Millis(0));
        for (i, a) in ids.iter().enumerate() {
            for (j, b) in ids.iter().enumerate() {
                if works[i] < works[j] {
                    let ta = done.iter().find(|(f, _)| f == &a.0).unwrap().1;
                    let tb = done.iter().find(|(f, _)| f == &b.0).unwrap().1;
                    assert!(ta <= tb, "case {case}: smaller flow finished later");
                }
            }
        }
    }
}

/// The event queue pops in nondecreasing time order with FIFO ties,
/// regardless of push order.
#[test]
fn queue_pops_sorted_stable() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x23 + case);
        let n = rng.range(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.below(1_000)).collect();
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(Millis(*t), i);
        }
        let mut last: Option<(Millis, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt, "case {case}");
                if t == lt {
                    assert!(i > li, "case {case}: FIFO violated on tie");
                }
            }
            last = Some((t, i));
        }
    }
}

/// Distribution samples respect their support.
#[test]
fn dist_samples_in_support() {
    for case in 0..CASES {
        let mut seeder = SimRng::new(0x24 + case);
        let seed = seeder.u64();
        let median = seeder.range_f64(1.0, 10_000.0);
        let sigma = seeder.range_f64(0.0, 1.5);
        let mut rng = SimRng::new(seed);
        let ln = Dist::lognormal(median, sigma);
        for _ in 0..50 {
            assert!(ln.sample(&mut rng) > 0.0, "case {case}");
        }
        let cl = Dist::lognormal(median, sigma).clamped(median * 0.5, median * 2.0);
        for _ in 0..50 {
            let x = cl.sample(&mut rng);
            assert!(x >= median * 0.5 && x <= median * 2.0, "case {case}");
        }
        let pareto = Dist::pareto(median, 1.2);
        for _ in 0..50 {
            assert!(pareto.sample(&mut rng) >= median, "case {case}");
        }
    }
}

/// Forked RNG streams are reproducible and order-independent.
#[test]
fn rng_forks_reproducible() {
    for case in 0..CASES {
        let mut seeder = SimRng::new(0x25 + case);
        let seed = seeder.u64();
        let a = seeder.below(1000);
        let b = seeder.below(1000);
        if a == b {
            continue;
        }
        let root = SimRng::new(seed);
        let mut fa1 = root.fork(a);
        let mut fb = root.fork(b);
        let mut fa2 = root.fork(a);
        let xa1 = fa1.u64();
        let _ = fb.u64();
        let xa2 = fa2.u64();
        assert_eq!(xa1, xa2, "case {case}");
    }
}

/// Cancelling a flow returns remaining work consistent with elapsed
/// progress (never more than submitted, never negative).
#[test]
fn ps_cancel_remaining_bounded() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x26 + case);
        let work = rng.range_f64(100.0, 10_000.0);
        let cancel_at = rng.range(1, 500);
        let capacity = rng.range_f64(0.5, 8.0);
        let mut res = PsResource::new(capacity);
        let id = res.add_flow(Millis(0), work, 1.0, 1.0);
        let left = res.cancel(Millis(cancel_at), id).unwrap();
        assert!(left >= 0.0 && left <= work, "case {case}");
        let progressed = work - left;
        let max_possible = cancel_at as f64 * capacity.min(1.0);
        assert!(
            progressed <= max_possible + 1e-6,
            "case {case}: progressed {progressed} > possible {max_possible}"
        );
    }
}
