//! # simkit — deterministic discrete-event simulation engine
//!
//! A small, fast, fully deterministic discrete-event simulation (DES) kernel
//! used by the SDchecker reproduction to model a YARN-like cluster and the
//! Spark-like applications running on it.
//!
//! Design points:
//!
//! * **Millisecond clock.** The paper's tool has a precision of 1 ms (the
//!   log4j timestamp resolution), so the simulation clock is a `u64`
//!   millisecond counter ([`Millis`]). Fractional progress inside shared
//!   resources is tracked in `f64` and re-quantized to whole milliseconds at
//!   observation points.
//! * **Determinism.** All randomness flows through [`rng::SimRng`], a
//!   counter-seeded PRNG that supports cheap independent substreams, so a
//!   scenario (seed, config) always produces byte-identical logs. Events at
//!   the same timestamp are ordered by insertion sequence number.
//! * **Processor sharing.** Contended resources (a node's CPU cores, a
//!   node's disk/network channel) are modeled as [`ps::PsResource`]: a
//!   work-conserving processor-sharing queue with per-flow rate caps and
//!   weights. This single primitive generates the fair-share slowdowns,
//!   heavy tails, and interference effects the paper measures.
//!
//! The engine is deliberately generic: models define an event type and a
//! [`engine::Model::handle`] method; the kernel owns the queue, clock, and
//! RNG.
//!
//! ```
//! use simkit::prelude::*;
//!
//! struct Counter { fired: u32 }
//! #[derive(Debug)]
//! enum Ev { Ping }
//!
//! impl Model for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, _ev: Ev, ctx: &mut Ctx<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             ctx.schedule_in(Millis(10), Ev::Ping);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 }, 42);
//! engine.schedule_at(Millis(0), Ev::Ping);
//! engine.run_to_completion();
//! assert_eq!(engine.model().fired, 3);
//! assert_eq!(engine.now(), Millis(20));
//! ```

pub mod dist;
pub mod engine;
pub mod ps;
pub mod queue;
pub mod rng;
pub mod time;

/// One-stop import for simulation models.
pub mod prelude {
    pub use crate::dist::{Dist, Sample};
    pub use crate::engine::{Ctx, Engine, Model};
    pub use crate::ps::{FlowId, PsResource, ResourceGen};
    pub use crate::queue::EventQueue;
    pub use crate::rng::SimRng;
    pub use crate::time::Millis;
}

pub use dist::{Dist, Sample};
pub use engine::{Ctx, Engine, Model};
pub use ps::{FlowId, PsResource, ResourceGen};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::Millis;
