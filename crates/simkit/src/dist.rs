//! Latency/work distributions used by the cluster and application models.
//!
//! The paper's delays are multiplicative in nature (JVM start, init code,
//! I/O transfers all have log-normal-looking marginals with occasional heavy
//! tails), so the core primitive is [`Dist::LogNormalMed`] parameterized by
//! its *median* — far easier to calibrate against the paper's reported
//! medians than `(mu, sigma)`. Heavy-tailed arrivals use [`Dist::Pareto`].
//!
//! Everything samples through [`SimRng`] so results stay deterministic.

use crate::rng::SimRng;
use crate::time::Millis;

/// Anything that can be sampled to an `f64`.
pub trait Sample {
    /// Draw one value.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Draw one value and quantize it to whole milliseconds (rounding to
    /// nearest, clamping at zero).
    fn sample_ms(&self, rng: &mut SimRng) -> Millis {
        Millis(self.sample(rng).max(0.0).round() as u64)
    }
}

/// A parametric distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always `value`.
    Const(f64),
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Log-normal parameterized by its median and the σ of the underlying
    /// normal: `exp(ln(median) + sigma·N(0,1))`.
    LogNormalMed { median: f64, sigma: f64 },
    /// Exponential with the given mean.
    Exp { mean: f64 },
    /// Pareto (Lomax-style, shifted to start at `scale`):
    /// `scale / U^(1/alpha)`. `alpha <= 1` has infinite mean — used for
    /// bursty arrival gaps, never for work sizes.
    Pareto { scale: f64, alpha: f64 },
    /// `base`, clamped into `[lo, hi]`. Keeps log-normal tails from
    /// producing absurd outliers in work items while preserving the bulk.
    Clamped { base: Box<Dist>, lo: f64, hi: f64 },
    /// `base + offset` (offset may be negative; results are not clamped).
    Shifted { base: Box<Dist>, offset: f64 },
    /// Draw from `a` with probability `p`, else from `b`. Used for
    /// bimodal effects such as "mostly fast, occasionally very slow".
    Mix { p: f64, a: Box<Dist>, b: Box<Dist> },
    /// Resample uniformly from observed values (bootstrap). Lets measured
    /// delay populations — e.g. real launch times mined by sdchecker —
    /// drive the simulator directly.
    Empirical(std::sync::Arc<Vec<f64>>),
}

impl Dist {
    /// Constant distribution.
    pub fn constant(v: f64) -> Dist {
        Dist::Const(v)
    }

    /// Log-normal with the given median and shape.
    pub fn lognormal(median: f64, sigma: f64) -> Dist {
        assert!(median > 0.0 && sigma >= 0.0);
        Dist::LogNormalMed { median, sigma }
    }

    /// Uniform on `[lo, hi)`.
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        assert!(lo <= hi);
        Dist::Uniform { lo, hi }
    }

    /// Exponential with the given mean.
    pub fn exp(mean: f64) -> Dist {
        assert!(mean > 0.0);
        Dist::Exp { mean }
    }

    /// Pareto with the given scale (minimum) and tail index.
    pub fn pareto(scale: f64, alpha: f64) -> Dist {
        assert!(scale > 0.0 && alpha > 0.0);
        Dist::Pareto { scale, alpha }
    }

    /// Clamp this distribution into `[lo, hi]`.
    pub fn clamped(self, lo: f64, hi: f64) -> Dist {
        assert!(lo <= hi);
        Dist::Clamped {
            base: Box::new(self),
            lo,
            hi,
        }
    }

    /// Shift this distribution by `offset`.
    pub fn shifted(self, offset: f64) -> Dist {
        Dist::Shifted {
            base: Box::new(self),
            offset,
        }
    }

    /// Mixture: this distribution with probability `p`, else `other`.
    pub fn mixed(self, p: f64, other: Dist) -> Dist {
        assert!((0.0..=1.0).contains(&p));
        Dist::Mix {
            p,
            a: Box::new(self),
            b: Box::new(other),
        }
    }

    /// Empirical (bootstrap) distribution over observed samples.
    pub fn empirical(samples: Vec<f64>) -> Dist {
        assert!(!samples.is_empty(), "empirical distribution needs samples");
        Dist::Empirical(std::sync::Arc::new(samples))
    }

    /// The distribution's median (exact for every variant except `Mix`,
    /// where it returns the p-weighted blend of medians as a calibration
    /// aid).
    pub fn median(&self) -> f64 {
        match self {
            Dist::Const(v) => *v,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::LogNormalMed { median, .. } => *median,
            Dist::Exp { mean } => mean * std::f64::consts::LN_2,
            Dist::Pareto { scale, alpha } => scale * 2f64.powf(1.0 / alpha),
            Dist::Clamped { base, lo, hi } => base.median().clamp(*lo, *hi),
            Dist::Shifted { base, offset } => base.median() + offset,
            Dist::Mix { p, a, b } => p * a.median() + (1.0 - p) * b.median(),
            Dist::Empirical(v) => {
                let mut sorted = v.as_ref().clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
                sorted[sorted.len() / 2]
            }
        }
    }

    /// Multiply the location of the distribution by `k`, preserving shape.
    /// Used to scale calibrated work profiles (e.g. double the opened
    /// files ⇒ double the init work).
    pub fn scaled(&self, k: f64) -> Dist {
        assert!(k >= 0.0);
        match self {
            Dist::Const(v) => Dist::Const(v * k),
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo * k,
                hi: hi * k,
            },
            Dist::LogNormalMed { median, sigma } => Dist::LogNormalMed {
                median: median * k,
                sigma: *sigma,
            },
            Dist::Exp { mean } => Dist::Exp { mean: mean * k },
            Dist::Pareto { scale, alpha } => Dist::Pareto {
                scale: scale * k,
                alpha: *alpha,
            },
            Dist::Clamped { base, lo, hi } => Dist::Clamped {
                base: Box::new(base.scaled(k)),
                lo: lo * k,
                hi: hi * k,
            },
            Dist::Shifted { base, offset } => Dist::Shifted {
                base: Box::new(base.scaled(k)),
                offset: offset * k,
            },
            Dist::Mix { p, a, b } => Dist::Mix {
                p: *p,
                a: Box::new(a.scaled(k)),
                b: Box::new(b.scaled(k)),
            },
            Dist::Empirical(v) => {
                Dist::Empirical(std::sync::Arc::new(v.iter().map(|x| x * k).collect()))
            }
        }
    }
}

impl Sample for Dist {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            Dist::Const(v) => *v,
            Dist::Uniform { lo, hi } => rng.range_f64(*lo, *hi),
            Dist::LogNormalMed { median, sigma } => (median.ln() + sigma * rng.std_normal()).exp(),
            Dist::Exp { mean } => {
                let u = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
                -mean * u.ln()
            }
            Dist::Pareto { scale, alpha } => {
                let u = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
                scale / u.powf(1.0 / alpha)
            }
            Dist::Clamped { base, lo, hi } => base.sample(rng).clamp(*lo, *hi),
            Dist::Shifted { base, offset } => base.sample(rng) + offset,
            Dist::Mix { p, a, b } => {
                if rng.chance(*p) {
                    a.sample(rng)
                } else {
                    b.sample(rng)
                }
            }
            Dist::Empirical(v) => v[rng.index(v.len())],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_median(d: &Dist, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::new(seed);
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[n / 2]
    }

    #[test]
    fn const_is_constant() {
        let mut rng = SimRng::new(0);
        let d = Dist::constant(42.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 42.0);
        }
        assert_eq!(d.median(), 42.0);
    }

    #[test]
    fn lognormal_median_matches() {
        let d = Dist::lognormal(700.0, 0.4);
        let m = empirical_median(&d, 9, 40_001);
        assert!((m - 700.0).abs() / 700.0 < 0.05, "median {m}");
    }

    #[test]
    fn exp_mean_matches() {
        let d = Dist::exp(250.0);
        let mut rng = SimRng::new(17);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 250.0).abs() / 250.0 < 0.05, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Dist::pareto(100.0, 1.5);
        let mut rng = SimRng::new(21);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 100.0);
        }
        // analytic median: scale * 2^(1/alpha)
        let m = empirical_median(&d, 22, 40_001);
        assert!((m - d.median()).abs() / d.median() < 0.08, "median {m}");
    }

    #[test]
    fn clamped_bounds_hold() {
        let d = Dist::lognormal(100.0, 2.0).clamped(50.0, 200.0);
        let mut rng = SimRng::new(2);
        for _ in 0..2000 {
            let x = d.sample(&mut rng);
            assert!((50.0..=200.0).contains(&x));
        }
    }

    #[test]
    fn shifted_offsets() {
        let d = Dist::constant(10.0).shifted(5.0);
        let mut rng = SimRng::new(2);
        assert_eq!(d.sample(&mut rng), 15.0);
        assert_eq!(d.median(), 15.0);
    }

    #[test]
    fn mix_draws_from_both() {
        let d = Dist::constant(1.0).mixed(0.5, Dist::constant(2.0));
        let mut rng = SimRng::new(8);
        let n = 4000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1.0).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn scaled_scales_medians() {
        let d = Dist::lognormal(700.0, 0.3).scaled(2.0);
        assert!((d.median() - 1400.0).abs() < 1e-9);
        let u = Dist::uniform(1.0, 3.0).scaled(10.0);
        assert_eq!(u, Dist::uniform(10.0, 30.0));
    }

    #[test]
    fn sample_ms_quantizes() {
        let mut rng = SimRng::new(0);
        assert_eq!(Dist::constant(1.4).sample_ms(&mut rng), Millis(1));
        assert_eq!(Dist::constant(1.6).sample_ms(&mut rng), Millis(2));
        assert_eq!(Dist::constant(-3.0).sample_ms(&mut rng), Millis(0));
    }

    #[test]
    fn uniform_median() {
        assert_eq!(Dist::uniform(0.0, 10.0).median(), 5.0);
    }

    #[test]
    fn empirical_resamples_observed_values() {
        let obs = vec![10.0, 20.0, 30.0];
        let d = Dist::empirical(obs.clone());
        let mut rng = SimRng::new(5);
        for _ in 0..200 {
            assert!(obs.contains(&d.sample(&mut rng)));
        }
        assert_eq!(d.median(), 20.0);
        let scaled = d.scaled(2.0);
        assert_eq!(scaled.median(), 40.0);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empirical_rejects_empty() {
        Dist::empirical(vec![]);
    }
}
