//! The simulation kernel: a clock, an event queue, and a model.
//!
//! Models implement [`Model`]; the engine pops events in time order, hands
//! them to the model together with a [`Ctx`] through which the model
//! schedules follow-up events and draws randomness, then merges newly
//! scheduled events back into the queue.

use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::Millis;

/// A simulation model: an event type plus a handler.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// React to `ev`; schedule follow-ups through `ctx`.
    fn handle(&mut self, ev: Self::Event, ctx: &mut Ctx<Self::Event>);

    /// Short stable label for `ev`, used as the `kind` label of the
    /// engine's `sim_events_total` counter. Models with one event family
    /// may keep the default.
    fn event_label(_ev: &Self::Event) -> &'static str {
        "event"
    }
}

/// Handler-side view of the kernel: the current time, the RNG, and a buffer
/// of newly scheduled events.
pub struct Ctx<'a, E> {
    now: Millis,
    rng: &'a mut SimRng,
    pending: Vec<(Millis, E)>,
}

impl<'a, E> Ctx<'a, E> {
    /// Current simulation time.
    pub fn now(&self) -> Millis {
        self.now
    }

    /// The run's root RNG (models typically hold their own forks; this is
    /// for ad-hoc draws).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Schedule `ev` to fire `delay` from now.
    pub fn schedule_in(&mut self, delay: Millis, ev: E) {
        self.pending.push((self.now + delay, ev));
    }

    /// Schedule `ev` at an absolute time (clamped to now if in the past —
    /// the simulation clock never moves backwards).
    pub fn schedule_at(&mut self, at: Millis, ev: E) {
        self.pending.push((at.max(self.now), ev));
    }
}

/// Engine-local run statistics, accumulated per step and flushed to the
/// recorder in one batch at the end of each `run_*` call — the shared
/// registry is never touched on the per-event hot path.
struct EngineStats {
    per_kind: std::collections::BTreeMap<&'static str, u64>,
    queue_hwm: u64,
    /// Wall-clock start of the current recording window (first recorded
    /// step since the last flush).
    wall_start: Option<std::time::Instant>,
    /// Accumulated wall time of flushed windows, in microseconds.
    wall_us: u64,
}

impl EngineStats {
    const fn new() -> EngineStats {
        EngineStats {
            per_kind: std::collections::BTreeMap::new(),
            queue_hwm: 0,
            wall_start: None,
            wall_us: 0,
        }
    }
}

/// The simulation engine.
pub struct Engine<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    rng: SimRng,
    now: Millis,
    processed: u64,
    recorder: &'static obs::Recorder,
    stats: EngineStats,
}

impl<M: Model> Engine<M> {
    /// Wrap `model` with a fresh kernel seeded by `seed`.
    pub fn new(model: M, seed: u64) -> Engine<M> {
        Engine {
            model,
            queue: EventQueue::new(),
            rng: SimRng::new(seed),
            now: Millis::ZERO,
            processed: 0,
            recorder: obs::global(),
            stats: EngineStats::new(),
        }
    }

    /// Redirect this engine's instrumentation to `recorder` instead of
    /// the process-wide default (tests inject a leaked local recorder to
    /// stay isolated from the global one).
    pub fn set_recorder(&mut self, recorder: &'static obs::Recorder) {
        self.recorder = recorder;
    }

    /// Current simulation time.
    pub fn now(&self) -> Millis {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for pre-run setup).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// The run's root RNG (for pre-run setup such as workload sampling).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedule an event at an absolute time before/while running.
    pub fn schedule_at(&mut self, at: Millis, ev: M::Event) {
        self.queue.push(at.max(self.now), ev);
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let recording = self.recorder.is_enabled();
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        if recording {
            if self.stats.wall_start.is_none() {
                self.stats.wall_start = Some(std::time::Instant::now());
            }
            *self.stats.per_kind.entry(M::event_label(&ev)).or_insert(0) += 1;
        }
        let mut ctx = Ctx {
            now: self.now,
            rng: &mut self.rng,
            pending: Vec::new(),
        };
        self.model.handle(ev, &mut ctx);
        for (t, e) in ctx.pending {
            self.queue.push(t, e);
        }
        if recording {
            self.stats.queue_hwm = self.stats.queue_hwm.max(self.queue.len() as u64);
        }
        self.processed += 1;
        true
    }

    /// Flush locally accumulated run statistics into the recorder:
    /// `sim_events_total{kind}`, the `sim_queue_depth_hwm` high-water
    /// mark, and the simulated-vs-wall-time gauges (`sim_time_ms`,
    /// `sim_wall_ms`, and their ratio `sim_speedup`). Called at the end
    /// of every `run_*`; idempotent, and a no-op while disabled.
    pub fn flush_stats(&mut self) {
        if !self.recorder.is_enabled() {
            return;
        }
        for (kind, n) in std::mem::take(&mut self.stats.per_kind) {
            self.recorder
                .count_labeled("sim_events_total", &[("kind", kind)], n);
        }
        self.recorder
            .gauge_max("sim_queue_depth_hwm", self.stats.queue_hwm as f64);
        if let Some(t0) = self.stats.wall_start.take() {
            self.stats.wall_us += t0.elapsed().as_micros() as u64;
        }
        let wall_ms = self.stats.wall_us as f64 / 1000.0;
        self.recorder.gauge_set("sim_time_ms", self.now.0 as f64);
        self.recorder.gauge_set("sim_wall_ms", wall_ms);
        if wall_ms > 0.0 {
            self.recorder
                .gauge_set("sim_speedup", self.now.0 as f64 / wall_ms);
        }
    }

    /// Run until the queue empties.
    pub fn run_to_completion(&mut self) {
        let _span = self.recorder.span("sim_run");
        while self.step() {}
        self.flush_stats();
    }

    /// Run until the queue empties or the clock passes `horizon`
    /// (events strictly after `horizon` are left unprocessed).
    pub fn run_until(&mut self, horizon: Millis) {
        let _span = self.recorder.span("sim_run").arg("horizon_ms", horizon.0);
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step();
        }
        self.flush_stats();
    }

    /// Run at most `limit` further events; returns how many were processed.
    /// A guard against accidental non-terminating models in tests.
    pub fn run_capped(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        self.flush_stats();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        seen: Vec<(Millis, u32)>,
    }

    enum Ev {
        Tag(u32),
        Chain(u32),
    }

    impl Model for Echo {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<Ev>) {
            match ev {
                Ev::Tag(n) => self.seen.push((ctx.now(), n)),
                Ev::Chain(n) => {
                    self.seen.push((ctx.now(), n));
                    if n > 0 {
                        ctx.schedule_in(Millis(5), Ev::Chain(n - 1));
                    }
                }
            }
        }
        fn event_label(ev: &Ev) -> &'static str {
            match ev {
                Ev::Tag(_) => "tag",
                Ev::Chain(_) => "chain",
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = Engine::new(Echo { seen: vec![] }, 0);
        e.schedule_at(Millis(30), Ev::Tag(3));
        e.schedule_at(Millis(10), Ev::Tag(1));
        e.schedule_at(Millis(20), Ev::Tag(2));
        e.run_to_completion();
        assert_eq!(
            e.model().seen,
            vec![(Millis(10), 1), (Millis(20), 2), (Millis(30), 3)]
        );
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        let mut e = Engine::new(Echo { seen: vec![] }, 0);
        e.schedule_at(Millis(0), Ev::Chain(3));
        e.run_to_completion();
        assert_eq!(e.now(), Millis(15));
        assert_eq!(e.model().seen.len(), 4);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut e = Engine::new(Echo { seen: vec![] }, 0);
        e.schedule_at(Millis(0), Ev::Chain(10));
        e.run_until(Millis(12));
        // Events at 0, 5, 10 processed; 15 not.
        assert_eq!(e.model().seen.len(), 3);
        assert_eq!(e.now(), Millis(10));
        e.run_to_completion();
        assert_eq!(e.model().seen.len(), 11);
    }

    #[test]
    fn run_capped_stops() {
        let mut e = Engine::new(Echo { seen: vec![] }, 0);
        e.schedule_at(Millis(0), Ev::Chain(1000));
        let n = e.run_capped(10);
        assert_eq!(n, 10);
    }

    #[test]
    fn schedule_at_past_clamps_to_now() {
        struct PastScheduler {
            fired_at: Option<Millis>,
        }
        enum PEv {
            Trigger,
            Late,
        }
        impl Model for PastScheduler {
            type Event = PEv;
            fn handle(&mut self, ev: PEv, ctx: &mut Ctx<PEv>) {
                match ev {
                    PEv::Trigger => ctx.schedule_at(Millis(1), PEv::Late),
                    PEv::Late => self.fired_at = Some(ctx.now()),
                }
            }
        }
        let mut e = Engine::new(PastScheduler { fired_at: None }, 0);
        e.schedule_at(Millis(100), PEv::Trigger);
        e.run_to_completion();
        assert_eq!(e.model().fired_at, Some(Millis(100)));
    }

    #[test]
    fn stats_flush_to_injected_recorder() {
        // A leaked local recorder keeps this test isolated from the
        // process-wide one (which stays disabled across the test suite).
        let rec: &'static obs::Recorder = Box::leak(Box::new(obs::Recorder::new()));
        rec.enable();
        let mut e = Engine::new(Echo { seen: vec![] }, 0);
        e.set_recorder(rec);
        e.schedule_at(Millis(30), Ev::Tag(7));
        e.schedule_at(Millis(0), Ev::Chain(2));
        e.run_to_completion();
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter_labeled("sim_events_total", &[("kind", "chain")]),
            3
        );
        assert_eq!(
            snap.counter_labeled("sim_events_total", &[("kind", "tag")]),
            1
        );
        assert!(snap.gauge("sim_queue_depth_hwm").unwrap() >= 1.0);
        assert_eq!(snap.gauge("sim_time_ms"), Some(30.0));
        assert!(snap.gauge("sim_wall_ms").is_some());
        assert!(snap.spans.iter().any(|s| s.name == "sim_run"));
    }

    #[test]
    fn default_event_label_is_event() {
        struct One;
        impl Model for One {
            type Event = ();
            fn handle(&mut self, _: (), _: &mut Ctx<()>) {}
        }
        assert_eq!(One::event_label(&()), "event");
    }

    #[test]
    fn determinism_across_runs() {
        fn run(seed: u64) -> Vec<u64> {
            struct R {
                draws: Vec<u64>,
            }
            enum Ev {
                Draw(u32),
            }
            impl Model for R {
                type Event = Ev;
                fn handle(&mut self, Ev::Draw(n): Ev, ctx: &mut Ctx<Ev>) {
                    self.draws.push(ctx.rng().u64());
                    if n > 0 {
                        let d = ctx.rng().below(10) + 1;
                        ctx.schedule_in(Millis(d), Ev::Draw(n - 1));
                    }
                }
            }
            let mut e = Engine::new(R { draws: vec![] }, seed);
            e.schedule_at(Millis(0), Ev::Draw(20));
            e.run_to_completion();
            e.into_model().draws
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
