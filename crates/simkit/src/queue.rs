//! The pending-event queue: a time-ordered priority queue with FIFO
//! tie-breaking.
//!
//! Events scheduled for the same millisecond fire in the order they were
//! scheduled. This matters for determinism: a cluster heartbeat and an
//! application reaction at the same timestamp must interleave identically
//! across runs, or two runs with the same seed would produce different logs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Millis;

/// A scheduled entry; ordered by `(time, seq)` so the heap pops the earliest
/// event, breaking ties in insertion order.
struct Entry<E> {
    at: Millis,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest entry.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Millis, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Millis, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Millis> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (the sequence counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Millis(30), "c");
        q.push(Millis(10), "a");
        q.push(Millis(20), "b");
        assert_eq!(q.pop(), Some((Millis(10), "a")));
        assert_eq!(q.pop(), Some((Millis(20), "b")));
        assert_eq!(q.pop(), Some((Millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Millis(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Millis(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Millis(10), 1);
        q.push(Millis(10), 2);
        assert_eq!(q.pop(), Some((Millis(10), 1)));
        q.push(Millis(10), 3);
        // 2 was scheduled before 3, so it still comes first.
        assert_eq!(q.pop(), Some((Millis(10), 2)));
        assert_eq!(q.pop(), Some((Millis(10), 3)));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Millis(7), ());
        q.push(Millis(3), ());
        assert_eq!(q.peek_time(), Some(Millis(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
    }
}
