//! Simulation time: a millisecond-resolution monotone clock.
//!
//! The paper's SDchecker works at the precision of log4j timestamps (1 ms),
//! so the whole simulation is quantized to milliseconds. [`Millis`] is used
//! both for absolute simulation times and for durations; the arithmetic
//! provided keeps both uses ergonomic without a second newtype, which in
//! practice the cluster/application models never needed to distinguish.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A millisecond count — either an absolute simulation time (milliseconds
/// since simulation start) or a duration.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Millis(pub u64);

impl Millis {
    /// Time zero / zero duration.
    pub const ZERO: Millis = Millis(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: Millis = Millis(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Millis {
        Millis(s * 1000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Millis {
        Millis(m * 60_000)
    }

    /// The raw millisecond count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This time as fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// This time as fractional milliseconds (for processor-sharing math).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Round a fractional millisecond value *up* to the next whole
    /// millisecond. Completions computed in `f64` inside shared resources
    /// are re-quantized with this so a completion event never fires before
    /// the work is actually done.
    pub fn from_f64_ceil(ms: f64) -> Millis {
        debug_assert!(ms >= 0.0, "negative time {ms}");
        if ms >= u64::MAX as f64 {
            Millis::MAX
        } else {
            Millis(ms.ceil() as u64)
        }
    }

    /// Saturating subtraction; useful for "delay since" computations where
    /// clock-skew-free simulation still produces equal timestamps.
    pub fn saturating_sub(self, rhs: Millis) -> Millis {
        Millis(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Millis) -> Option<Millis> {
        self.0.checked_sub(rhs.0).map(Millis)
    }

    /// The larger of two times.
    pub fn max(self, rhs: Millis) -> Millis {
        Millis(self.0.max(rhs.0))
    }

    /// The smaller of two times.
    pub fn min(self, rhs: Millis) -> Millis {
        Millis(self.0.min(rhs.0))
    }
}

impl Add for Millis {
    type Output = Millis;
    fn add(self, rhs: Millis) -> Millis {
        Millis(self.0 + rhs.0)
    }
}

impl Add<u64> for Millis {
    type Output = Millis;
    fn add(self, rhs: u64) -> Millis {
        Millis(self.0 + rhs)
    }
}

impl AddAssign for Millis {
    fn add_assign(&mut self, rhs: Millis) {
        self.0 += rhs.0;
    }
}

impl Sub for Millis {
    type Output = Millis;
    fn sub(self, rhs: Millis) -> Millis {
        debug_assert!(self.0 >= rhs.0, "Millis underflow: {} - {}", self.0, rhs.0);
        Millis(self.0 - rhs.0)
    }
}

impl fmt::Debug for Millis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl fmt::Display for Millis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

impl From<u64> for Millis {
    fn from(v: u64) -> Millis {
        Millis(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Millis::from_secs(3), Millis(3000));
        assert_eq!(Millis::from_mins(2), Millis(120_000));
        assert_eq!(Millis::from(7u64), Millis(7));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Millis(5) + Millis(7), Millis(12));
        assert_eq!(Millis(5) + 7, Millis(12));
        assert_eq!(Millis(12) - Millis(7), Millis(5));
        let mut t = Millis(1);
        t += Millis(2);
        assert_eq!(t, Millis(3));
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(Millis(3).saturating_sub(Millis(5)), Millis::ZERO);
        assert_eq!(Millis(5).checked_sub(Millis(3)), Some(Millis(2)));
        assert_eq!(Millis(3).checked_sub(Millis(5)), None);
    }

    #[test]
    fn float_roundtrips() {
        assert_eq!(Millis::from_f64_ceil(0.0), Millis(0));
        assert_eq!(Millis::from_f64_ceil(1.00001), Millis(2));
        assert_eq!(Millis::from_f64_ceil(41.0), Millis(41));
        assert_eq!(Millis(1500).as_secs_f64(), 1.5);
        assert_eq!(Millis::from_f64_ceil(f64::MAX), Millis::MAX);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Millis(900).to_string(), "900ms");
        assert_eq!(Millis(17_200).to_string(), "17.200s");
        assert_eq!(format!("{:?}", Millis(42)), "42ms");
    }

    #[test]
    fn min_max() {
        assert_eq!(Millis(2).max(Millis(9)), Millis(9));
        assert_eq!(Millis(2).min(Millis(9)), Millis(2));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics_in_debug() {
        let _ = Millis(1) - Millis(2);
    }
}
