//! Processor-sharing resources: the contention primitive behind every delay
//! the paper characterizes.
//!
//! A [`PsResource`] is a work-conserving queue with total capacity `C`
//! (work units per millisecond). Active flows share `C` in proportion to
//! their weights, except that no flow can exceed its own rate cap. The same
//! primitive models:
//!
//! * a node's **CPU pool**: capacity = cores (cpu-ms of work per wall ms),
//!   flow weight = thread count, per-flow cap = thread count (a JVM start
//!   with one hot thread cannot use 32 cores);
//! * a node's **IO channel** (disk + NIC folded together, see DESIGN.md):
//!   capacity = aggregate MB/ms, per-flow cap = single-stream MB/ms.
//!
//! ## Protocol with the event loop
//!
//! The resource does not own the event queue. Instead every mutation bumps a
//! generation counter; the owning model asks [`PsResource::next_completion`]
//! for the earliest finish time, schedules a tick event carrying the
//! generation, and on tick calls [`PsResource::on_tick`]. Stale ticks
//! (generation mismatch) are ignored — any mutation since has already
//! scheduled a fresher tick. Between mutations rates are constant, so
//! completions computed in closed form are exact (up to the deliberate
//! ceil-to-millisecond quantization).

use std::collections::BTreeMap;

use crate::time::Millis;

/// Identifies a flow within one resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Generation stamp used to invalidate stale tick events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceGen(pub u64);

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64,
    weight: f64,
    cap: f64,
}

const EPS: f64 = 1e-6;

/// A weighted processor-sharing resource with per-flow rate caps.
#[derive(Debug)]
pub struct PsResource {
    capacity: f64,
    flows: BTreeMap<u64, Flow>,
    next_id: u64,
    gen: u64,
    /// Last time (fractional ms) progress was applied.
    last: f64,
    /// Flows that reached zero remaining work during the last advance and
    /// await collection by `on_tick`.
    finished: Vec<FlowId>,
    /// Lifetime accounting for utilization reporting.
    work_done: f64,
    busy_ms: f64,
}

impl PsResource {
    /// A resource with the given total capacity (work units per ms).
    pub fn new(capacity: f64) -> PsResource {
        assert!(capacity > 0.0, "capacity must be positive");
        PsResource {
            capacity,
            flows: BTreeMap::new(),
            next_id: 0,
            gen: 0,
            last: 0.0,
            finished: Vec::new(),
            work_done: 0.0,
            busy_ms: 0.0,
        }
    }

    /// Total capacity in work units per millisecond.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of in-flight flows (including finished-but-uncollected).
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Current generation stamp.
    pub fn gen(&self) -> ResourceGen {
        ResourceGen(self.gen)
    }

    /// Total work completed over the resource's lifetime.
    pub fn work_done(&self) -> f64 {
        self.work_done
    }

    /// Milliseconds during which at least one flow was active.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Instantaneous utilization in `[0, 1]`: demanded rate over capacity.
    pub fn utilization(&self) -> f64 {
        let demand: f64 = self
            .flows
            .values()
            .filter(|f| f.remaining > EPS)
            .map(|f| f.cap)
            .sum();
        (demand / self.capacity).min(1.0)
    }

    /// Add a flow with `work` units outstanding, fair-share `weight`, and a
    /// maximum absorption rate of `cap` units/ms. Returns its id. Bumps the
    /// generation: the caller must reschedule its tick.
    pub fn add_flow(&mut self, now: Millis, work: f64, weight: f64, cap: f64) -> FlowId {
        assert!(work >= 0.0 && weight > 0.0 && cap > 0.0);
        self.advance_to(now.as_f64());
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                remaining: work,
                weight,
                cap,
            },
        );
        if work <= EPS {
            self.finished.push(FlowId(id));
        }
        self.gen += 1;
        FlowId(id)
    }

    /// Remove a flow before completion, returning its remaining work.
    /// Returns `None` if the id is unknown (already completed/cancelled).
    /// Bumps the generation.
    pub fn cancel(&mut self, now: Millis, id: FlowId) -> Option<f64> {
        self.advance_to(now.as_f64());
        let f = self.flows.remove(&id.0)?;
        self.finished.retain(|x| *x != id);
        self.gen += 1;
        Some(f.remaining)
    }

    /// Remaining work for a flow, if it is still in flight.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id.0).map(|f| f.remaining)
    }

    /// The earliest upcoming completion: `(time, generation)`. The time is
    /// rounded *up* to a whole millisecond so the tick never fires early.
    /// `None` when no unfinished flows remain and nothing awaits collection.
    pub fn next_completion(&self, now: Millis) -> Option<(Millis, ResourceGen)> {
        if !self.finished.is_empty() {
            return Some((now.max(Millis::from_f64_ceil(self.last)), self.gen()));
        }
        let rates = self.current_rates();
        let mut best: Option<f64> = None;
        for (id, f) in &self.flows {
            let rate = rates
                .iter()
                .find(|(rid, _)| rid == id)
                .map(|(_, r)| *r)
                .unwrap_or(0.0);
            if rate <= 0.0 {
                continue;
            }
            let t = self.last + f.remaining / rate;
            if best.is_none_or(|b| t < b) {
                best = Some(t);
            }
        }
        best.map(|t| {
            let at = Millis::from_f64_ceil(t).max(now);
            (at, self.gen())
        })
    }

    /// Process a tick scheduled with generation `gen` at time `now`.
    /// Returns the flows that completed (empty for stale ticks). Completion
    /// removes flows and bumps the generation when anything finished, so the
    /// caller should query `next_completion` again afterwards.
    pub fn on_tick(&mut self, now: Millis, gen: ResourceGen) -> Vec<FlowId> {
        if gen != self.gen() {
            return Vec::new();
        }
        self.advance_to(now.as_f64());
        let done = std::mem::take(&mut self.finished);
        if !done.is_empty() {
            for id in &done {
                self.flows.remove(&id.0);
            }
            self.gen += 1;
        }
        done
    }

    /// Apply progress at current rates over `[self.last, now_ms]`.
    fn advance_to(&mut self, now_ms: f64) {
        if now_ms <= self.last {
            return;
        }
        let dt = now_ms - self.last;
        let active = self.flows.values().any(|f| f.remaining > EPS);
        if active {
            self.busy_ms += dt;
        }
        let rates = self.current_rates();
        for (id, rate) in rates {
            if let Some(f) = self.flows.get_mut(&id) {
                let done = (rate * dt).min(f.remaining);
                f.remaining -= done;
                self.work_done += done;
                if f.remaining <= EPS && done > 0.0 {
                    f.remaining = 0.0;
                    let fid = FlowId(id);
                    if !self.finished.contains(&fid) {
                        self.finished.push(fid);
                    }
                }
            }
        }
        self.last = now_ms;
    }

    /// Weighted max-min fair ("water-filling") rates under per-flow caps.
    ///
    /// Iteratively: give every unfixed flow a share proportional to its
    /// weight; any flow whose share exceeds its cap is fixed at the cap and
    /// the leftover capacity is redistributed. Terminates in at most
    /// `n` rounds.
    fn current_rates(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = Vec::with_capacity(self.flows.len());
        let mut unfixed: Vec<(u64, f64, f64)> = Vec::new(); // (id, weight, cap)
        for (id, f) in &self.flows {
            if f.remaining > EPS {
                unfixed.push((*id, f.weight, f.cap));
            } else {
                out.push((*id, 0.0));
            }
        }
        let mut cap_left = self.capacity;
        loop {
            if unfixed.is_empty() || cap_left <= 0.0 {
                for (id, _, _) in &unfixed {
                    out.push((*id, 0.0));
                }
                break;
            }
            let wsum: f64 = unfixed.iter().map(|(_, w, _)| w).sum();
            let mut fixed_any = false;
            let mut i = 0;
            while i < unfixed.len() {
                let (id, w, cap) = unfixed[i];
                let share = cap_left * w / wsum;
                if cap <= share + 1e-12 {
                    out.push((id, cap));
                    cap_left -= cap;
                    unfixed.swap_remove(i);
                    fixed_any = true;
                } else {
                    i += 1;
                }
            }
            if !fixed_any {
                // No caps bind: everyone gets their proportional share.
                for (id, w, _) in &unfixed {
                    out.push((*id, cap_left.max(0.0) * w / wsum));
                }
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a resource to completion of all flows, returning
    /// `(flow, completion_time)` pairs, using the tick protocol exactly as a
    /// model would.
    fn drain(res: &mut PsResource, start: Millis) -> Vec<(FlowId, Millis)> {
        let mut out = Vec::new();
        let mut now = start;
        while let Some((at, gen)) = res.next_completion(now) {
            now = at;
            for id in res.on_tick(now, gen) {
                out.push((id, now));
            }
        }
        out
    }

    #[test]
    fn single_flow_runs_at_cap() {
        let mut res = PsResource::new(10.0);
        // 100 units at cap 2/ms => 50 ms.
        let f = res.add_flow(Millis(0), 100.0, 1.0, 2.0);
        let done = drain(&mut res, Millis(0));
        assert_eq!(done, vec![(f, Millis(50))]);
    }

    #[test]
    fn single_flow_limited_by_capacity() {
        let mut res = PsResource::new(1.0);
        // cap 5/ms but capacity 1/ms => 100 ms.
        let f = res.add_flow(Millis(0), 100.0, 1.0, 5.0);
        let done = drain(&mut res, Millis(0));
        assert_eq!(done, vec![(f, Millis(100))]);
    }

    #[test]
    fn equal_flows_share_fairly() {
        let mut res = PsResource::new(2.0);
        // Two identical flows, each capped at 2: share capacity equally at
        // 1/ms each => both finish at 100 ms.
        let a = res.add_flow(Millis(0), 100.0, 1.0, 2.0);
        let b = res.add_flow(Millis(0), 100.0, 1.0, 2.0);
        let done = drain(&mut res, Millis(0));
        assert_eq!(done.len(), 2);
        assert!(done.contains(&(a, Millis(100))));
        assert!(done.contains(&(b, Millis(100))));
    }

    #[test]
    fn weighted_sharing() {
        let mut res = PsResource::new(3.0);
        // weight 2 vs 1 => rates 2 and 1.
        let a = res.add_flow(Millis(0), 200.0, 2.0, 10.0);
        let b = res.add_flow(Millis(0), 100.0, 1.0, 10.0);
        let done = drain(&mut res, Millis(0));
        assert!(done.contains(&(a, Millis(100))));
        assert!(done.contains(&(b, Millis(100))));
    }

    #[test]
    fn capped_flow_leaves_slack_to_others() {
        let mut res = PsResource::new(10.0);
        // a capped at 1/ms; b takes the rest (cap 9/ms).
        let a = res.add_flow(Millis(0), 100.0, 1.0, 1.0);
        let b = res.add_flow(Millis(0), 90.0, 1.0, 9.0);
        let done = drain(&mut res, Millis(0));
        assert!(done.contains(&(a, Millis(100))), "{done:?}");
        assert!(done.contains(&(b, Millis(10))), "{done:?}");
    }

    #[test]
    fn rates_speed_up_after_completion() {
        let mut res = PsResource::new(2.0);
        // Both capped at 2. Shares 1/1. b finishes at t=10 (10 units);
        // a then runs at 2/ms: a has 100-10=90 left => +45ms => t=55.
        let a = res.add_flow(Millis(0), 100.0, 1.0, 2.0);
        let b = res.add_flow(Millis(0), 10.0, 1.0, 2.0);
        let done = drain(&mut res, Millis(0));
        assert!(done.contains(&(b, Millis(10))), "{done:?}");
        assert!(done.contains(&(a, Millis(55))), "{done:?}");
    }

    #[test]
    fn late_arrival_slows_existing_flow() {
        let mut res = PsResource::new(2.0);
        let a = res.add_flow(Millis(0), 100.0, 1.0, 2.0);
        // a alone at 2/ms. At t=20 (60 left for a), b arrives; both at 1/ms.
        // b: 30 units => done t=50. a: 60-30=30 left at t=50, then 2/ms
        // => done t=65.
        let (at, gen) = res.next_completion(Millis(0)).unwrap();
        assert_eq!(at, Millis(50));
        let b = res.add_flow(Millis(20), 30.0, 1.0, 2.0);
        // The original tick is now stale.
        assert_eq!(res.on_tick(Millis(50), gen), Vec::<FlowId>::new());
        let done = drain(&mut res, Millis(20));
        assert!(done.contains(&(b, Millis(50))), "{done:?}");
        assert!(done.contains(&(a, Millis(65))), "{done:?}");
    }

    #[test]
    fn cancel_returns_remaining() {
        let mut res = PsResource::new(1.0);
        let a = res.add_flow(Millis(0), 100.0, 1.0, 1.0);
        let left = res.cancel(Millis(30), a).unwrap();
        assert!((left - 70.0).abs() < 1e-6, "left {left}");
        assert!(res.cancel(Millis(31), a).is_none());
        assert!(res.next_completion(Millis(31)).is_none());
    }

    #[test]
    fn zero_work_flow_completes_immediately() {
        let mut res = PsResource::new(1.0);
        let a = res.add_flow(Millis(5), 0.0, 1.0, 1.0);
        let (at, gen) = res.next_completion(Millis(5)).unwrap();
        assert_eq!(at, Millis(5));
        assert_eq!(res.on_tick(at, gen), vec![a]);
    }

    #[test]
    fn stale_tick_is_ignored() {
        let mut res = PsResource::new(1.0);
        res.add_flow(Millis(0), 10.0, 1.0, 1.0);
        let (_, gen) = res.next_completion(Millis(0)).unwrap();
        res.add_flow(Millis(1), 10.0, 1.0, 1.0); // bumps gen
        assert!(res.on_tick(Millis(10), gen).is_empty());
    }

    #[test]
    fn work_conservation_accounting() {
        let mut res = PsResource::new(4.0);
        res.add_flow(Millis(0), 100.0, 1.0, 4.0);
        res.add_flow(Millis(0), 60.0, 1.0, 4.0);
        drain(&mut res, Millis(0));
        assert!(
            (res.work_done() - 160.0).abs() < 1e-3,
            "{}",
            res.work_done()
        );
        assert!(res.busy_ms() >= 40.0 - 1e-6, "{}", res.busy_ms());
    }

    #[test]
    fn utilization_reflects_demand() {
        let mut res = PsResource::new(10.0);
        assert_eq!(res.utilization(), 0.0);
        res.add_flow(Millis(0), 100.0, 1.0, 5.0);
        assert!((res.utilization() - 0.5).abs() < 1e-9);
        res.add_flow(Millis(0), 100.0, 1.0, 20.0);
        assert_eq!(res.utilization(), 1.0);
    }

    #[test]
    fn completion_time_never_in_past() {
        let mut res = PsResource::new(1.0);
        res.add_flow(Millis(0), 0.5, 1.0, 1.0); // exact completion at 0.5ms
        let (at, _) = res.next_completion(Millis(0)).unwrap();
        assert_eq!(at, Millis(1)); // ceil quantization
    }

    #[test]
    fn many_flows_complete_in_order_of_size() {
        let mut res = PsResource::new(8.0);
        let flows: Vec<FlowId> = (1..=8)
            .map(|i| res.add_flow(Millis(0), (i * 100) as f64, 1.0, 8.0))
            .collect();
        let done = drain(&mut res, Millis(0));
        let order: Vec<FlowId> = done.iter().map(|(f, _)| *f).collect();
        assert_eq!(order, flows, "smaller flows must finish first");
        // Times must be non-decreasing.
        for w in done.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
