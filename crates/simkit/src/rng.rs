//! Deterministic random-number generation with independent substreams.
//!
//! A simulation run is identified by a single `u64` seed. Components that
//! need their own stream of randomness (per-node noise, per-application work
//! sampling, the arrival process) get a *fork*: an independent generator
//! derived from the base seed and a caller-chosen stream label. Forking
//! keeps results stable when one component starts drawing more samples —
//! adding a draw in the localizer cannot perturb task-duration sampling.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), implemented locally so
//! the workspace has no external dependencies, seeded through SplitMix64 so
//! that closely related `(seed, stream)` pairs still yield well-separated
//! states.

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer used to derive
/// substream seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core state: 4×64 bits, seeded by iterating SplitMix64.
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Xoshiro256 {
        // Standard recommendation: fill the state with SplitMix64 output so
        // even all-zero / low-entropy seeds yield a valid (nonzero) state.
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *w = splitmix64(sm);
        }
        Xoshiro256 { s }
    }

    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

/// A deterministic simulation RNG.
pub struct SimRng {
    inner: Xoshiro256,
    seed: u64,
}

impl SimRng {
    /// Create the root generator for a run.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            inner: Xoshiro256::seed_from_u64(splitmix64(seed)),
            seed,
        }
    }

    /// The seed this generator (or fork chain) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent substream identified by `stream`.
    ///
    /// Forks of the same `(seed, stream)` pair are identical; forks of
    /// different streams are statistically independent.
    pub fn fork(&self, stream: u64) -> SimRng {
        let sub = splitmix64(self.seed ^ splitmix64(stream.wrapping_add(0xA5A5_5A5A)));
        SimRng {
            inner: Xoshiro256::seed_from_u64(sub),
            seed: sub,
        }
    }

    /// Derive a substream from a string label (hashed FNV-1a).
    pub fn fork_named(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        self.fork(h)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high-quality bits → the standard [0, 1) mapping.
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` over the full range.
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Lemire's multiply-shift with rejection: exactly uniform.
        let mut x = self.inner.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.inner.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index into empty slice");
        self.below(len as u64) as usize
    }

    /// Standard normal variate via Box–Muller (one value per call; the
    /// second value is discarded to keep the draw count predictable).
    pub fn std_normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimRng(seed={:#x})", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..64).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let root = SimRng::new(99);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let mut f1b = root.fork(1);
        assert_eq!(f1.u64(), f1b.u64());
        assert_ne!(f1.u64(), f2.u64());
    }

    #[test]
    fn named_forks_reproducible() {
        let root = SimRng::new(5);
        let mut a = root.fork_named("localizer");
        let mut b = root.fork_named("localizer");
        let mut c = root.fork_named("arrivals");
        assert_eq!(a.u64(), b.u64());
        assert_ne!(a.u64(), c.u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(1);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let n = r.below(10);
            assert!(n < 10);
            let m = r.range(5, 8);
            assert!((5..8).contains(&m));
            let f = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn std_normal_moments() {
        let mut r = SimRng::new(1234);
        let n = 20_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.std_normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
