//! Mutation tests: prove the checkers actually detect drift.
//!
//! Each test takes the *real* tables, breaks exactly one thing the way a
//! careless edit would, and asserts the checker produces a finding that
//! names the broken template/rule and points at the nearest match —
//! i.e. the diagnostic a developer would need to fix the drift.

use logmodel::schema::MsgTemplate;
use sdlint::{conformance, machines};

/// The real tables produce zero findings — the merge gate.
#[test]
fn repo_is_clean() {
    let findings = sdlint::run_all(&sdlint::default_repo_root());
    assert!(findings.is_empty(), "{findings:#?}");
}

fn mutate_template(name: &str, f: impl FnOnce(&mut MsgTemplate)) -> Vec<MsgTemplate> {
    let mut templates = sdlint::all_emitted_templates();
    let t = templates
        .iter_mut()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("no template named {name}"));
    f(t);
    templates
}

/// Breaking one word of an emitted message template must fail
/// conformance with a diagnostic naming the template AND the nearest
/// extraction rule.
#[test]
fn broken_template_names_template_and_nearest_rule() {
    // The careless edit: "State change" becomes "Statechange" in the
    // RM app emitter. Byte-for-byte the extractor no longer matches.
    let templates = mutate_template("rm_app_state_change", |t| {
        t.template = "{} Statechange from {} to {} on event = {}";
    });
    let findings = conformance::check(&templates, sdchecker::schema::patterns());
    assert!(!findings.is_empty(), "mutation went undetected");
    let f = &findings[0];
    assert!(
        f.message.contains("rm_app_state_change"),
        "diagnostic must name the broken template: {f}"
    );
    assert!(
        f.message.contains("rm_app_transition"),
        "diagnostic must name the nearest extraction rule: {f}"
    );
    assert!(
        f.message.contains("affinity"),
        "diagnostic must quantify the near-miss: {f}"
    );
}

/// Mislabeling noise as an Event (an emitter the extractor was never
/// taught) is caught, with the source file in the diagnostic.
#[test]
fn unparsed_event_template_is_caught() {
    let templates = mutate_template("rm_node_lost", |t| {
        t.disposition = logmodel::schema::Disposition::Event;
    });
    let findings = conformance::check(&templates, sdchecker::schema::patterns());
    assert!(
        findings.iter().any(|f| f.message.contains("rm_node_lost")
            && f.message.contains("matches no extraction rule")
            && f.message.contains(t_file("rm_node_lost"))),
        "{findings:#?}"
    );
}

/// A template drifting into another rule's shape (shadowing) is caught
/// as ambiguity.
#[test]
fn shadowed_template_is_caught() {
    // Make the RM app emitter produce container-transition-shaped text
    // under the container class: now two container entities log the
    // same shape and the rule table cannot say which rule wins.
    let templates = mutate_template("rm_app_state_change", |t| {
        t.class = "RMContainerImpl";
        t.template = "{} Container Transitioned from {} to {}";
    });
    let findings = conformance::check(&templates, sdchecker::schema::patterns());
    // Not ambiguous per se (one rule fires) — but the app-transition
    // rule has lost its emitter, which the reverse direction reports.
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("rm_app_transition") && f.message.contains("no emitter")),
        "{findings:#?}"
    );
}

/// A rule with no emitter and no `external_only` annotation is dead
/// weight and flagged.
#[test]
fn dead_rule_is_caught() {
    let mut templates = sdlint::all_emitted_templates();
    templates.retain(|t| t.name != "spark_task_assigned");
    let findings = conformance::check(&templates, sdchecker::schema::patterns());
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("task_assigned") && f.message.contains("no emitter")),
        "{findings:#?}"
    );
}

/// Cutting a transition edge strands downstream states — the machine
/// checker must name the stranded state.
#[test]
fn stranded_state_is_caught() {
    let mut specs = yarnsim::schema::machines();
    let m = specs
        .iter_mut()
        .find(|m| m.name == "RMContainerImpl")
        .expect("RMContainerImpl spec");
    let running = m.index_of("RUNNING").expect("RUNNING state");
    for row in &mut m.can_go {
        row[running] = false;
    }
    let findings = machines::check(&specs);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("RMContainerImpl")
                && f.message.contains("RUNNING")
                && f.message.contains("unreachable")),
        "{findings:#?}"
    );
}

/// A state escaping the extractor's alphabet is flagged before any log
/// is ever parsed.
#[test]
fn out_of_alphabet_state_is_caught() {
    let mut specs = yarnsim::schema::machines();
    let m = specs
        .iter_mut()
        .find(|m| m.name == "RMAppImpl")
        .expect("RMAppImpl spec");
    let finished = m.index_of("FINISHED").expect("FINISHED state");
    m.states[finished] = "COMPLETED"; // renamed in the emitter, not the parser
    let findings = machines::check(&specs);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("COMPLETED") && f.message.contains("alphabet")),
        "{findings:#?}"
    );
}

fn t_file(name: &str) -> &'static str {
    sdlint::all_emitted_templates()
        .iter()
        .find(|t| t.name == name)
        .map(|t| t.file)
        .unwrap_or("")
}
