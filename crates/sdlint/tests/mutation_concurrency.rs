//! Mutation tests for the concurrency suite (PR 10).
//!
//! Same discipline as `mutation.rs`: each test seeds exactly one
//! violation — the careless edit a real PR would make — and asserts the
//! checker fails with a diagnostic naming the offending lock, site,
//! path, or model. The green run in `repo_is_clean` certifies the tree;
//! these certify the checkers.

use sdlint::scan::SourceFile;
use sdlint::{atomics, determinism, interleave, locks};

// ---------------------------------------------------------------------------
// locks: seeded lock-order cycle
// ---------------------------------------------------------------------------

/// Two locks acquired in opposite orders on two paths — the textbook
/// ABBA deadlock — must fail the lock audit with the cycle spelled out.
#[test]
fn seeded_lock_order_cycle_is_caught() {
    let body = "\
struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}
impl S {
    fn one(&self) {
        let g = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let h = self.b.lock().unwrap_or_else(|e| e.into_inner());
    }
    fn two(&self) {
        let g = self.b.lock().unwrap_or_else(|e| e.into_inner());
        let h = self.a.lock().unwrap_or_else(|e| e.into_inner());
    }
}
";
    let sources = [SourceFile {
        rel: "crates/x/src/lib.rs".into(),
        body: body.into(),
    }];
    let table = [
        locks::LockSpec {
            name: "test.a",
            file: "crates/x/src/lib.rs",
            kind: locks::LockKind::Mutex,
            decl_pattern: "a: Mutex",
            decl_sites: 1,
            acquire_pattern: ".a.lock(",
            guards: "half of the seeded ABBA pair",
            poison: locks::PoisonPolicy::Recover,
        },
        locks::LockSpec {
            name: "test.b",
            file: "crates/x/src/lib.rs",
            kind: locks::LockKind::Mutex,
            decl_pattern: "b: Mutex",
            decl_sites: 1,
            acquire_pattern: ".b.lock(",
            guards: "the other half",
            poison: locks::PoisonPolicy::Recover,
        },
    ];
    let edges = [
        locks::HeldEdge {
            holder: "test.a",
            acquired: "test.b",
            kind: locks::EdgeKind::Lexical,
            why: "fn one",
        },
        locks::HeldEdge {
            holder: "test.b",
            acquired: "test.a",
            kind: locks::EdgeKind::Lexical,
            why: "fn two",
        },
    ];
    let findings = locks::check_tables(&sources, &table, &edges, &[]);
    let cycle = findings
        .iter()
        .find(|f| f.message.contains("lock-order cycle"))
        .unwrap_or_else(|| panic!("no cycle finding in {findings:#?}"));
    assert!(
        cycle.message.contains("test.a") && cycle.message.contains("test.b"),
        "cycle diagnostic must name both locks: {cycle}"
    );
    assert!(
        cycle.message.contains("deadlock"),
        "cycle diagnostic must say why it matters: {cycle}"
    );
}

/// An undeclared nesting (one lock taken while another is held, with no
/// HELD_EDGES entry) is caught even when acyclic.
#[test]
fn undeclared_nesting_is_caught() {
    let body = "\
struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}
impl S {
    fn one(&self) {
        let g = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let h = self.b.lock().unwrap_or_else(|e| e.into_inner());
    }
}
";
    let sources = [SourceFile {
        rel: "crates/x/src/lib.rs".into(),
        body: body.into(),
    }];
    let table = [
        locks::LockSpec {
            name: "test.a",
            file: "crates/x/src/lib.rs",
            kind: locks::LockKind::Mutex,
            decl_pattern: "a: Mutex",
            decl_sites: 1,
            acquire_pattern: ".a.lock(",
            guards: "x",
            poison: locks::PoisonPolicy::Recover,
        },
        locks::LockSpec {
            name: "test.b",
            file: "crates/x/src/lib.rs",
            kind: locks::LockKind::Mutex,
            decl_pattern: "b: Mutex",
            decl_sites: 1,
            acquire_pattern: ".b.lock(",
            guards: "y",
            poison: locks::PoisonPolicy::Recover,
        },
    ];
    let findings = locks::check_tables(&sources, &table, &[], &[]);
    assert!(
        findings.iter().any(|f| f.message.contains("undeclared")
            && f.message.contains("test.b")
            && f.message.contains("test.a")),
        "{findings:#?}"
    );
}

/// A guard held across blocking I/O is caught with the lock named.
#[test]
fn lock_held_across_io_is_caught() {
    let body = "\
struct S {
    a: Mutex<u32>,
}
impl S {
    fn slow(&self) {
        let g = self.a.lock().unwrap_or_else(|e| e.into_inner());
        std::fs::write(\"/tmp/x\", \"y\").ok();
    }
}
";
    let sources = [SourceFile {
        rel: "crates/x/src/lib.rs".into(),
        body: body.into(),
    }];
    let table = [locks::LockSpec {
        name: "test.a",
        file: "crates/x/src/lib.rs",
        kind: locks::LockKind::Mutex,
        decl_pattern: "a: Mutex",
        decl_sites: 1,
        acquire_pattern: ".a.lock(",
        guards: "x",
        poison: locks::PoisonPolicy::Recover,
    }];
    let findings = locks::check_tables(&sources, &table, &[], &[]);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("held across") && f.message.contains("test.a")),
        "{findings:#?}"
    );
}

// ---------------------------------------------------------------------------
// atomics: unlisted Relaxed
// ---------------------------------------------------------------------------

/// A new `Ordering::Relaxed` with no allowlist entry must fail with the
/// file, line, and call site in the diagnostic.
#[test]
fn unlisted_relaxed_is_caught() {
    let sources = [SourceFile {
        rel: "crates/sdchecker/src/bin/sdcheckerd.rs".into(),
        body: "fn poll() {\n    while !SHUTDOWN.load(Ordering::Relaxed) {\n    }\n}\n".into(),
    }];
    // Real allowlist, seeded source: the daemon flag downgraded to
    // Relaxed is exactly the edit the audit exists to stop.
    let findings = atomics::check_table(&sources, atomics::RELAXED_ALLOW);
    let f = findings
        .iter()
        .find(|f| f.message.contains("outside the allowlist"))
        .unwrap_or_else(|| panic!("no unlisted-Relaxed finding in {findings:#?}"));
    assert!(
        f.message
            .contains("crates/sdchecker/src/bin/sdcheckerd.rs:2"),
        "diagnostic must give file:line: {f}"
    );
    assert!(
        f.message.contains("SHUTDOWN.load("),
        "diagnostic must quote the site: {f}"
    );
    // The real entries are now stale (their file is absent from the
    // seeded source set) — that is the two-way ratchet talking, not the
    // violation under test.
}

// ---------------------------------------------------------------------------
// determinism: hash map on an output path
// ---------------------------------------------------------------------------

/// A `HashMap` introduced in a report-feeding module must fail the
/// determinism lint naming the path class, even if someone also adds an
/// allowlist entry for it.
#[test]
fn hashmap_on_output_path_is_caught() {
    let sources = [SourceFile {
        rel: "crates/sdchecker/src/report.rs".into(),
        body: "fn render() {\n    let m: HashMap<String, u64> = HashMap::new();\n}\n".into(),
    }];
    let findings = determinism::check_tables(
        &sources,
        determinism::OUTPUT_PREFIXES,
        determinism::HASH_ALLOW,
    );
    let f = findings
        .iter()
        .find(|f| f.message.contains("output dataflow path"))
        .unwrap_or_else(|| panic!("no output-path finding in {findings:#?}"));
    assert!(
        f.message.contains("crates/sdchecker/src/report.rs:2"),
        "diagnostic must give file:line: {f}"
    );
    assert!(
        f.message.contains("BTreeMap"),
        "diagnostic must say what to use instead: {f}"
    );
}

// ---------------------------------------------------------------------------
// interleave: torn-snapshot model
// ---------------------------------------------------------------------------

/// Removing the report lock from the daemon model's publish path must
/// produce a torn-snapshot diagnostic naming the model — proof the
/// explorer actually visits the interleaving where HTTP lands between
/// the two report-word writes.
#[test]
fn torn_snapshot_model_is_caught() {
    let (findings, stats) = interleave::explore(
        &interleave::DaemonModel::torn_publish(),
        interleave::MAX_STATES,
    );
    assert!(!stats.capped, "mutated model blew the state cap");
    let f = findings
        .iter()
        .find(|f| f.message.contains("torn snapshot"))
        .unwrap_or_else(|| panic!("no torn-snapshot finding in {findings:#?}"));
    assert!(
        f.message.contains("[daemon-shutdown-drain]"),
        "diagnostic must name the model: {f}"
    );
    assert!(
        f.message.contains("report lock"),
        "diagnostic must say what discipline was broken: {f}"
    );
}

/// The acceptance bar for exhaustiveness: the real daemon model explores
/// more than 10^4 distinct states, uncapped, and every terminal state
/// drains.
#[test]
fn daemon_model_exhaustive_exploration_exceeds_10k_states() {
    let (findings, stats) =
        interleave::explore(&interleave::DaemonModel::real(), interleave::MAX_STATES);
    assert!(findings.is_empty(), "{findings:#?}");
    assert!(!stats.capped);
    assert!(
        stats.states > 10_000,
        "explored only {} states",
        stats.states
    );
    assert!(stats.terminals > 0);
}
