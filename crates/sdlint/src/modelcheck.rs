//! Checker 2b: bounded model check of small simulated configurations.
//!
//! Enumerates tiny cluster configs (1–2 nodes, 1–2 apps, faults on/off),
//! runs the full simulator, and replays every logged transition through
//! the reified [`MachineSpec`]s: chains start at the initial state and
//! stay legal and connected, timestamps are monotone per entity and per
//! stream, transitions are exactly-once where the protocol promises it,
//! and SDchecker's decomposition tiles the critical path with no
//! negative or overlapping segments.

use std::collections::BTreeMap;

use logmodel::schema::MachineSpec;
use logmodel::{LogSource, LogStore, TsMs};
use sdchecker::pattern::Pat;
use simkit::Millis;
use sparksim::profiles;
use yarnsim::{ClusterConfig, FaultConfig};

use crate::Finding;

const CHECKER: &str = "modelcheck";

/// One enumerated configuration.
struct Config {
    name: &'static str,
    nodes: u32,
    apps: u32,
    faults: FaultConfig,
}

fn configs() -> Vec<Config> {
    vec![
        Config {
            name: "1 node, 1 app, no faults",
            nodes: 1,
            apps: 1,
            faults: FaultConfig::default(),
        },
        Config {
            name: "2 nodes, 2 apps, no faults",
            nodes: 2,
            apps: 2,
            faults: FaultConfig::default(),
        },
        Config {
            name: "1 node, 1 app, AM retry",
            nodes: 1,
            apps: 1,
            faults: FaultConfig {
                scripted_am_failures: vec![(1, 1)],
                ..FaultConfig::default()
            },
        },
        Config {
            name: "2 nodes, 2 apps, launch+localization faults",
            nodes: 2,
            apps: 2,
            faults: FaultConfig {
                launch_failure_rate: 0.3,
                localization_failure_rate: 0.3,
                fault_seed: 7,
                ..FaultConfig::default()
            },
        },
    ]
}

/// One observed transition.
struct Obs {
    ts: TsMs,
    from: String,
    to: String,
}

/// Parse every machine transition out of `store`, keyed by
/// `(machine class, entity id)`, in log order.
fn observed_transitions(store: &LogStore) -> BTreeMap<(String, String), Vec<Obs>> {
    let rm_app = Pat::new_static(sdchecker::schema::RM_APP_TEMPLATE);
    let rm_container = Pat::new_static(sdchecker::schema::RM_CONTAINER_TEMPLATE);
    let nm_container = Pat::new_static(sdchecker::schema::NM_CONTAINER_TEMPLATE);
    let mut out: BTreeMap<(String, String), Vec<Obs>> = BTreeMap::new();
    for src in store.sources() {
        for r in store.records(src) {
            let (entity, from, to) = match (src, r.class.as_str()) {
                (LogSource::ResourceManager, "RMAppImpl") => match rm_app.match_str(&r.message) {
                    Some(c) => (c[0], c[1], c[2]),
                    None => continue,
                },
                (LogSource::ResourceManager, "RMContainerImpl") => {
                    match rm_container.match_str(&r.message) {
                        Some(c) => (c[0], c[1], c[2]),
                        None => continue,
                    }
                }
                (LogSource::NodeManager(_), "ContainerImpl") => {
                    match nm_container.match_str(&r.message) {
                        Some(c) => (c[0], c[1], c[2]),
                        None => continue,
                    }
                }
                _ => continue,
            };
            out.entry((r.class.clone(), entity.to_string()))
                .or_default()
                .push(Obs {
                    ts: r.ts,
                    from: from.to_string(),
                    to: to.to_string(),
                });
        }
    }
    out
}

/// Replay one entity's transition chain through its machine spec.
fn check_chain(
    cfg_name: &str,
    machine: &MachineSpec,
    entity: &str,
    obs: &[Obs],
    apps_exactly_once: bool,
    findings: &mut Vec<Finding>,
) {
    let initial = machine.states[machine.initial];
    if let Some(first) = obs.first() {
        if first.from != initial {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "[{cfg_name}] {} {entity}: first transition starts at {} — \
                     expected initial state {initial}",
                    machine.name, first.from
                ),
            ));
        }
    }
    let mut seen: BTreeMap<(String, String), usize> = BTreeMap::new();
    for (i, o) in obs.iter().enumerate() {
        if !machine.legal(&o.from, &o.to) {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "[{cfg_name}] {} {entity}: logged illegal transition {} -> {}",
                    machine.name, o.from, o.to
                ),
            ));
        }
        if i > 0 {
            let prev = &obs[i - 1];
            if o.from != prev.to {
                findings.push(Finding::new(
                    CHECKER,
                    format!(
                        "[{cfg_name}] {} {entity}: broken chain — transition from {} \
                         after reaching {}",
                        machine.name, o.from, prev.to
                    ),
                ));
            }
            if o.ts < prev.ts {
                findings.push(Finding::new(
                    CHECKER,
                    format!(
                        "[{cfg_name}] {} {entity}: non-monotone timestamps \
                         ({} after {})",
                        machine.name, o.ts, prev.ts
                    ),
                ));
            }
        }
        *seen.entry((o.from.clone(), o.to.clone())).or_default() += 1;
    }
    // Containers are single-use entities: every transition fires at most
    // once. Application machines may legally revisit ACCEPTED/RUNNING
    // under AM retry, so the exactly-once claim only holds fault-free.
    let is_app = machine.name == "RMAppImpl";
    if !is_app || apps_exactly_once {
        for ((from, to), count) in seen {
            if count > 1 {
                findings.push(Finding::new(
                    CHECKER,
                    format!(
                        "[{cfg_name}] {} {entity}: transition {from} -> {to} \
                         logged {count} times (exactly-once violated)",
                        machine.name
                    ),
                ));
            }
        }
    }
}

/// Per-stream timestamp monotonicity: a log file is append-only; the
/// writer's clock can never run backwards within one stream.
fn check_stream_order(cfg_name: &str, store: &LogStore, findings: &mut Vec<Finding>) {
    for src in store.sources() {
        let records = store.records(src);
        for w in records.windows(2) {
            if w[1].ts < w[0].ts {
                findings.push(Finding::new(
                    CHECKER,
                    format!(
                        "[{cfg_name}] stream {}: record timestamps go backwards \
                         ({} after {})",
                        src.rel_path(),
                        w[1].ts,
                        w[0].ts
                    ),
                ));
                break;
            }
        }
    }
}

/// SDchecker's critical path must tile `submitted -> first task`:
/// ordered, contiguous, non-negative segments summing to the total.
fn check_tiling(cfg_name: &str, store: &LogStore, findings: &mut Vec<Finding>) {
    let analysis = sdchecker::analyze_store(store);
    for g in analysis.graphs.values() {
        let Some(cp) = sdchecker::critical_path(g) else {
            continue;
        };
        if cp.segments.is_empty() {
            findings.push(Finding::new(
                CHECKER,
                format!("[{cfg_name}] app {}: critical path has no segments", cp.app),
            ));
            continue;
        }
        let mut sum = 0u64;
        for w in cp.segments.windows(2) {
            if w[1].from != w[0].to {
                findings.push(Finding::new(
                    CHECKER,
                    format!(
                        "[{cfg_name}] app {}: critical path not contiguous — \
                         `{}` ends at {} but `{}` starts at {}",
                        cp.app, w[0].component, w[0].to, w[1].component, w[1].from
                    ),
                ));
            }
        }
        for s in &cp.segments {
            if s.to < s.from {
                findings.push(Finding::new(
                    CHECKER,
                    format!(
                        "[{cfg_name}] app {}: negative segment `{}` ({} -> {})",
                        cp.app, s.component, s.from, s.to
                    ),
                ));
            }
            sum += s.dur_ms();
        }
        if sum != cp.total_ms {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "[{cfg_name}] app {}: segments sum to {sum} ms but total is {} ms \
                     — the decomposition does not tile the critical path",
                    cp.app, cp.total_ms
                ),
            ));
        }
    }
}

/// Run the bounded model check over all enumerated configurations.
pub fn check() -> Vec<Finding> {
    let mut findings = Vec::new();
    let machines: BTreeMap<&str, MachineSpec> = yarnsim::schema::machines()
        .into_iter()
        .map(|m| (m.name, m))
        .collect();
    for cfg in configs() {
        let faults_on = cfg.faults.any_enabled();
        let cluster = ClusterConfig {
            nodes: cfg.nodes,
            faults: cfg.faults,
            ..ClusterConfig::default()
        };
        let arrivals: Vec<(Millis, sparksim::JobSpec)> = (0..cfg.apps)
            .map(|i| {
                (
                    Millis(100 + 200 * u64::from(i)),
                    profiles::spark_sql_default(256.0, 1),
                )
            })
            .collect();
        let (store, summaries) = sparksim::simulate(cluster, 11, arrivals, Millis::from_mins(240));

        if summaries.len() != cfg.apps as usize {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "[{}] expected {} job summaries, got {} — the bounded run \
                     did not terminate every application",
                    cfg.name,
                    cfg.apps,
                    summaries.len()
                ),
            ));
        }

        check_stream_order(cfg.name, &store, &mut findings);

        let transitions = observed_transitions(&store);
        if transitions.is_empty() {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "[{}] no machine transitions observed — vacuous run",
                    cfg.name
                ),
            ));
        }
        for ((class, entity), obs) in &transitions {
            let Some(machine) = machines.get(class.as_str()) else {
                findings.push(Finding::new(
                    CHECKER,
                    format!("[{}] no machine spec for logged class {class}", cfg.name),
                ));
                continue;
            };
            check_chain(cfg.name, machine, entity, obs, !faults_on, &mut findings);
        }

        check_tiling(cfg.name, &store, &mut findings);
    }
    findings
}

#[cfg(test)]
mod tests {
    #[test]
    fn bounded_model_check_passes() {
        let findings = super::check();
        assert!(findings.is_empty(), "{findings:#?}");
    }
}
