//! Checker 7: determinism lint.
//!
//! Every golden test in this repo asserts `identical_output: true` —
//! byte-identical reports, wide events, Prometheus export, checkpoint
//! sections, and trace JSON across thread counts and chunk sizes. The
//! single easiest way to lose that property is iterating a randomized
//! hash container somewhere on the dataflow path that feeds an output
//! writer: the bytes stay "mostly right" and drift only when the hasher
//! seed does.
//!
//! So this lint denies the hash containers by *path class*:
//!
//! * Files under an [`OUTPUT_PREFIXES`] prefix — everything that
//!   computes or renders output (the analyzer, the log formats, the
//!   metrics surface, the figure generators, sdlint's own findings) —
//!   may not mention `HashMap`/`HashSet` at all. Use `BTreeMap`/
//!   `BTreeSet` or sort explicitly before emission; there is no
//!   allowlist for these files, determinism is enforced by analysis
//!   instead of luck.
//! * Everything else may use hash containers only with a
//!   [`HASH_ALLOW`] entry (two-way ratchet) justifying why iteration
//!   order cannot reach any output — pure keyed lookup, never iterated.
//!
//! The scan is textual and conservative: a `HashMap` in a string or a
//! type alias counts. Noisy beats silent, as with the other audits.

use std::collections::BTreeMap;
use std::path::Path;

use crate::scan;
use crate::Finding;

const CHECKER: &str = "determinism";

/// Path prefixes (repo-relative, forward slashes) whose files feed
/// output writers and therefore get a hard deny — reports, wide
/// events, Prometheus export, checkpoints, trace JSON, figures, log
/// bytes, and sdlint's own diagnostics.
pub const OUTPUT_PREFIXES: &[&str] = &[
    "crates/sdchecker/src/",
    "crates/obs/src/",
    "crates/logmodel/src/",
    "crates/experiments/src/",
    "crates/bench/src/",
    "crates/sdlint/src/",
];

/// One justified hash-container use outside the output prefixes.
#[derive(Debug, Clone, Copy)]
pub struct HashAllow {
    pub file: &'static str,
    /// Token occurrences allowed (type positions, constructors, `use`
    /// lines all count).
    pub count: usize,
    /// Why iteration order cannot reach output.
    pub justification: &'static str,
}

/// Hash-container budgets for the simulator internals.
pub const HASH_ALLOW: &[HashAllow] = &[
    HashAllow {
        file: "crates/yarnsim/src/node.rs",
        count: 6,
        justification: "localization cache and inflight map: contains/insert/\
                        remove/retain keyed by id, never iterated, so order \
                        cannot reach emitted logs",
    },
    HashAllow {
        file: "crates/sparksim/src/run.rs",
        count: 9,
        justification: "ticket routing tables: insert/remove/clear/retain by \
                        key with per-entry logic only, never iterated into \
                        emitted output",
    },
];

/// The denied container tokens, assembled at runtime so this file's
/// own diagnostics do not count against the scan.
fn hash_needles() -> Vec<String> {
    vec![format!("Hash{}", "Map"), format!("Hash{}", "Set")]
}

/// Check the given sources against prefix + allow tables. Split out
/// from [`check`] so mutation tests can feed seeded sources.
pub fn check_tables(
    sources: &[scan::SourceFile],
    output_prefixes: &[&str],
    allow: &[HashAllow],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let needles = hash_needles();

    for a in allow {
        if output_prefixes.iter().any(|p| a.file.starts_with(p)) {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "HASH_ALLOW entry {} lies under output prefix — output \
                     paths have no allowlist; convert to BTreeMap/BTreeSet or \
                     sort before emission",
                    a.file,
                ),
            ));
        }
    }

    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut first_site: BTreeMap<String, (usize, String)> = BTreeMap::new();
    for sf in sources {
        for ll in scan::logical_lines(&sf.body) {
            let n: usize = needles
                .iter()
                .map(|needle| ll.text.matches(needle.as_str()).count())
                .sum();
            if n > 0 {
                *counts.entry(sf.rel.clone()).or_default() += n;
                first_site
                    .entry(sf.rel.clone())
                    .or_insert_with(|| (ll.lineno, ll.text.chars().take(70).collect()));
            }
        }
    }

    for (file, found) in &counts {
        if let Some(prefix) = output_prefixes.iter().find(|p| file.starts_with(*p)) {
            let (lineno, text) = &first_site[file];
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "{file}:{lineno}: hash container on an output dataflow \
                     path ({prefix} feeds report/export/checkpoint/trace \
                     writers): `{text}` — iteration order is seed-dependent; \
                     use BTreeMap/BTreeSet or sort explicitly before emission \
                     ({found} token(s) in the file)"
                ),
            ));
            continue;
        }
        let allowed = allow.iter().find(|a| a.file == file).map_or(0, |a| a.count);
        if *found > allowed {
            let (lineno, text) = &first_site[file];
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "{file}:{lineno}: {found} hash-container token(s) but the \
                     allowlist permits {allowed} (first: `{text}`) — use an \
                     ordered container or budget it in \
                     sdlint::determinism::HASH_ALLOW with a justification \
                     for why iteration order cannot reach output"
                ),
            ));
        } else if *found < allowed {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "{file}: allowlist permits {allowed} hash-container \
                     token(s) but only {found} remain — ratchet HASH_ALLOW \
                     down so the burn-down sticks"
                ),
            ));
        }
    }
    for a in allow {
        if !counts.contains_key(a.file) {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "{}: allowlisted for {} hash-container token(s) but none \
                     found (file clean or gone) — remove the stale HASH_ALLOW \
                     entry",
                    a.file, a.count,
                ),
            ));
        }
    }

    findings
}

/// Audit the workspace rooted at `repo_root` against the real tables.
pub fn check(repo_root: &Path) -> Vec<Finding> {
    let sources = match scan::workspace_sources(repo_root, true) {
        Ok(s) => s,
        Err(e) => return vec![Finding::new(CHECKER, e)],
    };
    check_tables(&sources, OUTPUT_PREFIXES, HASH_ALLOW)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_passes_determinism_lint() {
        let findings = check(&crate::default_repo_root());
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn hash_on_output_path_is_denied_without_allowlist() {
        let needle = &hash_needles()[0];
        let src = scan::SourceFile {
            rel: "crates/sdchecker/src/report.rs".into(),
            body: format!("let m: {needle}<u32, u32> = {needle}::new();\n"),
        };
        // Even an allowlist entry cannot save an output-path file.
        let allow = [HashAllow {
            file: "crates/sdchecker/src/report.rs",
            count: 2,
            justification: "nope",
        }];
        let findings = check_tables(&[src], OUTPUT_PREFIXES, &allow);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("output dataflow path")));
        assert!(findings.iter().any(|f| f.message.contains("no allowlist")));
    }

    #[test]
    fn non_output_hash_needs_budget() {
        let needle = &hash_needles()[1];
        let src = scan::SourceFile {
            rel: "crates/simkit/src/engine.rs".into(),
            body: format!("let s: {needle}<u32> = {needle}::new();\n"),
        };
        let findings = check_tables(&[src], OUTPUT_PREFIXES, &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("allowlist permits 0"));
    }
}
