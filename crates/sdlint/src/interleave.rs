//! Checker 8: exhaustive interleaving model check.
//!
//! The textual audits ([`crate::locks`], [`crate::atomics`]) police
//! *structure* — what is locked, what orderings are used. This module
//! checks *behavior*: the three real concurrent protocols in the
//! workspace are abstracted into small per-thread op models and every
//! interleaving is explored exhaustively (depth bounded only by the
//! models' finite programs, with full state deduplication), the
//! modelcheck.rs idiom scaled up from single-threaded configurations to
//! true thread interleavings:
//!
//! * [`RegistryModel`] — the sharded metrics registry
//!   (`obs::recorder`): writer threads increment per-shard counters
//!   under per-shard locks while a snapshot thread walks the shards.
//!   Checked: no torn shard read, and the published snapshot total is
//!   *linearizable* — bounded below by the work completed when the
//!   snapshot began and above by the work completed when it published.
//! * [`ParMergeModel`] — the `logmodel::par` worker-pool handoff:
//!   workers pop indices from a shared cursor under a queue lock and
//!   retire results into per-index slots. Checked: exactly-once
//!   retirement of every item under every schedule (the property that
//!   makes the k-way merge's input-order restoration deterministic).
//! * [`DaemonModel`] — the `sdcheckerd` square: poll loop publishing a
//!   two-word report under the report lock, HTTP thread snapshotting it
//!   under the same lock, checkpoint writer sampling progress, and a
//!   SIGTERM arriving at every possible point. Checked: HTTP snapshots
//!   are never torn and never go backwards, the checkpoint never runs
//!   ahead of processing, and shutdown *always* drains to a final
//!   report equal to everything processed.
//!
//! Each model has a mutation constructor (`torn_reader`,
//! `unlocked_pop`, `torn_publish`) that removes one synchronization
//! step; the test suite proves the explorer catches each seeded bug
//! with a diagnostic naming the model and the broken property — so the
//! green run certifies the checker, not just the code.
//!
//! States are plain `Vec<u64>` words; deduplication uses a `BTreeSet`
//! (this crate is under the determinism lint's output prefix, so no
//! hash containers here either).

use std::collections::BTreeSet;

use crate::Finding;

const CHECKER: &str = "interleave";

/// An abstract concurrent protocol: a fixed thread count, an initial
/// state, a per-thread successor function, and safety checks.
pub trait Model {
    fn name(&self) -> &'static str;
    fn threads(&self) -> usize;
    fn initial(&self) -> Vec<u64>;
    /// Enabled successor states for `tid` from `state` (empty when the
    /// thread is blocked or finished).
    fn step(&self, state: &[u64], tid: usize) -> Vec<Vec<u64>>;
    /// A safety violation recorded in `state`, if any.
    fn violation(&self, state: &[u64]) -> Option<String>;
    /// Checked at terminal states (no thread has an enabled step).
    fn terminal_ok(&self, state: &[u64]) -> Result<(), String>;
}

/// Exploration statistics, surfaced in the CLI/CI output so state-space
/// blowup is visible at a glance.
#[derive(Debug, Clone)]
pub struct Stats {
    pub model: &'static str,
    /// Distinct states visited.
    pub states: u64,
    /// Transitions taken (successors generated).
    pub transitions: u64,
    /// Terminal states checked.
    pub terminals: u64,
    /// True when the `max_states` cap stopped exploration — the run is
    /// no longer exhaustive and is reported as a finding.
    pub capped: bool,
}

/// Exhaustively explore `model`, depth-first with full state
/// deduplication, up to `max_states` distinct states.
pub fn explore(model: &dyn Model, max_states: u64) -> (Vec<Finding>, Stats) {
    let mut stats = Stats {
        model: model.name(),
        states: 0,
        transitions: 0,
        terminals: 0,
        capped: false,
    };
    let mut findings = Vec::new();
    let mut seen_messages: BTreeSet<String> = BTreeSet::new();
    let mut report = |msg: String| {
        // Deduplicate diagnostics: one message per distinct violation,
        // capped so a broken model cannot flood the output.
        if seen_messages.len() < 5 && seen_messages.insert(msg.clone()) {
            findings.push(Finding::new(CHECKER, format!("[{}] {msg}", model.name())));
        }
    };

    let mut visited: BTreeSet<Vec<u64>> = BTreeSet::new();
    let mut stack: Vec<Vec<u64>> = vec![model.initial()];
    visited.insert(model.initial());

    while let Some(state) = stack.pop() {
        stats.states = visited.len() as u64;
        if visited.len() as u64 > max_states {
            stats.capped = true;
            report(format!(
                "state space exceeded the {max_states}-state bound — \
                 exploration is no longer exhaustive; shrink the model or \
                 raise the bound deliberately"
            ));
            break;
        }
        if let Some(v) = model.violation(&state) {
            report(v);
            continue; // don't explore past a broken state
        }
        let mut any = false;
        for tid in 0..model.threads() {
            for succ in model.step(&state, tid) {
                any = true;
                stats.transitions += 1;
                if visited.insert(succ.clone()) {
                    stack.push(succ);
                }
            }
        }
        if !any {
            stats.terminals += 1;
            if let Err(e) = model.terminal_ok(&state) {
                report(e);
            }
        }
    }
    stats.states = visited.len() as u64;
    (findings, stats)
}

// ---------------------------------------------------------------------------
// Model 1: sharded metrics registry record/merge/snapshot.
// ---------------------------------------------------------------------------

/// `obs::recorder` abstraction: `writers` threads each perform `incrs`
/// locked increments on their shard (`writer % shards`); shard values
/// are two mirrored words written one at a time so a reader that
/// bypassed the lock could observe a torn pair. One snapshot thread
/// walks the shards and publishes the total.
pub struct RegistryModel {
    writers: usize,
    incrs: u64,
    shards: usize,
    /// Mutation: the snapshot thread skips the per-shard lock.
    reader_locks: bool,
}

// Violation codes stored in the model's last state word.
const V_TORN: u64 = 1;
const V_LINEARIZABILITY: u64 = 2;
const V_MONOTONIC: u64 = 3;

impl RegistryModel {
    pub fn real() -> RegistryModel {
        RegistryModel {
            writers: 2,
            incrs: 2,
            shards: 2,
            reader_locks: true,
        }
    }

    /// Seeded bug: snapshot reads shard words without taking the lock.
    pub fn torn_reader() -> RegistryModel {
        RegistryModel {
            reader_locks: false,
            ..RegistryModel::real()
        }
    }

    // State layout indices.
    fn lock(&self, s: usize) -> usize {
        s
    }
    fn word_a(&self, s: usize) -> usize {
        self.shards + 2 * s
    }
    fn word_b(&self, s: usize) -> usize {
        self.shards + 2 * s + 1
    }
    fn w_pc(&self, w: usize) -> usize {
        3 * self.shards + 2 * w
    }
    fn w_done(&self, w: usize) -> usize {
        3 * self.shards + 2 * w + 1
    }
    fn rb(&self) -> usize {
        3 * self.shards + 2 * self.writers
    }
    fn viol(&self) -> usize {
        self.rb() + 6
    }

    fn committed_sum(&self, st: &[u64]) -> u64 {
        (0..self.shards).map(|s| st[self.word_b(s)]).sum()
    }
}

impl Model for RegistryModel {
    fn name(&self) -> &'static str {
        "registry-snapshot"
    }

    fn threads(&self) -> usize {
        self.writers + 1
    }

    fn initial(&self) -> Vec<u64> {
        vec![0; self.viol() + 1]
    }

    fn step(&self, st: &[u64], tid: usize) -> Vec<Vec<u64>> {
        let mut out = Vec::new();
        if tid < self.writers {
            let w = tid;
            let s = w % self.shards;
            let pc = st[self.w_pc(w)];
            match pc {
                0 if st[self.w_done(w)] < self.incrs && st[self.lock(s)] == 0 => {
                    let mut n = st.to_vec();
                    n[self.lock(s)] = (w + 1) as u64;
                    n[self.w_pc(w)] = 1;
                    out.push(n);
                }
                1 => {
                    let mut n = st.to_vec();
                    n[self.word_a(s)] += 1;
                    n[self.w_pc(w)] = 2;
                    out.push(n);
                }
                2 => {
                    let mut n = st.to_vec();
                    n[self.word_b(s)] += 1;
                    n[self.w_pc(w)] = 3;
                    out.push(n);
                }
                3 => {
                    let mut n = st.to_vec();
                    n[self.lock(s)] = 0;
                    n[self.w_done(w)] += 1;
                    n[self.w_pc(w)] = 0;
                    out.push(n);
                }
                _ => {}
            }
            return out;
        }
        // Snapshot thread: rb+0 pc, +1 shard cursor, +2 read-a temp,
        // +3 partial sum, +4 low bound, +5 published (+1 encoded).
        let rb = self.rb();
        let pc = st[rb];
        match pc {
            0 => {
                let mut n = st.to_vec();
                n[rb + 4] = self.committed_sum(st);
                n[rb] = 1;
                out.push(n);
            }
            1 => {
                let cur = st[rb + 1] as usize;
                if cur < self.shards {
                    if self.reader_locks {
                        if st[self.lock(cur)] == 0 {
                            let mut n = st.to_vec();
                            n[self.lock(cur)] = (self.writers + 1) as u64;
                            n[rb] = 2;
                            out.push(n);
                        }
                    } else {
                        let mut n = st.to_vec();
                        n[rb] = 2;
                        out.push(n);
                    }
                } else {
                    let mut n = st.to_vec();
                    let partial = n[rb + 3];
                    let low = n[rb + 4];
                    let high = self.committed_sum(st);
                    if !(low <= partial && partial <= high) {
                        n[self.viol()] = V_LINEARIZABILITY;
                    }
                    n[rb + 5] = partial + 1;
                    n[rb] = 4;
                    out.push(n);
                }
            }
            2 => {
                let cur = st[rb + 1] as usize;
                let mut n = st.to_vec();
                n[rb + 2] = st[self.word_a(cur)];
                n[rb] = 3;
                out.push(n);
            }
            3 => {
                let cur = st[rb + 1] as usize;
                let mut n = st.to_vec();
                let b = st[self.word_b(cur)];
                if n[rb + 2] != b {
                    n[self.viol()] = V_TORN;
                }
                n[rb + 3] += b;
                if self.reader_locks {
                    n[self.lock(cur)] = 0;
                }
                n[rb + 1] += 1;
                n[rb] = 1;
                out.push(n);
            }
            _ => {}
        }
        out
    }

    fn violation(&self, st: &[u64]) -> Option<String> {
        match st[self.viol()] {
            V_TORN => Some(
                "torn snapshot: the reader observed a half-written shard \
                 (mirror words disagree) — shard reads must hold the shard \
                 lock"
                    .into(),
            ),
            V_LINEARIZABILITY => Some(
                "snapshot not linearizable: published total falls outside \
                 [work at snapshot start, work at publish]"
                    .into(),
            ),
            _ => None,
        }
    }

    fn terminal_ok(&self, st: &[u64]) -> Result<(), String> {
        let rb = self.rb();
        if st[rb + 5] == 0 {
            return Err("snapshot thread never published".into());
        }
        let want = self.writers as u64 * self.incrs;
        if self.committed_sum(st) != want {
            return Err(format!(
                "writers retired {} increments, expected {want}",
                self.committed_sum(st),
            ));
        }
        for s in 0..self.shards {
            if st[self.word_a(s)] != st[self.word_b(s)] {
                return Err(format!("shard {s} left torn at termination"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Model 2: par pipeline k-way merge handoff.
// ---------------------------------------------------------------------------

/// `logmodel::par` abstraction: `workers` threads pop indices from a
/// shared cursor under a queue lock and retire each item into its
/// per-index slot; the merge then reads the slots in index order, so
/// exactly-once retirement is exactly determinism of the merged output.
pub struct ParMergeModel {
    items: usize,
    workers: usize,
    /// Mutation: the pop is split read/advance without the lock.
    locked_pop: bool,
}

impl ParMergeModel {
    pub fn real() -> ParMergeModel {
        ParMergeModel {
            items: 4,
            workers: 2,
            locked_pop: true,
        }
    }

    /// Seeded bug: two workers can read the same cursor value.
    pub fn unlocked_pop() -> ParMergeModel {
        ParMergeModel {
            locked_pop: false,
            ..ParMergeModel::real()
        }
    }

    // Layout: 0 qlock, 1 cursor, then per worker [pc, held, tmp], then
    // per item a retire count.
    fn w_base(&self, w: usize) -> usize {
        2 + 3 * w
    }
    fn count(&self, i: usize) -> usize {
        2 + 3 * self.workers + i
    }
}

impl Model for ParMergeModel {
    fn name(&self) -> &'static str {
        "par-merge-handoff"
    }

    fn threads(&self) -> usize {
        self.workers
    }

    fn initial(&self) -> Vec<u64> {
        vec![0; 2 + 3 * self.workers + self.items]
    }

    fn step(&self, st: &[u64], tid: usize) -> Vec<Vec<u64>> {
        let b = self.w_base(tid);
        let pc = st[b];
        let mut out = Vec::new();
        if self.locked_pop {
            match pc {
                0 if st[0] == 0 => {
                    let mut n = st.to_vec();
                    n[0] = (tid + 1) as u64;
                    n[b] = 1;
                    out.push(n);
                }
                1 => {
                    let mut n = st.to_vec();
                    if st[1] < self.items as u64 {
                        n[b + 1] = st[1] + 1;
                        n[1] += 1;
                        n[b] = 2;
                    } else {
                        n[b] = 9; // drained: halt after release
                    }
                    n[0] = 0;
                    out.push(n);
                }
                2 => {
                    let mut n = st.to_vec();
                    let item = (st[b + 1] - 1) as usize;
                    n[self.count(item)] += 1;
                    n[b + 1] = 0;
                    n[b] = 0;
                    out.push(n);
                }
                _ => {}
            }
        } else {
            match pc {
                // Unsynchronized read-then-advance: the classic lost
                // handoff.
                0 if st[1] < self.items as u64 => {
                    let mut n = st.to_vec();
                    n[b + 2] = st[1];
                    n[b] = 1;
                    out.push(n);
                }
                1 => {
                    let mut n = st.to_vec();
                    n[b + 1] = st[b + 2] + 1;
                    n[1] = st[b + 2] + 1;
                    n[b] = 2;
                    out.push(n);
                }
                2 => {
                    let mut n = st.to_vec();
                    let item = (st[b + 1] - 1) as usize;
                    n[self.count(item)] += 1;
                    n[b + 1] = 0;
                    n[b] = 0;
                    out.push(n);
                }
                _ => {}
            }
        }
        out
    }

    fn violation(&self, _st: &[u64]) -> Option<String> {
        None // all properties are terminal-state properties
    }

    fn terminal_ok(&self, st: &[u64]) -> Result<(), String> {
        for i in 0..self.items {
            let c = st[self.count(i)];
            if c != 1 {
                return Err(format!(
                    "item {i} retired {c} times — exactly-once retirement \
                     violated, the k-way merge would {} it",
                    if c == 0 { "drop" } else { "duplicate" },
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Model 3: daemon poll ↔ HTTP ↔ checkpoint ↔ SIGTERM square.
// ---------------------------------------------------------------------------

/// `sdcheckerd` abstraction. Four threads:
///
/// * poll loop — processes up to `batches` batches, publishing a
///   two-word report (`rep_a`, `rep_b`) under the report lock after
///   each, then on shutdown drains: publishes the final report and sets
///   `drained`;
/// * HTTP — takes the lock and snapshots both report words `reads`
///   times, asserting the pair is consistent and never regresses;
/// * checkpoint writer — samples progress under the lock `writes`
///   times;
/// * SIGTERM — flips the shutdown flag at an arbitrary point.
pub struct DaemonModel {
    batches: u64,
    reads: u64,
    writes: u64,
    /// Mutation: the poll loop publishes without taking the lock.
    locked_publish: bool,
}

// Daemon state layout.
const D_LOCK: usize = 0;
const D_EVENTS: usize = 1;
const D_REP_A: usize = 2;
const D_REP_B: usize = 3;
const D_CKPT: usize = 4;
const D_SHUTDOWN: usize = 5;
const D_DRAINED: usize = 6;
const D_POLL_PC: usize = 7;
const D_BATCHES: usize = 8;
const D_HTTP_PC: usize = 9;
const D_READS: usize = 10;
const D_HTTP_TMP: usize = 11;
const D_HTTP_LAST: usize = 12;
const D_CKPT_PC: usize = 13;
const D_WRITES: usize = 14;
const D_SIG_PC: usize = 15;
const D_VIOL: usize = 16;
const D_WORDS: usize = 17;

impl DaemonModel {
    pub fn real() -> DaemonModel {
        DaemonModel {
            batches: 4,
            reads: 4,
            writes: 3,
            locked_publish: true,
        }
    }

    /// Seeded bug: report words are published outside the lock, so an
    /// HTTP snapshot can land between the two writes.
    pub fn torn_publish() -> DaemonModel {
        DaemonModel {
            locked_publish: false,
            ..DaemonModel::real()
        }
    }
}

impl Model for DaemonModel {
    fn name(&self) -> &'static str {
        "daemon-shutdown-drain"
    }

    fn threads(&self) -> usize {
        4
    }

    fn initial(&self) -> Vec<u64> {
        vec![0; D_WORDS]
    }

    fn step(&self, st: &[u64], tid: usize) -> Vec<Vec<u64>> {
        let mut out = Vec::new();
        match tid {
            // Poll loop.
            0 => match st[D_POLL_PC] {
                0 => {
                    if st[D_SHUTDOWN] == 1 {
                        let mut n = st.to_vec();
                        n[D_POLL_PC] = if self.locked_publish { 5 } else { 6 };
                        out.push(n);
                    } else if st[D_BATCHES] < self.batches {
                        let mut n = st.to_vec();
                        n[D_EVENTS] += 1;
                        n[D_BATCHES] += 1;
                        n[D_POLL_PC] = if self.locked_publish { 1 } else { 2 };
                        out.push(n);
                    }
                    // else: blocked waiting for shutdown (tail -f idle).
                }
                1 if st[D_LOCK] == 0 => {
                    let mut n = st.to_vec();
                    n[D_LOCK] = 1;
                    n[D_POLL_PC] = 2;
                    out.push(n);
                }
                2 => {
                    let mut n = st.to_vec();
                    n[D_REP_A] = st[D_EVENTS];
                    n[D_POLL_PC] = 3;
                    out.push(n);
                }
                3 => {
                    let mut n = st.to_vec();
                    n[D_REP_B] = st[D_EVENTS];
                    n[D_POLL_PC] = if self.locked_publish { 4 } else { 0 };
                    out.push(n);
                }
                4 => {
                    let mut n = st.to_vec();
                    n[D_LOCK] = 0;
                    n[D_POLL_PC] = 0;
                    out.push(n);
                }
                // Drain: final publish + drained flag.
                5 if st[D_LOCK] == 0 => {
                    let mut n = st.to_vec();
                    n[D_LOCK] = 1;
                    n[D_POLL_PC] = 6;
                    out.push(n);
                }
                6 => {
                    let mut n = st.to_vec();
                    n[D_REP_A] = st[D_EVENTS];
                    n[D_POLL_PC] = 7;
                    out.push(n);
                }
                7 => {
                    let mut n = st.to_vec();
                    n[D_REP_B] = st[D_EVENTS];
                    n[D_POLL_PC] = 8;
                    out.push(n);
                }
                8 => {
                    let mut n = st.to_vec();
                    if self.locked_publish {
                        n[D_LOCK] = 0;
                    }
                    n[D_DRAINED] = 1;
                    n[D_POLL_PC] = 9;
                    out.push(n);
                }
                _ => {}
            },
            // HTTP snapshot thread.
            1 => match st[D_HTTP_PC] {
                0 if st[D_READS] < self.reads && st[D_LOCK] == 0 => {
                    let mut n = st.to_vec();
                    n[D_LOCK] = 2;
                    n[D_HTTP_PC] = 1;
                    out.push(n);
                }
                1 => {
                    let mut n = st.to_vec();
                    n[D_HTTP_TMP] = st[D_REP_A];
                    n[D_HTTP_PC] = 2;
                    out.push(n);
                }
                2 => {
                    let mut n = st.to_vec();
                    if st[D_HTTP_TMP] != st[D_REP_B] {
                        n[D_VIOL] = V_TORN;
                    } else if st[D_REP_B] < st[D_HTTP_LAST] {
                        n[D_VIOL] = V_MONOTONIC;
                    }
                    n[D_HTTP_LAST] = st[D_REP_B];
                    n[D_LOCK] = 0;
                    n[D_READS] += 1;
                    n[D_HTTP_PC] = 0;
                    out.push(n);
                }
                _ => {}
            },
            // Checkpoint writer.
            2 => match st[D_CKPT_PC] {
                0 if st[D_WRITES] < self.writes && st[D_LOCK] == 0 => {
                    let mut n = st.to_vec();
                    n[D_LOCK] = 3;
                    n[D_CKPT_PC] = 1;
                    out.push(n);
                }
                1 => {
                    let mut n = st.to_vec();
                    n[D_CKPT] = st[D_EVENTS];
                    n[D_LOCK] = 0;
                    n[D_WRITES] += 1;
                    n[D_CKPT_PC] = 0;
                    out.push(n);
                }
                _ => {}
            },
            // SIGTERM.
            3 if st[D_SIG_PC] == 0 => {
                let mut n = st.to_vec();
                n[D_SHUTDOWN] = 1;
                n[D_SIG_PC] = 1;
                out.push(n);
            }
            _ => {}
        }
        out
    }

    fn violation(&self, st: &[u64]) -> Option<String> {
        match st[D_VIOL] {
            V_TORN => Some(
                "torn snapshot: HTTP read rep_a != rep_b — the report's two \
                 words were observed mid-publish; publishing must hold the \
                 report lock"
                    .into(),
            ),
            V_MONOTONIC => Some(
                "HTTP snapshot went backwards — a later read observed an \
                 older report"
                    .into(),
            ),
            _ => None,
        }
    }

    fn terminal_ok(&self, st: &[u64]) -> Result<(), String> {
        if st[D_DRAINED] != 1 {
            return Err("shutdown did not drain: a terminal state was reached with \
                 no final report published"
                .into());
        }
        if st[D_REP_A] != st[D_EVENTS] || st[D_REP_B] != st[D_EVENTS] {
            return Err(format!(
                "final report ({}, {}) != events processed ({}) — work was \
                 lost between the last batch and the drain",
                st[D_REP_A], st[D_REP_B], st[D_EVENTS],
            ));
        }
        if st[D_CKPT] > st[D_EVENTS] {
            return Err(format!(
                "checkpoint ({}) ran ahead of processing ({})",
                st[D_CKPT], st[D_EVENTS],
            ));
        }
        Ok(())
    }
}

/// State cap: far above the real models' sizes, so hitting it means a
/// model edit exploded the space rather than normal growth.
pub const MAX_STATES: u64 = 2_000_000;

/// Run every real model exhaustively; findings plus per-model stats.
pub fn check_with_stats() -> (Vec<Finding>, Vec<Stats>) {
    let mut findings = Vec::new();
    let mut stats = Vec::new();
    let registry = RegistryModel::real();
    let par = ParMergeModel::real();
    let daemon = DaemonModel::real();
    let models: [&dyn Model; 3] = [&registry, &par, &daemon];
    for m in models {
        let (f, s) = explore(m, MAX_STATES);
        findings.extend(f);
        stats.push(s);
    }
    (findings, stats)
}

/// Findings-only entry point, mirroring the other checkers.
pub fn check() -> Vec<Finding> {
    check_with_stats().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_models_pass_exhaustively() {
        let (findings, stats) = check_with_stats();
        assert!(findings.is_empty(), "{findings:#?}");
        for s in &stats {
            assert!(!s.capped, "{} hit the state cap", s.model);
            assert!(s.terminals > 0, "{} never terminated", s.model);
        }
    }

    #[test]
    fn daemon_model_is_nontrivial() {
        let (_, stats) = explore(&DaemonModel::real(), MAX_STATES);
        assert!(
            stats.states > 10_000,
            "daemon model explored only {} states — the interleaving \
             coverage claim needs > 10^4",
            stats.states,
        );
    }

    #[test]
    fn torn_reader_is_caught() {
        let (findings, _) = explore(&RegistryModel::torn_reader(), MAX_STATES);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("[registry-snapshot]")
                    && f.message.contains("torn snapshot")),
            "{findings:#?}"
        );
    }

    #[test]
    fn unlocked_pop_is_caught() {
        let (findings, _) = explore(&ParMergeModel::unlocked_pop(), MAX_STATES);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("[par-merge-handoff]")
                    && f.message.contains("exactly-once")),
            "{findings:#?}"
        );
    }

    #[test]
    fn torn_publish_is_caught() {
        let (findings, _) = explore(&DaemonModel::torn_publish(), MAX_STATES);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("[daemon-shutdown-drain]")
                    && f.message.contains("torn snapshot")),
            "{findings:#?}"
        );
    }
}
