//! Shared source-scanning plumbing for the text-based checkers.
//!
//! The panic, lock, atomics, and determinism audits all walk the same
//! workspace sources with the same conventions: `#[cfg(test)] mod`
//! blocks are stripped by brace matching, files pulled in via
//! `#[cfg(test)] mod name;` are skipped entirely, and comment-only
//! lines are ignored. This module centralizes that walk, plus a
//! *logical-line* view that joins multi-line method chains
//! (`shared\n    .health\n    .lock()` becomes one line) so substring
//! needles like `.health.lock(` match regardless of rustfmt's wrapping.
//!
//! These scanners are deliberately textual, not parsed: string literals
//! containing a needle count against the file, which keeps the failure
//! mode noisy rather than silent.

use std::path::Path;

/// One workspace source file, test-stripped.
pub struct SourceFile {
    /// Repo-relative path with forward slashes, e.g.
    /// `crates/obs/src/recorder.rs`.
    pub rel: String,
    /// Source with `#[cfg(test)]` blocks removed.
    pub body: String,
}

/// A source line with dot-chains joined back onto it, plus the original
/// 1-based line number of its first physical line.
pub struct LogicalLine {
    pub lineno: usize,
    pub text: String,
}

/// Strip `#[cfg(test)] mod ... { ... }` blocks from `source` by brace
/// matching, and collect the names of `#[cfg(test)] mod name;` file
/// references so the caller can skip those files.
pub fn strip_test_blocks(source: &str) -> (String, Vec<String>) {
    let mut out = String::with_capacity(source.len());
    let mut test_mod_files = Vec::new();
    let mut lines = source.lines().peekable();
    while let Some(line) = lines.next() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            // The attribute may gate a `mod x;` (external file), a
            // `mod x { ... }` block, or a single item; consume
            // accordingly.
            let Some(next) = lines.peek() else { break };
            let trimmed = next.trim_start();
            if trimmed.starts_with("mod ") && trimmed.trim_end().ends_with(';') {
                let name = trimmed
                    .trim_end()
                    .trim_end_matches(';')
                    .trim_start_matches("mod ")
                    .trim();
                test_mod_files.push(format!("{name}.rs"));
                lines.next();
                continue;
            }
            // Block or item: swallow lines until braces balance. Depth
            // only starts counting once the first `{` appears, so a
            // one-line gated item without braces is consumed as-is.
            let mut depth: i64 = 0;
            let mut opened = false;
            for body in lines.by_ref() {
                for ch in body.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                if !opened {
                    break;
                }
            }
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    (out, test_mod_files)
}

/// Recursively collect `.rs` files under `dir`. `include_binaries`
/// controls whether `bin/` directories and `main.rs` are kept — the
/// panic audit exempts binaries (a CLI may die loudly), while the
/// concurrency audits must cover them (the daemon lives in `bin/`).
fn collect_rs_files(
    dir: &Path,
    include_binaries: bool,
    out: &mut Vec<std::path::PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "bin" && !include_binaries {
                continue;
            }
            collect_rs_files(&path, include_binaries, out)?;
        } else if name.ends_with(".rs") && (include_binaries || name != "main.rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walk every crate's `src` tree under `repo_root/crates`, returning
/// test-stripped sources sorted by path. Errors come back as plain
/// strings for the caller to wrap into its own findings.
pub fn workspace_sources(
    repo_root: &Path,
    include_binaries: bool,
) -> Result<Vec<SourceFile>, String> {
    let crates_dir = repo_root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut out = Vec::new();
    for crate_dir in &crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, include_binaries, &mut files)
            .map_err(|e| format!("cannot walk {}: {e}", src.display()))?;
        files.sort();
        // First pass: find files that are test-only (`#[cfg(test)] mod x;`).
        let mut stripped: Vec<(std::path::PathBuf, String)> = Vec::new();
        let mut test_files: Vec<String> = Vec::new();
        for f in &files {
            let text = std::fs::read_to_string(f)
                .map_err(|e| format!("cannot read {}: {e}", f.display()))?;
            let (body, mods) = strip_test_blocks(&text);
            test_files.extend(mods);
            stripped.push((f.clone(), body));
        }
        for (f, body) in stripped {
            let fname = f
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if test_files.contains(&fname) {
                continue;
            }
            let rel = f
                .strip_prefix(repo_root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile { rel, body });
        }
    }
    Ok(out)
}

/// Split a body into logical lines: a physical line whose successor
/// (after trimming) starts with `.` absorbs it, so rustfmt-wrapped
/// method chains match single-line substring needles. Comment-only
/// lines are dropped.
pub fn logical_lines(body: &str) -> Vec<LogicalLine> {
    let mut out: Vec<LogicalLine> = Vec::new();
    for (i, raw) in body.lines().enumerate() {
        let trimmed = raw.trim();
        if trimmed.starts_with("//") {
            continue;
        }
        let continues = trimmed.starts_with('.');
        if continues {
            if let Some(last) = out.last_mut() {
                last.text.push_str(trimmed);
                continue;
            }
        }
        out.push(LogicalLine {
            lineno: i + 1,
            text: trimmed.to_string(),
        });
    }
    out
}

/// Net brace depth change contributed by one line (string-literal
/// blind, like the rest of the scanner — noisy over silent).
pub fn brace_delta(line: &str) -> i64 {
    let mut d = 0i64;
    for ch in line.chars() {
        match ch {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_lines_join_method_chains() {
        let body = "let x = shared\n    .health\n    .lock()\n    .unwrap();\nlet y = 2;\n";
        let lines = logical_lines(body);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].text, "let x = shared.health.lock().unwrap();");
        assert_eq!(lines[0].lineno, 1);
        assert_eq!(lines[1].lineno, 5);
    }

    #[test]
    fn comment_lines_are_dropped_not_joined() {
        let body = "// .lock() in a comment\nlet a = 1;\n";
        let lines = logical_lines(body);
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].text.contains("lock"));
    }

    #[test]
    fn brace_delta_counts_net() {
        assert_eq!(brace_delta("if x { y } else {"), 1);
        assert_eq!(brace_delta("}"), -1);
        assert_eq!(brace_delta("let z = 3;"), 0);
    }

    #[test]
    fn workspace_walk_finds_this_file() {
        let sources = workspace_sources(&crate::default_repo_root(), true).unwrap();
        assert!(sources.iter().any(|s| s.rel == "crates/sdlint/src/scan.rs"));
        // Binaries included when asked for...
        assert!(sources
            .iter()
            .any(|s| s.rel == "crates/sdchecker/src/bin/sdcheckerd.rs"));
        // ...and excluded when not.
        let lib_only = workspace_sources(&crate::default_repo_root(), false).unwrap();
        assert!(!lib_only
            .iter()
            .any(|s| s.rel.contains("/bin/") || s.rel.ends_with("main.rs")));
    }
}
