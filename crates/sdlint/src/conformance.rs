//! Checker 1: schema conformance between emitted templates and
//! extraction rules.
//!
//! Every template is instantiated with sample captures and pushed
//! through every shape-based rule, with the rule's family and class
//! gates applied — exactly the decision the extractor makes per log
//! line. The cross-check is bidirectional: templates must land on the
//! right number of rules, and rules must have emitters.

use logmodel::schema::{Disposition, MsgTemplate};
use sdchecker::schema::{MatchKind, PatternSpec};

use crate::Finding;

const CHECKER: &str = "conformance";

/// The rule whose shape most resembles `message`, rendered for a
/// diagnostic ("closest near-miss").
fn nearest_rule_text(rules: &[PatternSpec], message: &str) -> String {
    let mut best: Option<(&PatternSpec, f64)> = None;
    for r in rules {
        let score = match r.kind {
            MatchKind::Template(t) => logmodel::schema::template_affinity(t, message),
            MatchKind::Prefix(p) => logmodel::schema::template_affinity(p, message),
            MatchKind::Positional => continue,
        };
        if best.is_none_or(|(_, s)| score > s) {
            best = Some((r, score));
        }
    }
    match best {
        Some((r, score)) if score > 0.0 => format!(
            "closest rule: `{}` ({}), affinity {score:.2}",
            r.name,
            r.kind_text()
        ),
        _ => "no rule comes close".to_string(),
    }
}

/// Names of the shape-based rules that fire on a sample instantiation of
/// `t`.
fn firing_rules<'r>(t: &MsgTemplate, rules: &'r [PatternSpec]) -> Vec<&'r PatternSpec> {
    let sample = t.sample();
    rules
        .iter()
        .filter(|r| r.is_shape_based() && r.matches(t.family, t.class, &sample))
        .collect()
}

/// Cross-check `templates` (the emitted vocabulary) against `rules`
/// (the extraction table). Pure — mutation tests feed it broken tables.
pub fn check(templates: &[MsgTemplate], rules: &[PatternSpec]) -> Vec<Finding> {
    let mut findings = Vec::new();

    for t in templates {
        let sample = t.sample();
        let fired = firing_rules(t, rules);
        match t.disposition {
            Disposition::Event => match fired.len() {
                1 => {}
                0 => findings.push(Finding::new(
                    CHECKER,
                    format!(
                        "template `{}` ({}) matches no extraction rule: \
                         sample {sample:?} from {} falls through; {}",
                        t.name,
                        t.template,
                        t.file,
                        nearest_rule_text(rules, &sample)
                    ),
                )),
                _ => findings.push(Finding::new(
                    CHECKER,
                    format!(
                        "template `{}` ({}) is ambiguous: rules [{}] all match \
                         sample {sample:?} — shadowing hides which rule wins",
                        t.name,
                        t.template,
                        fired.iter().map(|r| r.name).collect::<Vec<_>>().join(", "),
                    ),
                )),
            },
            Disposition::Positional => {
                if !fired.is_empty() {
                    findings.push(Finding::new(
                        CHECKER,
                        format!(
                            "positionally-consumed template `{}` is also shape-matched \
                             by rule `{}` — the event would be double-counted",
                            t.name, fired[0].name
                        ),
                    ));
                }
                let has_positional = rules
                    .iter()
                    .any(|r| r.family == t.family && matches!(r.kind, MatchKind::Positional));
                if !has_positional {
                    findings.push(Finding::new(
                        CHECKER,
                        format!(
                            "template `{}` relies on a positional rule for family {} \
                             but the table has none",
                            t.name,
                            t.family.name()
                        ),
                    ));
                }
            }
            Disposition::Noise => {
                if let Some(r) = fired.first() {
                    findings.push(Finding::new(
                        CHECKER,
                        format!(
                            "noise template `{}` ({}) from {} is matched by rule `{}` — \
                             noise would be misread as scheduling evidence",
                            t.name, t.template, t.file, r.name
                        ),
                    ));
                }
            }
        }
    }

    // Reverse direction: every shape-based rule needs an emitter (an
    // Event-disposition template it fires on) or an explicit
    // external_only annotation; positional rules need a family that
    // actually has positionally-consumed templates.
    for r in rules {
        if r.external_only {
            continue;
        }
        let fed = match r.kind {
            MatchKind::Positional => templates
                .iter()
                .any(|t| t.family == r.family && t.disposition == Disposition::Positional),
            _ => templates.iter().any(|t| {
                t.disposition == Disposition::Event && r.matches(t.family, t.class, &t.sample())
            }),
        };
        if !fed {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "rule `{}` ({}) has no emitter: no simulator template feeds it — \
                     dead rule, or missing `external_only` annotation",
                    r.name,
                    r.kind_text()
                ),
            ));
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_tables_conform() {
        let findings = check(
            &crate::all_emitted_templates(),
            sdchecker::schema::patterns(),
        );
        assert!(findings.is_empty(), "{findings:#?}");
    }
}
