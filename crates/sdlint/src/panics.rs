//! Checker 3: panic/invariant audit.
//!
//! Scans every library source file under `crates/*/src` and denies
//! `unwrap`/`expect`/`panic!` (and friends) outside tests,
//! `debug_assert`-gated lines, and binaries. Remaining sites live in
//! `crates/sdlint/allowlist.txt` as a two-way ratchet: going over the
//! allowed count is a violation, and burning a site down without
//! shrinking the allowlist is flagged too, so the budget only moves
//! deliberately.
//!
//! This is a std-only textual scan, not a parse: `#[cfg(test)] mod`
//! blocks are stripped by brace matching, files pulled in via
//! `#[cfg(test)] mod name;` are skipped entirely, and comment-only
//! lines are ignored. That is deliberately conservative — string
//! literals containing a needle count against the file, which keeps
//! the scanner simple and the failure mode noisy rather than silent.

use std::collections::BTreeMap;
use std::path::Path;

use crate::scan;
use crate::Finding;

const CHECKER: &str = "panics";

/// The denied constructs. Assembled at runtime so this file does not
/// flag itself.
fn needles() -> Vec<String> {
    let bang = "!(";
    vec![
        format!(".{}()", "unwrap"),
        format!(".{}(", "expect"),
        format!("{}{bang}", "panic"),
        format!("{}{bang}", "unreachable"),
        format!("{}{bang}", "todo"),
        format!("{}{bang}", "unimplemented"),
    ]
}

/// Count denied sites in one file's (already test-stripped) source.
fn count_sites(source: &str, needles: &[String]) -> usize {
    let mut count = 0;
    for line in source.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") || trimmed.contains("debug_assert") {
            continue;
        }
        for n in needles {
            count += line.matches(n.as_str()).count();
        }
    }
    count
}

/// Parse `allowlist.txt`: `<repo-relative path> <count>` per line, `#`
/// comments and blank lines ignored.
fn parse_allowlist(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(count)) = (parts.next(), parts.next()) else {
            return Err(format!(
                "allowlist line {}: expected `<path> <count>`",
                i + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count {count:?}", i + 1))?;
        out.insert(path.to_string(), count);
    }
    Ok(out)
}

/// Audit panic sites across the workspace rooted at `repo_root`.
pub fn check(repo_root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let needles = needles();

    let allowlist_path = repo_root.join("crates/sdlint/allowlist.txt");
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match parse_allowlist(&text) {
            Ok(a) => a,
            Err(e) => {
                findings.push(Finding::new(CHECKER, e));
                return findings;
            }
        },
        Err(e) => {
            findings.push(Finding::new(
                CHECKER,
                format!("cannot read {}: {e}", allowlist_path.display()),
            ));
            return findings;
        }
    };

    // Library sources only: binaries may die loudly (exit-2 hygiene is
    // their own test), so `bin/` and `main.rs` are exempt.
    let sources = match scan::workspace_sources(repo_root, false) {
        Ok(s) => s,
        Err(e) => {
            findings.push(Finding::new(CHECKER, e));
            return findings;
        }
    };
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for sf in &sources {
        let n = count_sites(&sf.body, &needles);
        if n > 0 {
            *counts.entry(sf.rel.clone()).or_default() += n;
        }
    }

    // Two-way ratchet against the allowlist.
    for (file, found) in &counts {
        let allowed = allowlist.get(file).copied().unwrap_or(0);
        if *found > allowed {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "{file}: {found} panic sites (unwrap/expect/panic!/unreachable!/\
                     todo!/unimplemented!) but allowlist permits {allowed} — \
                     handle the error or raise the budget in crates/sdlint/allowlist.txt"
                ),
            ));
        } else if *found < allowed {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "{file}: allowlist permits {allowed} panic sites but only {found} \
                     remain — ratchet crates/sdlint/allowlist.txt down so the \
                     burn-down sticks"
                ),
            ));
        }
    }
    for (file, allowed) in &allowlist {
        if !counts.contains_key(file) {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "{file}: allowlisted for {allowed} panic sites but none found \
                     (file clean or gone) — remove the stale allowlist entry"
                ),
            ));
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_passes_audit() {
        let findings = check(&crate::default_repo_root());
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn test_blocks_are_stripped() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let (body, mods) = scan::strip_test_blocks(src);
        assert!(mods.is_empty());
        assert!(body.contains("fn a()"));
        assert!(body.contains("fn c()"));
        assert_eq!(count_sites(&body, &needles()), 0);
    }

    #[test]
    fn test_mod_file_refs_are_collected() {
        let src = "mod real;\n#[cfg(test)]\nmod tests_protocol;\n";
        let (_, mods) = scan::strip_test_blocks(src);
        assert_eq!(mods, vec!["tests_protocol.rs".to_string()]);
    }

    #[test]
    fn denied_sites_are_counted() {
        let needles = needles();
        let src = format!(
            "let a = x.{}();\n// x.{}();\ndebug_assert!(y.{}() > 0);\n",
            "unwrap", "unwrap", "unwrap"
        );
        assert_eq!(count_sites(&src, &needles), 1);
    }

    #[test]
    fn allowlist_parses_and_rejects_garbage() {
        let good = "# comment\ncrates/a/src/lib.rs 3\n\ncrates/b/src/x.rs 0\n";
        let map = parse_allowlist(good).unwrap();
        assert_eq!(map.get("crates/a/src/lib.rs"), Some(&3));
        assert!(parse_allowlist("crates/a/src/lib.rs notanumber").is_err());
        assert!(parse_allowlist("just-a-path").is_err());
    }
}
