//! Checker 6: atomics ordering audit.
//!
//! `Ordering::Relaxed` gives atomicity without any inter-thread
//! ordering: a Relaxed read may observe arbitrarily stale values, and a
//! Relaxed write publishes nothing about the memory written before it.
//! That is occasionally exactly right (pure ID counters, advisory fast
//! paths) and otherwise a heisenbug factory — so every Relaxed site in
//! the workspace must appear in the [`RELAXED_ALLOW`] table below with
//! a justification saying why no ordering is needed. The table is a
//! two-way ratchet like the panic allowlist: an unlisted Relaxed is an
//! error, and a listed site that no longer exists is a stale entry.
//!
//! Anything stronger (`Acquire`/`Release`/`AcqRel`/`SeqCst`) passes
//! without ceremony — the audit only polices the footgun. The scan
//! covers binaries too (the daemon's `SHUTDOWN` flag lives in `bin/`),
//! with `#[cfg(test)]` blocks stripped as usual.

use std::collections::BTreeMap;
use std::path::Path;

use crate::scan;
use crate::Finding;

const CHECKER: &str = "atomics";

/// One justified `Ordering::Relaxed` site.
#[derive(Debug, Clone, Copy)]
pub struct RelaxedSite {
    /// Repo-relative file the site lives in.
    pub file: &'static str,
    /// Substring identifying the site's logical line (the atomic op,
    /// not the Ordering token, so the entry reads like the call site).
    pub pattern: &'static str,
    /// How many logical lines `pattern` + Relaxed must match.
    pub sites: usize,
    /// Why Relaxed is sufficient — what would break (nothing) if the
    /// read saw a stale value or the write published late.
    pub justification: &'static str,
}

/// Every tolerated Relaxed site in the workspace.
pub const RELAXED_ALLOW: &[RelaxedSite] = &[
    RelaxedSite {
        file: "crates/obs/src/recorder.rs",
        pattern: "self.enabled.load(",
        sites: 1,
        justification: "hot-path recording gate: enable()/disable() store with \
                        SeqCst, and a reader that races the flip merely keeps or \
                        drops one sample — no data is published through the flag, \
                        so stale reads are harmless",
    },
    RelaxedSite {
        file: "crates/obs/src/recorder.rs",
        pattern: "self.next_tid.fetch_add(1,",
        sites: 1,
        justification: "thread-id allocation: the RMW is atomic regardless of \
                        ordering, which is all uniqueness needs; the id guards no \
                        other memory",
    },
];

/// The audited needle, assembled at runtime so this file's own table
/// and diagnostics do not count against the scan.
fn relaxed_needle() -> String {
    format!("Ordering::{}", "Relaxed")
}

/// Check the given sources against an allow table. Split out from
/// [`check`] so mutation tests can feed seeded sources or broken
/// tables.
pub fn check_table(sources: &[scan::SourceFile], allow: &[RelaxedSite]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let needle = relaxed_needle();
    let mut matched: BTreeMap<usize, usize> = BTreeMap::new();
    for sf in sources {
        for ll in scan::logical_lines(&sf.body) {
            let hits = ll.text.matches(needle.as_str()).count();
            if hits == 0 {
                continue;
            }
            let owners: Vec<usize> = allow
                .iter()
                .enumerate()
                .filter(|(_, s)| s.file == sf.rel && ll.text.contains(s.pattern))
                .map(|(i, _)| i)
                .collect();
            match owners.len() {
                0 => findings.push(Finding::new(
                    CHECKER,
                    format!(
                        "{}:{}: `{needle}` outside the allowlist: `{}` — a \
                         cross-thread value needs Acquire/Release (or SeqCst), \
                         or a sdlint::atomics::RELAXED_ALLOW entry justifying \
                         why no ordering is required",
                        sf.rel,
                        ll.lineno,
                        ll.text.chars().take(70).collect::<String>(),
                    ),
                )),
                1 => *matched.entry(owners[0]).or_default() += hits,
                _ => findings.push(Finding::new(
                    CHECKER,
                    format!(
                        "{}:{}: Relaxed site claimed by {} allowlist entries — \
                         patterns must be unambiguous",
                        sf.rel,
                        ll.lineno,
                        owners.len(),
                    ),
                )),
            }
        }
    }
    for (i, site) in allow.iter().enumerate() {
        let got = matched.get(&i).copied().unwrap_or(0);
        if got == 0 {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "RELAXED_ALLOW `{}` in {}: no `{needle}` site matches — \
                     the site was upgraded or removed; delete the stale entry",
                    site.pattern, site.file,
                ),
            ));
        } else if got != site.sites {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "RELAXED_ALLOW `{}` in {}: {} sites match but the entry \
                     declares {} — update the count so the ratchet stays exact",
                    site.pattern, site.file, got, site.sites,
                ),
            ));
        }
    }
    findings
}

/// Audit the workspace rooted at `repo_root` against the real table.
pub fn check(repo_root: &Path) -> Vec<Finding> {
    let sources = match scan::workspace_sources(repo_root, true) {
        Ok(s) => s,
        Err(e) => return vec![Finding::new(CHECKER, e)],
    };
    check_table(&sources, RELAXED_ALLOW)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_passes_atomics_audit() {
        let findings = check(&crate::default_repo_root());
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn unlisted_relaxed_is_flagged_with_site() {
        let needle = relaxed_needle();
        let src = scan::SourceFile {
            rel: "crates/x/src/lib.rs".into(),
            body: format!("let v = flag.load({needle});\n"),
        };
        let findings = check_table(&[src], &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("crates/x/src/lib.rs:1"));
        assert!(findings[0].message.contains("flag.load("));
    }

    #[test]
    fn stale_entry_is_flagged() {
        let src = scan::SourceFile {
            rel: "crates/x/src/lib.rs".into(),
            body: "let v = 1;\n".to_string(),
        };
        let allow = [RelaxedSite {
            file: "crates/x/src/lib.rs",
            pattern: "flag.load(",
            sites: 1,
            justification: "gone",
        }];
        let findings = check_table(&[src], &allow);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("stale"));
    }
}
