//! Checker 5: lock reification + order audit.
//!
//! Every `Mutex`/`RwLock`/`Condvar` in the workspace is reified into the
//! declarative [`LOCKS`] table below: its name, the file that owns it,
//! how its declaration and acquisition sites read, what state it guards,
//! and what happens when it is poisoned. A source scan cross-checks the
//! table both ways (the `sdchecker::schema::PATTERNS` idiom): a lock in
//! the source that no table entry claims is an error, and a table entry
//! whose lock is gone is a stale-entry error, so the inventory can never
//! silently drift.
//!
//! On top of the inventory the checker builds the static
//! *acquired-while-held* graph: lexically observed nestings (a guard
//! `let`-bound in a block with another lock acquired before the block
//! closes, or two acquisitions in one statement) plus declared
//! callback edges the text cannot see (e.g. the gauge registry holding
//! its entries lock while sampling closures that take the daemon's
//! `Shared` locks). Observed lexical edges must be declared and
//! declared lexical edges must be observed; the union of all edges must
//! be acyclic — a cycle is the textbook ABBA deadlock and fails the
//! build before it can ever hang a daemon.
//!
//! Two more properties ride on the same scan:
//!
//! * **No lock held across I/O or `.join()`** — a `let`-bound guard
//!   that is still live on a line doing file/socket I/O, console
//!   output, or a thread join stalls every other thread contending for
//!   that lock on the latency of the slow operation.
//! * **Poisoning discipline** — `lock().unwrap()` converts a panic on
//!   one thread into poison-panics on every other thread that touches
//!   the lock. Sites on always-on paths must recover with
//!   `unwrap_or_else(|e| e.into_inner())`; the few deliberate
//!   propagation sites live in the two-way [`POISON_ALLOW`] ratchet
//!   with a justification each.
//!
//! Like the panic audit this is a textual scan, not a parse — method
//! chains are re-joined into logical lines (see [`crate::scan`]) so
//! rustfmt wrapping cannot hide a site, and string literals containing
//! a needle count against the file (noisy beats silent). Guard-lifetime
//! tracking is approximate (a `let`-bound guard is assumed held until
//! its enclosing block closes); the approximation over-reports holds,
//! never under-reports them.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::scan;
use crate::Finding;

const CHECKER: &str = "locks";

/// The lock primitive a spec reifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
    Condvar,
}

/// What a poisoned acquisition does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoisonPolicy {
    /// Recovers via `unwrap_or_else(|e| e.into_inner())` — required on
    /// any lock an always-on thread (HTTP, poll loop) touches.
    Recover,
    /// Propagates the panic (`.unwrap()`); every such site must also be
    /// budgeted in [`POISON_ALLOW`].
    Propagate,
}

/// One reified lock.
#[derive(Debug, Clone, Copy)]
pub struct LockSpec {
    /// Stable name used in edges, diagnostics, and DESIGN.md.
    pub name: &'static str,
    /// Repo-relative file that declares (and acquires) the lock.
    pub file: &'static str,
    pub kind: LockKind,
    /// Substring that identifies the lock's declaration lines
    /// (type position and constructor).
    pub decl_pattern: &'static str,
    /// How many declaration lines `decl_pattern` must claim.
    pub decl_sites: usize,
    /// Substring that identifies acquisition call sites in `file`.
    pub acquire_pattern: &'static str,
    /// What state the lock guards (prose, surfaced in diagnostics).
    pub guards: &'static str,
    pub poison: PoisonPolicy,
}

/// How an acquired-while-held edge is established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Visible in the text of one file; the scan must observe it.
    Lexical,
    /// Crosses a function-pointer/closure boundary the text cannot
    /// connect; trusted as declared, covered by the interleave models.
    Callback,
}

/// One declared edge in the acquired-while-held graph.
#[derive(Debug, Clone, Copy)]
pub struct HeldEdge {
    /// The lock already held.
    pub holder: &'static str,
    /// The lock acquired while `holder` is held.
    pub acquired: &'static str,
    pub kind: EdgeKind,
    /// Why the nesting exists (prose).
    pub why: &'static str,
}

/// The full lock inventory. Adding a `Mutex` to the workspace without a
/// row here fails the build, as does deleting one without removing its
/// row.
pub const LOCKS: &[LockSpec] = &[
    LockSpec {
        name: "obs.recorder.shard_state",
        file: "crates/obs/src/recorder.rs",
        kind: LockKind::Mutex,
        decl_pattern: "state: Mutex",
        decl_sites: 2,
        acquire_pattern: ".state.lock(",
        guards: "one metrics shard (counters/gauges/histograms/sketches/spans) \
                 written by the thread hashed to it, merged at snapshot",
        poison: PoisonPolicy::Recover,
    },
    LockSpec {
        name: "obs.recorder.anchor",
        file: "crates/obs/src/recorder.rs",
        kind: LockKind::Mutex,
        decl_pattern: "anchor: Mutex",
        decl_sites: 2,
        acquire_pattern: ".anchor.lock(",
        guards: "the trace-clock anchor Instant set once at enable()",
        poison: PoisonPolicy::Recover,
    },
    LockSpec {
        name: "obs.export.help_registry",
        file: "crates/obs/src/export.rs",
        kind: LockKind::Mutex,
        decl_pattern: "HELP_REGISTRY: Mutex",
        decl_sites: 1,
        acquire_pattern: "HELP_REGISTRY.lock(",
        guards: "the process-wide `# HELP` string table filled at startup",
        poison: PoisonPolicy::Recover,
    },
    LockSpec {
        name: "obs.gauges.entries",
        file: "crates/obs/src/gauges.rs",
        kind: LockKind::Mutex,
        decl_pattern: "entries: Mutex",
        decl_sites: 1,
        acquire_pattern: ".entries.lock(",
        guards: "the late-bound gauge closures sampled at scrape time",
        poison: PoisonPolicy::Recover,
    },
    LockSpec {
        name: "logmodel.par.queue",
        file: "crates/logmodel/src/par.rs",
        kind: LockKind::Mutex,
        decl_pattern: "let queue = Mutex",
        decl_sites: 1,
        acquire_pattern: "queue.lock(",
        guards: "the shared work-item iterator workers pull from",
        poison: PoisonPolicy::Propagate,
    },
    LockSpec {
        name: "logmodel.par.done",
        file: "crates/logmodel/src/par.rs",
        kind: LockKind::Mutex,
        decl_pattern: "let done: Mutex",
        decl_sites: 1,
        acquire_pattern: "done.lock(",
        guards: "the (index, result) accumulator merged after the scope joins",
        poison: PoisonPolicy::Propagate,
    },
    LockSpec {
        name: "experiments.results",
        file: "crates/experiments/src/bin/run_experiments.rs",
        kind: LockKind::Mutex,
        decl_pattern: "let results: Mutex",
        decl_sites: 1,
        acquire_pattern: "results.lock(",
        guards: "the per-figure result accumulator of the experiment pool",
        poison: PoisonPolicy::Propagate,
    },
    LockSpec {
        name: "sdcheckerd.report",
        file: "crates/sdchecker/src/bin/sdcheckerd.rs",
        kind: LockKind::Mutex,
        decl_pattern: "report: Mutex",
        decl_sites: 2,
        acquire_pattern: ".report.lock(",
        guards: "the rendered /report.json document (poll loop writes, HTTP reads)",
        poison: PoisonPolicy::Recover,
    },
    LockSpec {
        name: "sdcheckerd.health",
        file: "crates/sdchecker/src/bin/sdcheckerd.rs",
        kind: LockKind::Mutex,
        decl_pattern: "health: Mutex",
        decl_sites: 2,
        acquire_pattern: ".health.lock(",
        guards: "the Health struct behind /healthz and the daemon gauges",
        poison: PoisonPolicy::Recover,
    },
    LockSpec {
        name: "sdcheckerd.last_progress",
        file: "crates/sdchecker/src/bin/sdcheckerd.rs",
        kind: LockKind::Mutex,
        decl_pattern: "last_progress: Mutex",
        decl_sites: 2,
        acquire_pattern: ".last_progress.lock(",
        guards: "the watchdog Instant /healthz ages against",
        poison: PoisonPolicy::Recover,
    },
    LockSpec {
        name: "sdcheckerd.alerts",
        file: "crates/sdchecker/src/bin/sdcheckerd.rs",
        kind: LockKind::Mutex,
        decl_pattern: "alerts: Mutex",
        decl_sites: 2,
        acquire_pattern: ".alerts.lock(",
        guards: "the rendered /alerts document",
        poison: PoisonPolicy::Recover,
    },
    LockSpec {
        name: "sdcheckerd.firing",
        file: "crates/sdchecker/src/bin/sdcheckerd.rs",
        kind: LockKind::Mutex,
        decl_pattern: "firing: Mutex",
        decl_sites: 2,
        acquire_pattern: ".firing.lock(",
        guards: "per-rule firing flags behind the sd_alert_firing gauges",
        poison: PoisonPolicy::Recover,
    },
    LockSpec {
        name: "sdcheckerd.exemplars",
        file: "crates/sdchecker/src/bin/sdcheckerd.rs",
        kind: LockKind::Mutex,
        decl_pattern: "exemplars: Mutex",
        decl_sites: 2,
        acquire_pattern: ".exemplars.lock(",
        guards: "the rendered /exemplars index document",
        poison: PoisonPolicy::Recover,
    },
    LockSpec {
        name: "sdcheckerd.exemplar_traces",
        file: "crates/sdchecker/src/bin/sdcheckerd.rs",
        kind: LockKind::Mutex,
        decl_pattern: "exemplar_traces: Mutex",
        decl_sites: 2,
        acquire_pattern: ".exemplar_traces.lock(",
        guards: "pre-rendered per-app Perfetto traces behind /exemplars/<app>",
        poison: PoisonPolicy::Recover,
    },
    LockSpec {
        name: "sdcheckerd.ckpt",
        file: "crates/sdchecker/src/bin/sdcheckerd.rs",
        kind: LockKind::Mutex,
        decl_pattern: "ckpt: Mutex",
        decl_sites: 2,
        acquire_pattern: ".ckpt.lock(",
        guards: "checkpoint status behind /checkpointz and sd_checkpoint_* gauges",
        poison: PoisonPolicy::Recover,
    },
    LockSpec {
        name: "sdcheckerd.ckpt_written",
        file: "crates/sdchecker/src/bin/sdcheckerd.rs",
        kind: LockKind::Mutex,
        decl_pattern: "ckpt_written: Mutex",
        decl_sites: 2,
        acquire_pattern: ".ckpt_written.lock(",
        guards: "the Instant of the last successful checkpoint write",
        poison: PoisonPolicy::Recover,
    },
];

/// The declared acquired-while-held graph. Lexical edges are verified
/// against the scan; callback edges cross closure boundaries (the
/// interleave models cover their runtime behavior).
pub const HELD_EDGES: &[HeldEdge] = &[
    HeldEdge {
        holder: "obs.gauges.entries",
        acquired: "sdcheckerd.health",
        kind: EdgeKind::Callback,
        why: "sample_into holds the entries lock while daemon gauge closures \
              call Shared::health()",
    },
    HeldEdge {
        holder: "obs.gauges.entries",
        acquired: "sdcheckerd.firing",
        kind: EdgeKind::Callback,
        why: "the sd_alert_firing closures read the firing map during sampling",
    },
    HeldEdge {
        holder: "obs.gauges.entries",
        acquired: "sdcheckerd.ckpt",
        kind: EdgeKind::Callback,
        why: "the sd_checkpoint_bytes closure calls Shared::ckpt() during sampling",
    },
    HeldEdge {
        holder: "obs.gauges.entries",
        acquired: "sdcheckerd.ckpt_written",
        kind: EdgeKind::Callback,
        why: "the sd_checkpoint_age_ms closure calls Shared::ckpt_age_ms() during sampling",
    },
];

/// One deliberate poison-propagation budget entry (two-way ratchet,
/// like the panic allowlist).
#[derive(Debug, Clone, Copy)]
pub struct PoisonAllow {
    pub file: &'static str,
    /// Allowed `lock().unwrap()` (or RwLock read/write equivalents).
    pub count: usize,
    pub justification: &'static str,
}

/// Files allowed to `.unwrap()` a lock result. Everything else must
/// recover from poisoning.
pub const POISON_ALLOW: &[PoisonAllow] = &[
    PoisonAllow {
        file: "crates/logmodel/src/par.rs",
        count: 2,
        justification: "scoped worker pool: a poisoned queue/done vec means a \
                        sibling worker already panicked and thread::scope will \
                        propagate that panic; unwrap only amplifies an \
                        already-fatal condition",
    },
    PoisonAllow {
        file: "crates/experiments/src/bin/run_experiments.rs",
        count: 1,
        justification: "batch experiment driver: a poisoned results vec means a \
                        figure generator panicked; aborting the whole run (not \
                        serving partial figures) is the correct behavior",
    },
];

/// Needles identifying a lock *declaration* line. Assembled at runtime
/// so this file's own table does not count against the scan.
fn decl_needles() -> Vec<String> {
    let generic = "<";
    let ctor = "::new(";
    vec![
        format!("{}{generic}", "Mutex"),
        format!("{}{ctor}", "Mutex"),
        format!("{}{generic}", "RwLock"),
        format!("{}{ctor}", "RwLock"),
        format!("{}{ctor}", "Condvar"),
        format!(": {}", "Condvar"),
    ]
}

/// The bare `.unwrap()` needle, assembled at runtime so this file does
/// not count against the panic audit's scan of sdlint itself.
fn unwrap_needle() -> String {
    format!(".{}()", "unwrap")
}

/// Needles identifying a poison-propagating acquisition.
fn poison_needles() -> Vec<String> {
    let unwrap = unwrap_needle();
    vec![
        format!(".lock(){unwrap}"),
        format!(".read(){unwrap}"),
        format!(".write(){unwrap}"),
    ]
}

/// I/O and blocking needles a held guard must never cover.
fn io_needles() -> Vec<String> {
    let fs = "fs";
    vec![
        format!("std::{fs}::"),
        "File::create".into(),
        "File::open".into(),
        ".write_all(".into(),
        ".flush(".into(),
        ".sync_all(".into(),
        ".read_to_string(".into(),
        "TcpStream".into(),
        format!("{}!(", "eprintln"),
        format!("{}!(", "println"),
        ".join()".into(),
        "sleep(".into(),
    ]
}

/// If `line` is a simple `let <ident> = ...;` binding, return the
/// bound identifier. Destructuring patterns (`let Some(x) = ...`) are
/// rejected: they bind the *result* of a call on the guard temporary,
/// not the guard itself.
fn let_binding(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    let name = &rest[..end];
    if name.chars().next().is_some_and(|c| c.is_uppercase()) {
        return None; // enum/struct pattern, not a binding
    }
    let after = rest[end..].trim_start();
    if after.starts_with('=') && !after.starts_with("==") {
        Some(name)
    } else {
        None
    }
}

/// Whether the text after an acquisition is pure poison-handling, i.e.
/// the statement's value IS the guard (so a `let` binding keeps it
/// alive past the statement).
fn suffix_is_guard(suffix: &str) -> bool {
    let mut s = suffix;
    // The acquire pattern ends at the open paren; expect the call to
    // close immediately (lock()/read()/write() take no arguments).
    let Some(rest) = s.strip_prefix(')') else {
        return false;
    };
    s = rest;
    let handlers = [
        unwrap_needle(),
        format!(".{}_or_else(|e| e.into_inner())", "unwrap"),
    ];
    for handler in &handlers {
        if let Some(rest) = s.strip_prefix(handler.as_str()) {
            s = rest;
            break;
        }
    }
    s.trim_end().trim_end_matches(';').trim().is_empty()
}

/// One acquisition found on a logical line.
struct Acq {
    spec: usize,
    /// Byte offset of the pattern in the line (orders same-line edges).
    pos: usize,
    /// Whether a `let` binding keeps the guard alive past the statement.
    held: bool,
}

fn acquisitions(line: &str, file: &str, locks: &[LockSpec]) -> Vec<Acq> {
    let mut out = Vec::new();
    let bound = let_binding(line).is_some();
    for (i, spec) in locks.iter().enumerate() {
        if spec.file != file {
            continue;
        }
        let mut from = 0usize;
        while let Some(p) = line[from..].find(spec.acquire_pattern) {
            let pos = from + p;
            let suffix = &line[pos + spec.acquire_pattern.len()..];
            out.push(Acq {
                spec: i,
                pos,
                held: bound && suffix_is_guard(suffix),
            });
            from = pos + spec.acquire_pattern.len();
        }
    }
    out.sort_by_key(|a| a.pos);
    out
}

/// Depth-first cycle search over the named edge set. Returns the cycle
/// as a name path when one exists.
fn find_cycle(edges: &BTreeMap<&str, BTreeSet<&str>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    fn visit<'a>(
        node: &'a str,
        edges: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        marks.insert(node, Mark::Grey);
        stack.push(node);
        if let Some(next) = edges.get(node) {
            for &n in next {
                match marks.get(n).copied().unwrap_or(Mark::White) {
                    Mark::Grey => {
                        let start = stack.iter().position(|s| *s == n).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            stack[start..].iter().map(|s| s.to_string()).collect();
                        cycle.push(n.to_string());
                        return Some(cycle);
                    }
                    Mark::White => {
                        if let Some(c) = visit(n, edges, marks, stack) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }
    let mut marks: BTreeMap<&str, Mark> = BTreeMap::new();
    let nodes: BTreeSet<&str> = edges
        .iter()
        .flat_map(|(k, vs)| std::iter::once(*k).chain(vs.iter().copied()))
        .collect();
    for node in nodes {
        if marks.get(node).copied().unwrap_or(Mark::White) == Mark::White {
            let mut stack = Vec::new();
            if let Some(c) = visit(node, edges, &mut marks, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

/// Check the given sources against a lock table and edge set. Split out
/// from [`check`] so mutation tests can feed broken tables or seeded
/// sources.
pub fn check_tables(
    sources: &[scan::SourceFile],
    locks: &[LockSpec],
    edges: &[HeldEdge],
    poison_allow: &[PoisonAllow],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let decl_needles = decl_needles();
    let poison_needles = poison_needles();
    let io_needles = io_needles();

    // --- Inventory cross-check -------------------------------------------
    let mut claimed: BTreeMap<usize, usize> = BTreeMap::new(); // spec -> decl lines
    for sf in sources {
        for ll in scan::logical_lines(&sf.body) {
            if ll.text.starts_with("use ") || ll.text.starts_with("pub use ") {
                continue;
            }
            if !decl_needles.iter().any(|n| ll.text.contains(n.as_str())) {
                continue;
            }
            let owners: Vec<usize> = locks
                .iter()
                .enumerate()
                .filter(|(_, s)| s.file == sf.rel && ll.text.contains(s.decl_pattern))
                .map(|(i, _)| i)
                .collect();
            match owners.len() {
                0 => findings.push(Finding::new(
                    CHECKER,
                    format!(
                        "{}:{}: lock declaration `{}` is not reified in the \
                         sdlint::locks::LOCKS table — add a LockSpec naming it, \
                         what it guards, and its poisoning policy",
                        sf.rel,
                        ll.lineno,
                        ll.text.chars().take(60).collect::<String>(),
                    ),
                )),
                1 => *claimed.entry(owners[0]).or_default() += 1,
                _ => findings.push(Finding::new(
                    CHECKER,
                    format!(
                        "{}:{}: lock declaration claimed by {} LockSpecs ({}) — \
                         decl_patterns must be unambiguous",
                        sf.rel,
                        ll.lineno,
                        owners.len(),
                        owners
                            .iter()
                            .map(|i| locks[*i].name)
                            .collect::<Vec<_>>()
                            .join(", "),
                    ),
                )),
            }
        }
    }
    for (i, spec) in locks.iter().enumerate() {
        let got = claimed.get(&i).copied().unwrap_or(0);
        if got == 0 {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "LockSpec `{}`: no declaration matching `{}` in {} — the \
                     lock is gone; remove the stale table entry",
                    spec.name, spec.decl_pattern, spec.file,
                ),
            ));
        } else if got != spec.decl_sites {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "LockSpec `{}`: {} declaration lines match `{}` in {} but \
                     the table declares {} — update decl_sites so the \
                     inventory stays exact",
                    spec.name, got, spec.decl_pattern, spec.file, spec.decl_sites,
                ),
            ));
        }
    }

    // --- Acquisition scan: lexical edges + held-across-I/O ----------------
    let mut observed_edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for sf in sources {
        let lines = scan::logical_lines(&sf.body);
        let mut depth: i64 = 0;
        // (spec index, depth the guard was bound at)
        let mut held: Vec<(usize, i64)> = Vec::new();
        for ll in &lines {
            let acqs = acquisitions(&ll.text, &sf.rel, locks);
            // Same-statement nesting: two different locks in one line.
            for w in acqs.windows(2) {
                if w[0].spec != w[1].spec {
                    observed_edges.insert((w[0].spec, w[1].spec));
                }
            }
            for (h, _) in &held {
                for a in &acqs {
                    if a.spec != *h {
                        observed_edges.insert((*h, a.spec));
                    }
                }
                if let Some(io) = io_needles.iter().find(|n| ll.text.contains(n.as_str())) {
                    findings.push(Finding::new(
                        CHECKER,
                        format!(
                            "{}:{}: `{}` is held across `{}` — drop the guard \
                             (narrow scope or clone out) before blocking I/O",
                            sf.rel,
                            ll.lineno,
                            locks[*h].name,
                            io.trim_end_matches('('),
                        ),
                    ));
                }
            }
            for a in &acqs {
                if a.held && !held.iter().any(|(h, _)| *h == a.spec) {
                    held.push((a.spec, depth));
                }
            }
            depth += scan::brace_delta(&ll.text);
            held.retain(|(_, d)| depth >= *d);
        }
    }

    // --- Edge bookkeeping and cycle check ---------------------------------
    let by_name: BTreeMap<&str, usize> =
        locks.iter().enumerate().map(|(i, s)| (s.name, i)).collect();
    let mut declared: BTreeSet<(usize, usize)> = BTreeSet::new();
    for e in edges {
        let (Some(&h), Some(&a)) = (by_name.get(e.holder), by_name.get(e.acquired)) else {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "HeldEdge {} -> {}: names an unknown lock — every edge \
                     endpoint must be a LockSpec name",
                    e.holder, e.acquired,
                ),
            ));
            continue;
        };
        declared.insert((h, a));
        if e.kind == EdgeKind::Lexical && !observed_edges.contains(&(h, a)) {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "HeldEdge {} -> {} is declared Lexical but the scan no \
                     longer observes it — remove the stale edge",
                    e.holder, e.acquired,
                ),
            ));
        }
    }
    for (h, a) in &observed_edges {
        if !declared.contains(&(*h, *a)) {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "observed undeclared lock nesting: `{}` acquired while \
                     `{}` is held — declare the edge in \
                     sdlint::locks::HELD_EDGES (with why) or restructure to \
                     drop the first guard",
                    locks[*a].name, locks[*h].name,
                ),
            ));
        }
    }
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (h, a) in declared.iter().chain(observed_edges.iter()) {
        graph
            .entry(locks[*h].name)
            .or_default()
            .insert(locks[*a].name);
    }
    if let Some(cycle) = find_cycle(&graph) {
        findings.push(Finding::new(
            CHECKER,
            format!(
                "lock-order cycle: {} — two threads taking these locks in \
                 opposite order deadlock; break the cycle by ordering or \
                 merging the locks",
                cycle.join(" -> "),
            ),
        ));
    }

    // --- Poisoning audit (two-way ratchet) --------------------------------
    let mut unwraps: BTreeMap<String, usize> = BTreeMap::new();
    for sf in sources {
        for ll in scan::logical_lines(&sf.body) {
            let n: usize = poison_needles
                .iter()
                .map(|needle| ll.text.matches(needle.as_str()).count())
                .sum();
            if n > 0 {
                *unwraps.entry(sf.rel.clone()).or_default() += n;
            }
        }
    }
    let uw = format!("lock(){}", unwrap_needle());
    for (file, found) in &unwraps {
        let allowed = poison_allow
            .iter()
            .find(|p| p.file == file)
            .map_or(0, |p| p.count);
        if *found > allowed {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "{file}: {found} {uw} sites but the poisoning \
                     allowlist permits {allowed} — recover with \
                     `unwrap_or_else(|e| e.into_inner())` (a panic on one \
                     thread must not cascade) or budget it in \
                     sdlint::locks::POISON_ALLOW with a justification"
                ),
            ));
        } else if *found < allowed {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "{file}: poisoning allowlist permits {allowed} \
                     {uw} sites but only {found} remain — ratchet \
                     POISON_ALLOW down so the burn-down sticks"
                ),
            ));
        }
    }
    for p in poison_allow {
        if !unwraps.contains_key(p.file) {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "{}: poisoning allowlist permits {} sites but none found — \
                     remove the stale POISON_ALLOW entry",
                    p.file, p.count,
                ),
            ));
        }
    }
    // Policy consistency: a Recover lock's file must not hide its
    // acquisitions behind an unwrap budget at all.
    for spec in locks {
        if spec.poison == PoisonPolicy::Propagate
            && !poison_allow.iter().any(|p| p.file == spec.file)
        {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "LockSpec `{}` declares PoisonPolicy::Propagate but {} has \
                     no POISON_ALLOW budget — declare the budget (with why) or \
                     switch the sites to recover",
                    spec.name, spec.file,
                ),
            ));
        }
    }

    findings
}

/// Audit the workspace rooted at `repo_root` against the real tables.
pub fn check(repo_root: &Path) -> Vec<Finding> {
    let sources = match scan::workspace_sources(repo_root, true) {
        Ok(s) => s,
        Err(e) => return vec![Finding::new(CHECKER, e)],
    };
    check_tables(&sources, LOCKS, HELD_EDGES, POISON_ALLOW)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_passes_lock_audit() {
        let findings = check(&crate::default_repo_root());
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn let_binding_parses_guards_not_patterns() {
        assert_eq!(let_binding("let mut st = x.lock();"), Some("st"));
        assert_eq!(
            let_binding("let anchor = self.anchor.lock();"),
            Some("anchor")
        );
        assert_eq!(
            let_binding("let Some((idx, item)) = q.lock().next() else {"),
            None
        );
        assert_eq!(let_binding("*shared.report.lock() = r;"), None);
    }

    #[test]
    fn suffix_distinguishes_guard_from_temporary() {
        assert!(suffix_is_guard(").unwrap();"));
        assert!(suffix_is_guard(").unwrap_or_else(|e| e.into_inner());"));
        assert!(suffix_is_guard(");"));
        assert!(!suffix_is_guard(").unwrap().next() else {"));
        assert!(!suffix_is_guard(
            ").unwrap_or_else(|e| e.into_inner()).clone();"
        ));
        assert!(!suffix_is_guard(").unwrap() = Some(Instant::now());"));
    }

    #[test]
    fn cycle_detector_finds_abba() {
        let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        edges.entry("a").or_default().insert("b");
        edges.entry("b").or_default().insert("c");
        assert!(find_cycle(&edges).is_none());
        edges.entry("c").or_default().insert("a");
        let cycle = find_cycle(&edges).expect("cycle");
        assert!(cycle.len() >= 3, "{cycle:?}");
    }
}
