//! Checker 2a: exhaustive analysis of the reified state machines.
//!
//! Works on [`MachineSpec`] data (built by `yarnsim::schema::machines`
//! from the enums' real `can_go` relations, so the spec cannot drift
//! from the code): every state reachable from the initial state, no
//! non-terminal dead-ends, no exits out of terminal states — and the
//! machine's log vocabulary must sit inside the extractor's state
//! alphabet, or transitions would be reported as schema drift.

use logmodel::schema::MachineSpec;

use crate::Finding;

const CHECKER: &str = "machines";

/// Verify one machine spec.
pub fn check_machine(m: &MachineSpec) -> Vec<Finding> {
    let mut findings = Vec::new();
    let n = m.states.len();

    if m.initial >= n || m.terminal.len() != n || m.can_go.len() != n {
        findings.push(Finding::new(
            CHECKER,
            format!("machine {} has inconsistent spec dimensions", m.name),
        ));
        return findings;
    }

    let reachable = m.reachable();
    for (i, state) in m.states.iter().enumerate() {
        let exits = (0..n).filter(|&j| m.can_go[i][j] && j != i).count();
        if !reachable[i] {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "machine {}: state {state} is unreachable from initial state {}",
                    m.name, m.states[m.initial]
                ),
            ));
        }
        if m.terminal[i] && exits > 0 {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "machine {}: terminal state {state} has {exits} outgoing transitions",
                    m.name
                ),
            ));
        }
        if !m.terminal[i] && exits == 0 {
            findings.push(Finding::new(
                CHECKER,
                format!(
                    "machine {}: non-terminal state {state} is a dead end (no exits)",
                    m.name
                ),
            ));
        }
    }

    // Some terminal state must be reachable, or every run of the machine
    // is an infinite loop.
    if !(0..n).any(|i| m.terminal[i] && reachable[i]) {
        findings.push(Finding::new(
            CHECKER,
            format!("machine {}: no terminal state is reachable", m.name),
        ));
    }

    // Every state the machine can log must be in the extractor's
    // alphabet for the machine's class (the alphabet may be a superset —
    // real logs contain states the simulator never emits, e.g. KILLED).
    match sdchecker::schema::state_alphabet(m.name) {
        None => findings.push(Finding::new(
            CHECKER,
            format!(
                "machine {} has no extractor state alphabet — its transitions \
                 would all be reported as schema drift",
                m.name
            ),
        )),
        Some(alphabet) => {
            for state in &m.states {
                if !alphabet.contains(state) {
                    findings.push(Finding::new(
                        CHECKER,
                        format!(
                            "machine {}: state {state} is outside the extractor's \
                             alphabet — its transitions would count as unmatched",
                            m.name
                        ),
                    ));
                }
            }
        }
    }

    findings
}

/// Verify a set of machine specs.
pub fn check(machines: &[MachineSpec]) -> Vec<Finding> {
    machines.iter().flat_map(check_machine).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_machines_verify() {
        let findings = check(&yarnsim::schema::machines());
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn unreachable_state_is_flagged() {
        let mut m = yarnsim::schema::machines().remove(0);
        // Orphan a state by cutting every edge into it.
        let idx = m.index_of("RUNNING").unwrap();
        for row in &mut m.can_go {
            row[idx] = false;
        }
        let findings = check_machine(&m);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("RUNNING") && f.message.contains("unreachable")),
            "{findings:#?}"
        );
    }

    #[test]
    fn terminal_exit_is_flagged() {
        let mut m = yarnsim::schema::machines().remove(0);
        let fin = m.index_of("FINISHED").unwrap();
        let new = m.index_of("NEW").unwrap();
        m.can_go[fin][new] = true;
        let findings = check_machine(&m);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("terminal state FINISHED")),
            "{findings:#?}"
        );
    }
}
