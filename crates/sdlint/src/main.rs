//! CLI entry point: run every checker and exit nonzero on any finding.

fn main() {
    let root = sdlint::default_repo_root();
    let findings = sdlint::run_all(&root);
    if findings.is_empty() {
        println!("sdlint: all checks passed (conformance, machines, modelcheck, panics)");
        return;
    }
    eprintln!("sdlint: {} finding(s)", findings.len());
    for f in &findings {
        eprintln!("  {f}");
    }
    std::process::exit(1);
}
