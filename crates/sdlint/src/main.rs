//! CLI entry point: run every checker, print per-checker runtime and
//! the interleaving explorer's state counts (so CI logs show where
//! lint time goes and whether a model edit exploded the state space),
//! and exit nonzero on any finding.

fn main() {
    let root = sdlint::default_repo_root();
    let report = sdlint::run_all_with_stats(&root);
    for t in &report.timings {
        println!(
            "sdlint: {:<12} {:>5} ms  {} finding(s)",
            t.name, t.millis, t.findings
        );
    }
    for s in &report.interleave {
        println!(
            "sdlint: interleave model {:<22} {} states, {} transitions, \
             {} terminal(s){}",
            s.model,
            s.states,
            s.transitions,
            s.terminals,
            if s.capped {
                "  [CAPPED — not exhaustive]"
            } else {
                ""
            },
        );
    }
    if report.findings.is_empty() {
        println!(
            "sdlint: all checks passed (conformance, machines, modelcheck, \
             panics, locks, atomics, determinism, interleave)"
        );
        return;
    }
    eprintln!("sdlint: {} finding(s)", report.findings.len());
    for f in &report.findings {
        eprintln!("  {f}");
    }
    std::process::exit(1);
}
