//! # sdlint — static verification of the emitter↔parser contract
//!
//! SDchecker's premise is that scheduler logs are a reliable mirror of
//! the state machines that emit them (paper §III-A / Table I). That only
//! holds while the simulator's emitted message vocabulary and the
//! analyzer's extraction rules agree — an agreement that used to be
//! implicit and only falsifiable at runtime, when some corpus happened to
//! exercise a drifted template.
//!
//! `sdlint` makes the contract machine-checked, with three checkers:
//!
//! * [`conformance`] — cross-checks the emitted-template tables
//!   (`yarnsim::schema`, `sparksim::schema`) against the extraction-rule
//!   table (`sdchecker::schema`): every scheduling-relevant template must
//!   be matched by exactly one rule (no misses, no shadowing), noise must
//!   be matched by none, and every rule must have an emitter or an
//!   explicit `external_only` annotation.
//! * [`machines`] + [`modelcheck`] — verifies the reified state machines
//!   (reachability, dead-ends, terminal exits) and model-checks small
//!   simulated configurations end to end: per-entity transition chains,
//!   monotone timestamps, and critical-path tiling.
//! * [`panics`] — a source-scanning audit denying `unwrap`/`expect`/
//!   `panic!` in library code outside tests and `debug_assert`-gated
//!   paths, with an explicit burn-down allowlist.
//!
//! PR 10 added a concurrency-correctness suite on the same ratchet
//! idiom (shared scanning plumbing in [`scan`]):
//!
//! * [`locks`] — reifies every `Mutex`/`RwLock`/`Condvar` into a
//!   declarative table, cross-checks it both ways against the source,
//!   builds the static acquired-while-held graph (cycle = deadlock),
//!   flags locks held across I/O or `.join()`, and ratchets
//!   `lock().unwrap()` poisoning sites.
//! * [`atomics`] — every `Ordering::Relaxed` must carry a
//!   justification in a two-way allowlist.
//! * [`determinism`] — denies `HashMap`/`HashSet` on output-feeding
//!   dataflow paths (byte-identical goldens by analysis, not luck).
//! * [`interleave`] — exhaustive bounded model check of the three real
//!   concurrent protocols (sharded registry snapshot, par merge
//!   handoff, daemon shutdown-drain square) under every interleaving.
//!
//! Run it as `cargo run -p sdlint` (CI gate), or via the test suite
//! (`cargo test -p sdlint`), which additionally mutation-tests the
//! checkers themselves.

pub mod atomics;
pub mod conformance;
pub mod determinism;
pub mod interleave;
pub mod locks;
pub mod machines;
pub mod modelcheck;
pub mod panics;
pub mod scan;

/// One verification failure. `sdlint` reports findings; it never panics
/// (it has to pass its own audit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which checker produced it (`conformance`, `machines`,
    /// `modelcheck`, `panics`).
    pub checker: &'static str,
    /// Human-readable diagnostic, naming the offending template/rule/
    /// file and — where applicable — the closest near-miss.
    pub message: String,
}

impl Finding {
    /// Build a finding.
    pub fn new(checker: &'static str, message: impl Into<String>) -> Finding {
        Finding {
            checker,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.checker, self.message)
    }
}

/// The full emitted-template inventory: cluster half plus application
/// half.
pub fn all_emitted_templates() -> Vec<logmodel::schema::MsgTemplate> {
    let mut out = Vec::new();
    out.extend_from_slice(yarnsim::schema::emitted_templates());
    out.extend_from_slice(sparksim::schema::emitted_templates());
    out
}

/// Wall-clock and outcome for one checker, surfaced by the CLI so CI
/// logs show where lint time goes.
#[derive(Debug, Clone)]
pub struct CheckerTiming {
    pub name: &'static str,
    pub millis: u128,
    pub findings: usize,
}

/// Everything one full lint run produced: findings, per-checker
/// timings, and the interleaving explorer's state counts.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub findings: Vec<Finding>,
    pub timings: Vec<CheckerTiming>,
    pub interleave: Vec<interleave::Stats>,
}

/// Run every checker against the real tables and the repository rooted
/// at `repo_root` (the source audits read from disk; the table and
/// model checkers are pure), recording per-checker runtime and the
/// interleaving state counts.
pub fn run_all_with_stats(repo_root: &std::path::Path) -> RunReport {
    let mut report = RunReport {
        findings: Vec::new(),
        timings: Vec::new(),
        interleave: Vec::new(),
    };
    let timed =
        |name: &'static str, report: &mut RunReport, f: &mut dyn FnMut() -> Vec<Finding>| {
            let start = std::time::Instant::now();
            let findings = f();
            report.timings.push(CheckerTiming {
                name,
                millis: start.elapsed().as_millis(),
                findings: findings.len(),
            });
            report.findings.extend(findings);
        };
    timed("conformance", &mut report, &mut || {
        conformance::check(&all_emitted_templates(), sdchecker::schema::patterns())
    });
    timed("machines", &mut report, &mut || {
        machines::check(&yarnsim::schema::machines())
    });
    timed("modelcheck", &mut report, &mut modelcheck::check);
    timed("panics", &mut report, &mut || panics::check(repo_root));
    timed("locks", &mut report, &mut || locks::check(repo_root));
    timed("atomics", &mut report, &mut || atomics::check(repo_root));
    timed("determinism", &mut report, &mut || {
        determinism::check(repo_root)
    });
    let start = std::time::Instant::now();
    let (findings, stats) = interleave::check_with_stats();
    report.timings.push(CheckerTiming {
        name: "interleave",
        millis: start.elapsed().as_millis(),
        findings: findings.len(),
    });
    report.findings.extend(findings);
    report.interleave = stats;
    report
}

/// Findings-only wrapper around [`run_all_with_stats`].
pub fn run_all(repo_root: &std::path::Path) -> Vec<Finding> {
    run_all_with_stats(repo_root).findings
}

/// The repository root when running from a workspace checkout
/// (`crates/sdlint` → two levels up).
pub fn default_repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}
