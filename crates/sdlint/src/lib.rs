//! # sdlint — static verification of the emitter↔parser contract
//!
//! SDchecker's premise is that scheduler logs are a reliable mirror of
//! the state machines that emit them (paper §III-A / Table I). That only
//! holds while the simulator's emitted message vocabulary and the
//! analyzer's extraction rules agree — an agreement that used to be
//! implicit and only falsifiable at runtime, when some corpus happened to
//! exercise a drifted template.
//!
//! `sdlint` makes the contract machine-checked, with three checkers:
//!
//! * [`conformance`] — cross-checks the emitted-template tables
//!   (`yarnsim::schema`, `sparksim::schema`) against the extraction-rule
//!   table (`sdchecker::schema`): every scheduling-relevant template must
//!   be matched by exactly one rule (no misses, no shadowing), noise must
//!   be matched by none, and every rule must have an emitter or an
//!   explicit `external_only` annotation.
//! * [`machines`] + [`modelcheck`] — verifies the reified state machines
//!   (reachability, dead-ends, terminal exits) and model-checks small
//!   simulated configurations end to end: per-entity transition chains,
//!   monotone timestamps, and critical-path tiling.
//! * [`panics`] — a source-scanning audit denying `unwrap`/`expect`/
//!   `panic!` in library code outside tests and `debug_assert`-gated
//!   paths, with an explicit burn-down allowlist.
//!
//! Run it as `cargo run -p sdlint` (CI gate), or via the test suite
//! (`cargo test -p sdlint`), which additionally mutation-tests the
//! checkers themselves.

pub mod conformance;
pub mod machines;
pub mod modelcheck;
pub mod panics;

/// One verification failure. `sdlint` reports findings; it never panics
/// (it has to pass its own audit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which checker produced it (`conformance`, `machines`,
    /// `modelcheck`, `panics`).
    pub checker: &'static str,
    /// Human-readable diagnostic, naming the offending template/rule/
    /// file and — where applicable — the closest near-miss.
    pub message: String,
}

impl Finding {
    /// Build a finding.
    pub fn new(checker: &'static str, message: impl Into<String>) -> Finding {
        Finding {
            checker,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.checker, self.message)
    }
}

/// The full emitted-template inventory: cluster half plus application
/// half.
pub fn all_emitted_templates() -> Vec<logmodel::schema::MsgTemplate> {
    let mut out = Vec::new();
    out.extend_from_slice(yarnsim::schema::emitted_templates());
    out.extend_from_slice(sparksim::schema::emitted_templates());
    out
}

/// Run every checker against the real tables and the repository rooted
/// at `repo_root` (the panic audit reads sources from disk; the other
/// checkers are pure).
pub fn run_all(repo_root: &std::path::Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(conformance::check(
        &all_emitted_templates(),
        sdchecker::schema::patterns(),
    ));
    findings.extend(machines::check(&yarnsim::schema::machines()));
    findings.extend(modelcheck::check());
    findings.extend(panics::check(repo_root));
    findings
}

/// The repository root when running from a workspace checkout
/// (`crates/sdlint` → two levels up).
pub fn default_repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}
