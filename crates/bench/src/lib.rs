//! A tiny self-contained benchmark harness (the workspace is
//! dependency-free, so there is no criterion).
//!
//! Each bench target is a plain `main()` (`harness = false`): it calls
//! [`bench`] per measured function and prints one line per result in a
//! stable, grep-friendly format. [`Stats`] carries the raw numbers so
//! callers can post-process (e.g. the sdchecker pipeline bench writes
//! `BENCH_sdchecker.json` with per-stage wall-clock and speedups).

use std::time::Instant;

/// Wall-clock statistics of one measured function, in seconds per
/// iteration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median of the samples.
    pub median_s: f64,
    /// Fastest sample.
    pub min_s: f64,
    /// Slowest sample.
    pub max_s: f64,
    /// Arithmetic mean of the samples.
    pub mean_s: f64,
    /// Number of samples taken.
    pub samples: usize,
}

impl Stats {
    /// Median in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median_s * 1e3
    }
}

/// Time `f` for `samples` iterations (after one untimed warmup) and print
/// a `bench <name>: median <ms> (min .. max, N samples)` line.
///
/// The return value of `f` is consumed with `std::hint::black_box` so the
/// optimizer cannot discard the measured work.
pub fn bench<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) -> Stats {
    assert!(samples > 0, "bench needs at least one sample");
    std::hint::black_box(f()); // warmup, also primes file-system caches
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let stats = Stats {
        median_s: times[times.len() / 2],
        min_s: times[0],
        max_s: times[times.len() - 1],
        mean_s: times.iter().sum::<f64>() / times.len() as f64,
        samples,
    };
    println!(
        "bench {name}: median {:.3}ms (min {:.3}ms .. max {:.3}ms, {} samples)",
        stats.median_ms(),
        stats.min_s * 1e3,
        stats.max_s * 1e3,
        stats.samples
    );
    stats
}

/// Minimal JSON writer for the machine-readable bench artifacts: builds an
/// object from already-rendered value strings (use [`json_str`] /
/// [`json_f64`] / plain integers) so no serialization dependency is
/// needed.
pub fn json_object(fields: &[(&str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n  {}: {}", json_str(k), v));
    }
    out.push_str("\n}\n");
    out
}

/// Render a JSON string literal (escapes quotes/backslashes/control
/// characters — enough for ids and stage names).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` as a JSON number (finite values only).
pub fn json_f64(x: f64) -> String {
    assert!(x.is_finite(), "JSON numbers must be finite");
    format!("{x:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_stats() {
        let mut n = 0u64;
        let s = bench("noop", 5, || {
            n += 1;
            n
        });
        assert_eq!(s.samples, 5);
        assert!(s.min_s <= s.median_s && s.median_s <= s.max_s);
        assert_eq!(n, 6, "warmup + samples");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        let obj = json_object(&[("k", json_str("v")), ("n", "3".to_string())]);
        assert!(obj.contains("\"k\": \"v\""));
        assert!(obj.contains("\"n\": 3"));
    }
}
