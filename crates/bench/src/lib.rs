//! Benchmark crate: see benches/.
