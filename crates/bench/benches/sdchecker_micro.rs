//! Microbenchmarks of the SDchecker pipeline stages: line parsing, event
//! extraction, grouping/graph construction, decomposition, and the full
//! analysis — measured over a realistic generated corpus, because that is
//! exactly the input the offline tool sees.
//!
//! Run with `cargo bench --bench sdchecker_micro`.

use logmodel::{Epoch, LogStore};
use sd_bench::bench;
use sdchecker::{analyze_store, build_graphs, decompose, extract_all, Pat};
use simkit::{Millis, SimRng};
use sparksim::simulate;
use workloads::{tpch_stream, TraceParams};
use yarnsim::ClusterConfig;

/// Generate a 40-job corpus once (deterministic).
fn corpus() -> LogStore {
    let mut rng = SimRng::new(77);
    let arrivals = tpch_stream(40, 2048.0, 4, &TraceParams::moderate(), &mut rng);
    let (logs, summaries) = simulate(
        ClusterConfig::default(),
        77,
        arrivals,
        Millis::from_mins(240),
    );
    assert_eq!(summaries.len(), 40);
    logs
}

fn main() {
    let logs = corpus();
    let lines: Vec<String> = logs.iter_lines().map(|(_, l)| l).collect();
    let total_bytes: usize = lines.iter().map(String::len).sum();
    let epoch = Epoch::default_run();
    println!(
        "corpus: {} records, {} rendered bytes",
        logs.total_records(),
        total_bytes
    );

    let s = bench("parse_lines", 20, || {
        let mut n = 0usize;
        for l in &lines {
            if logmodel::parse_line(&epoch, l).is_some() {
                n += 1;
            }
        }
        n
    });
    println!(
        "  parse throughput: {:.1} MB/s",
        total_bytes as f64 / s.median_s / 1e6
    );

    bench("extract_all", 20, || extract_all(&logs).len());
    let events = extract_all(&logs);
    bench("build_graphs", 20, || build_graphs(&events).len());
    let graphs = build_graphs(&events);
    bench("decompose_all", 20, || {
        graphs.values().map(decompose).count()
    });
    bench("analyze_store", 20, || analyze_store(&logs).delays.len());

    let pat = Pat::new_static(sdchecker::schema::RM_APP_TEMPLATE);
    let msg = "application_1521018000000_0042 State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED";
    bench("pattern_match", 20, || {
        let mut n = 0usize;
        for _ in 0..10_000 {
            n += pat.match_str(msg).map_or(0, |c| c.len());
        }
        n
    });

    bench("dot_export", 20, || {
        graphs.values().next().unwrap().to_dot().len()
    });

    // Disk round-trips.
    let dir = std::env::temp_dir().join(format!("sd_bench_micro_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    bench("write_dir", 10, || {
        let _ = std::fs::remove_dir_all(&dir);
        logs.write_dir(&dir).unwrap()
    });
    let _ = std::fs::remove_dir_all(&dir);
    logs.write_dir(&dir).unwrap();
    bench("read_dir_and_analyze", 10, || {
        sdchecker::analyze_dir(&dir).unwrap().delays.len()
    });
    let _ = std::fs::remove_dir_all(&dir);
}
