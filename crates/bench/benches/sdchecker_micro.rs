//! Microbenchmarks of the SDchecker pipeline stages: line parsing, event
//! extraction, grouping/graph construction, decomposition, and the full
//! analysis — measured over a realistic generated corpus, because that is
//! exactly the input the offline tool sees.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use logmodel::{Epoch, LogStore};
use sdchecker::{analyze_store, build_graphs, decompose, extract_all, Pat};
use simkit::{Millis, SimRng};
use sparksim::simulate;
use workloads::{tpch_stream, TraceParams};
use yarnsim::ClusterConfig;

/// Generate a 40-job corpus once (deterministic).
fn corpus() -> LogStore {
    let mut rng = SimRng::new(77);
    let arrivals = tpch_stream(40, 2048.0, 4, &TraceParams::moderate(), &mut rng);
    let (logs, summaries) = simulate(
        ClusterConfig::default(),
        77,
        arrivals,
        Millis::from_mins(240),
    );
    assert_eq!(summaries.len(), 40);
    logs
}

fn bench_pipeline(c: &mut Criterion) {
    let logs = corpus();
    let lines: Vec<String> = logs.iter_lines().map(|(_, l)| l).collect();
    let total_bytes: usize = lines.iter().map(String::len).sum();
    let epoch = Epoch::default_run();

    let mut g = c.benchmark_group("parse");
    g.throughput(Throughput::Bytes(total_bytes as u64));
    g.bench_function("parse_lines", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for l in &lines {
                if logmodel::parse_line(&epoch, l).is_some() {
                    n += 1;
                }
            }
            n
        })
    });
    g.finish();

    let mut g = c.benchmark_group("mine");
    g.throughput(Throughput::Elements(logs.total_records() as u64));
    g.bench_function("extract_all", |b| b.iter(|| extract_all(&logs).len()));
    let events = extract_all(&logs);
    g.bench_function("build_graphs", |b| b.iter(|| build_graphs(&events).len()));
    let graphs = build_graphs(&events);
    g.bench_function("decompose_all", |b| {
        b.iter(|| graphs.values().map(decompose).count())
    });
    g.bench_function("analyze_store", |b| b.iter(|| analyze_store(&logs).delays.len()));
    g.finish();

    c.bench_function("pattern_match", |b| {
        let pat = Pat::new("{} State change from {} to {} on event = {}");
        let msg = "application_1521018000000_0042 State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED";
        b.iter(|| pat.match_str(msg).map(|c| c.len()))
    });

    c.bench_function("dot_export", |b| {
        let g0 = graphs.values().next().unwrap();
        b.iter(|| g0.to_dot().len())
    });
}

fn bench_disk_roundtrip(c: &mut Criterion) {
    let logs = corpus();
    c.bench_function("write_dir", |b| {
        let dir = std::env::temp_dir().join("sd_bench_write");
        b.iter_batched(
            || {
                let _ = std::fs::remove_dir_all(&dir);
            },
            |_| logs.write_dir(&dir).unwrap(),
            BatchSize::PerIteration,
        );
    });
    let dir = std::env::temp_dir().join("sd_bench_read");
    let _ = std::fs::remove_dir_all(&dir);
    logs.write_dir(&dir).unwrap();
    c.bench_function("read_dir_and_analyze", |b| {
        b.iter(|| sdchecker::analyze_dir(&dir).unwrap().delays.len())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline, bench_disk_roundtrip
);
criterion_main!(benches);
