//! Simulator benchmarks: how fast the discrete-event substrate replays
//! cluster time. Useful for sizing bigger studies (the 2 000-query long
//! trace replays hours of cluster time per wall-second).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simkit::{Millis, PsResource, SimRng};
use sparksim::{profiles, simulate};
use workloads::{tpch_stream, TraceParams};
use yarnsim::ClusterConfig;

fn bench_single_job(c: &mut Criterion) {
    c.bench_function("simulate_one_sql_job", |b| {
        b.iter(|| {
            let (logs, summaries) = simulate(
                ClusterConfig::default(),
                42,
                vec![(Millis(100), profiles::spark_sql_default(2048.0, 4))],
                Millis::from_mins(60),
            );
            assert_eq!(summaries.len(), 1);
            logs.total_records()
        })
    });
}

fn bench_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    for n in [20usize, 100] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("{n}_queries"), |b| {
            b.iter(|| {
                let mut rng = SimRng::new(7);
                let arrivals = tpch_stream(n, 2048.0, 4, &TraceParams::moderate(), &mut rng);
                let (_, summaries) = simulate(
                    ClusterConfig::default(),
                    7,
                    arrivals,
                    Millis::from_mins(24 * 60),
                );
                summaries.len()
            })
        });
    }
    g.finish();
}

fn bench_ps_resource(c: &mut Criterion) {
    c.bench_function("ps_resource_churn", |b| {
        b.iter(|| {
            // 200 overlapping flows through one channel, drained with the
            // tick protocol — the hot loop of every contended node.
            let mut res = PsResource::new(8.0);
            let mut now = Millis(0);
            for i in 0..200u64 {
                res.add_flow(Millis(i * 3), 50.0 + (i % 7) as f64 * 10.0, 1.0, 2.0);
            }
            let mut done = 0;
            while let Some((at, gen)) = res.next_completion(now) {
                now = at;
                done += res.on_tick(now, gen).len();
            }
            assert_eq!(done, 200);
            now
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_single_job, bench_trace, bench_ps_resource
);
criterion_main!(benches);
