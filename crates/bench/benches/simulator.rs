//! Simulator benchmarks: how fast the discrete-event substrate replays
//! cluster time. Useful for sizing bigger studies (the 2 000-query long
//! trace replays hours of cluster time per wall-second).
//!
//! Run with `cargo bench --bench simulator`.

use sd_bench::bench;
use simkit::{Millis, PsResource, SimRng};
use sparksim::{profiles, simulate};
use workloads::{tpch_stream, TraceParams};
use yarnsim::ClusterConfig;

fn main() {
    bench("simulate_one_sql_job", 15, || {
        let (logs, summaries) = simulate(
            ClusterConfig::default(),
            42,
            vec![(Millis(100), profiles::spark_sql_default(2048.0, 4))],
            Millis::from_mins(60),
        );
        assert_eq!(summaries.len(), 1);
        logs.total_records()
    });

    for n in [20usize, 100] {
        bench(&format!("trace/{n}_queries"), 15, || {
            let mut rng = SimRng::new(7);
            let arrivals = tpch_stream(n, 2048.0, 4, &TraceParams::moderate(), &mut rng);
            let (_, summaries) = simulate(
                ClusterConfig::default(),
                7,
                arrivals,
                Millis::from_mins(24 * 60),
            );
            summaries.len()
        });
    }

    bench("ps_resource_churn", 15, || {
        // 200 overlapping flows through one channel, drained with the
        // tick protocol — the hot loop of every contended node.
        let mut res = PsResource::new(8.0);
        let mut now = Millis(0);
        for i in 0..200u64 {
            res.add_flow(Millis(i * 3), 50.0 + (i % 7) as f64 * 10.0, 1.0, 2.0);
        }
        let mut done = 0;
        while let Some((at, gen)) = res.next_completion(now) {
            now = at;
            done += res.on_tick(now, gen).len();
        }
        assert_eq!(done, 200);
        now
    });
}
