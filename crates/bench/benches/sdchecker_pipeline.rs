//! End-to-end SDchecker pipeline bench on the paper-shaped corpus: a
//! 26-node cluster (RM + 25 NMs) running a 100-application TPC-H trace.
//! Times every stage (directory ingest, extraction+merge, full analysis,
//! end-to-end from disk) at 1 thread vs N threads, verifies the outputs
//! are identical, and writes the machine-readable `BENCH_sdchecker.json`
//! at the repo root so the perf trajectory is tracked across PRs.
//!
//! Run with `cargo bench --bench sdchecker_pipeline`.

use logmodel::{LogStore, Parallelism};
use sd_bench::{bench, json_f64, json_object, json_str, Stats};
use sdchecker::{analyze_dir_with, analyze_store_with, extract_all_with, full_report};
use simkit::{Millis, SimRng};
use sparksim::simulate;
use workloads::{tpch_stream, TraceParams};
use yarnsim::ClusterConfig;

const APPS: usize = 100;
const SAMPLES: usize = 5;

/// Generate the 26-node / 100-app corpus once (deterministic).
fn corpus() -> LogStore {
    let mut rng = SimRng::new(2018);
    let arrivals = tpch_stream(APPS, 2048.0, 4, &TraceParams::moderate(), &mut rng);
    let cfg = ClusterConfig::default(); // 25 NMs + the RM = the paper's 26 nodes
    let (logs, summaries) = simulate(cfg, 2018, arrivals, Millis::from_mins(24 * 60));
    assert_eq!(summaries.len(), APPS, "all jobs must complete");
    logs
}

fn stage_json(name: &str, seq: Stats, par: Stats) -> (String, String) {
    let speedup = seq.median_s / par.median_s;
    (
        name.to_string(),
        format!(
            "{{\"seq_ms\": {}, \"par_ms\": {}, \"speedup\": {}}}",
            json_f64(seq.median_ms()),
            json_f64(par.median_ms()),
            json_f64(speedup)
        ),
    )
}

fn main() {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Ask for at least 4 threads so the parallel path is exercised even on
    // small runners, but clamp to the hardware: oversubscription only adds
    // scheduling overhead and would make the "speedup" numbers misleading.
    let requested = hardware.max(4);
    let par = Parallelism::clamped(requested);
    let threads = par.threads();
    let seq = Parallelism::ONE;

    let logs = corpus();
    let total_records = logs.total_records();
    let total_bytes: usize = logs.iter_lines().map(|(_, l)| l.len() + 1).sum();
    let dir = std::env::temp_dir().join(format!("sd_bench_pipeline_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    logs.write_dir(&dir).unwrap();

    // Correctness first: the parallel pipeline must be bit-identical to
    // the sequential one before its timings mean anything.
    let a1 = analyze_dir_with(&dir, seq).unwrap();
    let an = analyze_dir_with(&dir, par).unwrap();
    assert_eq!(a1.events, an.events, "parallel events diverged");
    let identical = full_report(&a1) == full_report(&an)
        && format!("{:?}", a1.delays) == format!("{:?}", an.delays)
        && format!("{:?}", a1.unused_containers) == format!("{:?}", an.unused_containers);
    assert!(identical, "parallel report diverged from sequential");
    let events = a1.events.len();

    let ingest_seq = bench("ingest/1t", SAMPLES, || {
        LogStore::read_dir_with(&dir, seq).unwrap().total_records()
    });
    let ingest_par = bench(&format!("ingest/{threads}t"), SAMPLES, || {
        LogStore::read_dir_with(&dir, par).unwrap().total_records()
    });

    let store = LogStore::read_dir_with(&dir, par).unwrap();
    let extract_seq = bench("extract/1t", SAMPLES, || {
        extract_all_with(&store, seq).len()
    });
    let extract_par = bench(&format!("extract/{threads}t"), SAMPLES, || {
        extract_all_with(&store, par).len()
    });

    let analyze_seq = bench("analyze_store/1t", SAMPLES, || {
        analyze_store_with(&store, seq).delays.len()
    });
    let analyze_par = bench(&format!("analyze_store/{threads}t"), SAMPLES, || {
        analyze_store_with(&store, par).delays.len()
    });

    let e2e_seq = bench("end_to_end/1t", SAMPLES, || {
        analyze_dir_with(&dir, seq).unwrap().delays.len()
    });
    let e2e_par = bench(&format!("end_to_end/{threads}t"), SAMPLES, || {
        analyze_dir_with(&dir, par).unwrap().delays.len()
    });

    let stages = [
        stage_json("ingest", ingest_seq, ingest_par),
        stage_json("extract", extract_seq, extract_par),
        stage_json("analyze_store", analyze_seq, analyze_par),
        stage_json("end_to_end", e2e_seq, e2e_par),
    ];
    let stages_json = format!(
        "{{{}}}",
        stages
            .iter()
            .map(|(k, v)| format!("{}: {}", json_str(k), v))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let json = json_object(&[
        ("bench", json_str("sdchecker_pipeline")),
        ("corpus_nodes", "26".to_string()),
        ("corpus_apps", APPS.to_string()),
        ("corpus_records", total_records.to_string()),
        ("corpus_bytes", total_bytes.to_string()),
        ("corpus_events", events.to_string()),
        ("threads", threads.to_string()),
        ("threads_requested", requested.to_string()),
        ("threads_effective", threads.to_string()),
        ("hardware_threads", hardware.to_string()),
        ("samples", SAMPLES.to_string()),
        ("identical_output", "true".to_string()),
        (
            "end_to_end_speedup",
            json_f64(e2e_seq.median_s / e2e_par.median_s),
        ),
        ("stages", stages_json),
    ]);

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sdchecker.json");
    std::fs::write(out, &json).unwrap();
    println!("wrote {out}");

    let _ = std::fs::remove_dir_all(&dir);
}
