//! One bench per paper table/figure: each runs the corresponding
//! experiment scenario end to end (simulate → mine logs → decompose) at
//! `Scale::Quick`, so `cargo bench` regenerates every result's code path
//! and tracks its cost. The full-scale numbers come from the
//! `run_experiments` binary; these benches are the regression harness.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{
    bug_finding, fig11, fig12, fig13, fig4, fig5, fig6, fig7, fig8, fig9, table2, Scale,
};

const SEED: u64 = 2018;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig4_overall_delays", |b| {
        b.iter(|| fig4::scenario(Scale::Quick, SEED).measured().len())
    });
    g.bench_function("fig5_input_size_20gb", |b| {
        b.iter(|| fig5::scenario(20.0 * 1024.0, Scale::Quick, SEED).measured().len())
    });
    g.bench_function("fig6_executors_16", |b| {
        b.iter(|| fig6::scenario(16, Scale::Quick, SEED).measured().len())
    });
    g.bench_function("fig7_schedulers_alloc", |b| {
        b.iter(|| {
            fig7::scenario_alloc(true, Scale::Quick, SEED).measured().len()
                + fig7::scenario_alloc(false, Scale::Quick, SEED).measured().len()
        })
    });
    g.bench_function("table2_throughput_100pct", |b| {
        b.iter(|| table2::throughput_at(1.0, Scale::Quick, SEED) as u64)
    });
    g.bench_function("fig8_localization_8gb", |b| {
        b.iter(|| fig8::scenario(8192.0, Scale::Quick, SEED).measured().len())
    });
    g.bench_function("fig9_launching_mixed", |b| {
        b.iter(|| fig9::scenario_mixed(Scale::Quick, SEED).0.measured().len())
    });
    g.bench_function("fig11_inapp_x4_files", |b| {
        b.iter(|| fig11::scenario_files(4, false, Scale::Quick, SEED).measured().len())
    });
    g.bench_function("fig12_io_interference_100w", |b| {
        b.iter(|| fig12::scenario(100, Scale::Quick, SEED).measured().len())
    });
    g.bench_function("fig13_cpu_interference_16k", |b| {
        b.iter(|| fig13::scenario(16, Scale::Quick, SEED).measured().len())
    });
    g.bench_function("bug_finding_overalloc", |b| {
        b.iter(|| {
            bug_finding::scenario(2, Scale::Quick, SEED)
                .analysis
                .unused_containers
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
