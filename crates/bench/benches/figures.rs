//! One bench per paper table/figure: each runs the corresponding
//! experiment scenario end to end (simulate → mine logs → decompose) at
//! `Scale::Quick`, so `cargo bench` regenerates every result's code path
//! and tracks its cost. The full-scale numbers come from the
//! `run_experiments` binary; these benches are the regression harness.
//!
//! Run with `cargo bench --bench figures`.

use experiments::{
    bug_finding, fig11, fig12, fig13, fig4, fig5, fig6, fig7, fig8, fig9, table2, Scale,
};
use sd_bench::bench;

const SEED: u64 = 2018;
const SAMPLES: usize = 10;

fn main() {
    bench("fig4_overall_delays", SAMPLES, || {
        fig4::scenario(Scale::Quick, SEED).measured().len()
    });
    bench("fig5_input_size_20gb", SAMPLES, || {
        fig5::scenario(20.0 * 1024.0, Scale::Quick, SEED)
            .measured()
            .len()
    });
    bench("fig6_executors_16", SAMPLES, || {
        fig6::scenario(16, Scale::Quick, SEED).measured().len()
    });
    bench("fig7_schedulers_alloc", SAMPLES, || {
        fig7::scenario_alloc(true, Scale::Quick, SEED)
            .measured()
            .len()
            + fig7::scenario_alloc(false, Scale::Quick, SEED)
                .measured()
                .len()
    });
    bench("table2_throughput_100pct", SAMPLES, || {
        table2::throughput_at(1.0, Scale::Quick, SEED) as u64
    });
    bench("fig8_localization_8gb", SAMPLES, || {
        fig8::scenario(8192.0, Scale::Quick, SEED).measured().len()
    });
    bench("fig9_launching_mixed", SAMPLES, || {
        fig9::scenario_mixed(Scale::Quick, SEED).0.measured().len()
    });
    bench("fig11_inapp_x4_files", SAMPLES, || {
        fig11::scenario_files(4, false, Scale::Quick, SEED)
            .measured()
            .len()
    });
    bench("fig12_io_interference_100w", SAMPLES, || {
        fig12::scenario(100, Scale::Quick, SEED).measured().len()
    });
    bench("fig13_cpu_interference_16k", SAMPLES, || {
        fig13::scenario(16, Scale::Quick, SEED).measured().len()
    });
    bench("bug_finding_overalloc", SAMPLES, || {
        bug_finding::scenario(2, Scale::Quick, SEED)
            .analysis
            .unused_containers
            .len()
    });
}
