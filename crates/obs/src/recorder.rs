//! The sharded recorder: spans, counters, gauges, histograms.
//!
//! Everything funnels through a [`Recorder`]. Disabled (the default) every
//! operation is a single relaxed atomic load and an early return — no
//! timestamps are taken, no strings formatted, no locks touched — so
//! instrumented hot paths cost nothing measurable when observability is
//! off. Enabled, each thread writes to one of a small fixed set of shards
//! (picked by its logical thread id), so worker pools like `logmodel::par`
//! never contend on a single registry lock.
//!
//! Aggregation happens only at [`Recorder::snapshot`] time and is
//! order-independent: counter and histogram totals are identical for any
//! thread count, which is what lets tests assert exact metric values.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::{Histogram, MetricKey, Snapshot, SpanRecord};
use crate::sketch::QuantileSketch;

/// Shard count. A small power of two: enough that a worker pool on a
/// typical machine rarely collides, cheap to merge at snapshot time.
const SHARDS: usize = 16;

#[derive(Default)]
struct ShardState {
    counters: std::collections::BTreeMap<MetricKey, u64>,
    gauges_max: std::collections::BTreeMap<MetricKey, f64>,
    gauges_set: std::collections::BTreeMap<MetricKey, (u64, f64)>,
    histograms: std::collections::BTreeMap<MetricKey, Histogram>,
    sketches: std::collections::BTreeMap<MetricKey, QuantileSketch>,
    spans: Vec<SpanRecord>,
    threads: Vec<(u64, String)>,
}

struct Shard {
    state: Mutex<ShardState>,
}

impl Shard {
    const fn new() -> Shard {
        Shard {
            state: Mutex::new(ShardState {
                counters: std::collections::BTreeMap::new(),
                gauges_max: std::collections::BTreeMap::new(),
                gauges_set: std::collections::BTreeMap::new(),
                histograms: std::collections::BTreeMap::new(),
                sketches: std::collections::BTreeMap::new(),
                spans: Vec::new(),
                threads: Vec::new(),
            }),
        }
    }
}

thread_local! {
    /// `(recorder identity, logical tid)` for the recorder this thread
    /// last talked to. Worker threads are short-lived (`thread::scope`),
    /// so registration happens on first use per thread.
    static THREAD_TID: Cell<Option<(usize, u64)>> = const { Cell::new(None) };
}

/// A span/metric recorder. See the module docs for the design.
pub struct Recorder {
    enabled: AtomicBool,
    next_tid: AtomicU64,
    /// Global write stamp ordering `gauge_set` calls across shards.
    stamp: AtomicU64,
    anchor: Mutex<Option<Instant>>,
    shards: [Shard; SHARDS],
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A disabled, empty recorder (usable in `static` position).
    pub const fn new() -> Recorder {
        Recorder {
            enabled: AtomicBool::new(false),
            next_tid: AtomicU64::new(0),
            stamp: AtomicU64::new(0),
            anchor: Mutex::new(None),
            shards: [
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
                Shard::new(),
            ],
        }
    }

    /// Turn recording on. The first enable anchors the trace clock; span
    /// timestamps are offsets from this instant.
    pub fn enable(&self) {
        let mut anchor = self.anchor.lock().unwrap_or_else(|e| e.into_inner());
        if anchor.is_none() {
            *anchor = Some(Instant::now());
        }
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Turn recording off (data is kept until [`Recorder::reset`]).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// Whether recording is on. This is the only cost instrumentation
    /// pays when observability is disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Drop all recorded data and re-anchor the trace clock.
    pub fn reset(&self) {
        for shard in &self.shards {
            *shard.state.lock().unwrap_or_else(|e| e.into_inner()) = ShardState::default();
        }
        *self.anchor.lock().unwrap_or_else(|e| e.into_inner()) = Some(Instant::now());
    }

    /// The logical thread id of the calling thread, registering it (and
    /// its display name) on first use.
    fn tid(&self) -> u64 {
        let me = self as *const Recorder as usize;
        if let Some((owner, tid)) = THREAD_TID.with(|c| c.get()) {
            if owner == me {
                return tid;
            }
        }
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("worker-{tid}"));
        self.shard(tid)
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .threads
            .push((tid, name));
        THREAD_TID.with(|c| c.set(Some((me, tid))));
        tid
    }

    fn shard(&self, tid: u64) -> &Shard {
        &self.shards[(tid as usize) % SHARDS]
    }

    /// Microseconds since the enable-time anchor.
    fn offset_us(&self, at: Instant) -> u64 {
        let anchor = self.anchor.lock().unwrap_or_else(|e| e.into_inner());
        match *anchor {
            Some(a) => at.saturating_duration_since(a).as_micros() as u64,
            None => 0,
        }
    }

    /// Start a wall-clock span. The returned guard records a trace event
    /// on drop; guards nest naturally (RAII), giving the hierarchical
    /// span tree per thread. A no-op when disabled.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard { inner: None };
        }
        SpanGuard {
            inner: Some(SpanInner {
                rec: self,
                name,
                tid: self.tid(),
                start: Instant::now(),
                args: Vec::new(),
            }),
        }
    }

    /// Add `n` to an unlabeled counter.
    #[inline]
    pub fn count(&self, name: &'static str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        self.count_key(MetricKey::plain(name), n);
    }

    /// Add `n` to a labeled counter.
    #[inline]
    pub fn count_labeled(&self, name: &'static str, labels: &[(&'static str, &str)], n: u64) {
        if !self.is_enabled() {
            return;
        }
        self.count_key(MetricKey::labeled(name, labels), n);
    }

    fn count_key(&self, key: MetricKey, n: u64) {
        let tid = self.tid();
        let mut st = self
            .shard(tid)
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *st.counters.entry(key).or_insert(0) += n;
    }

    /// Raise a high-water-mark gauge to at least `v`.
    pub fn gauge_max(&self, name: &'static str, v: f64) {
        if !self.is_enabled() {
            return;
        }
        let tid = self.tid();
        let mut st = self
            .shard(tid)
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let slot = st.gauges_max.entry(MetricKey::plain(name)).or_insert(v);
        if v > *slot {
            *slot = v;
        }
    }

    /// Set a gauge. Concurrent setters resolve by write order (a global
    /// stamp), so the latest write wins regardless of shard.
    pub fn gauge_set(&self, name: &'static str, v: f64) {
        if !self.is_enabled() {
            return;
        }
        // AcqRel: the stamp decides which concurrent set "wins" at merge
        // time, so stamp order must be consistent with happens-before —
        // a set that observably follows another must get a larger stamp.
        let stamp = self.stamp.fetch_add(1, Ordering::AcqRel);
        let tid = self.tid();
        let mut st = self
            .shard(tid)
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        st.gauges_set.insert(MetricKey::plain(name), (stamp, v));
    }

    /// Observe `v` into a fixed-bucket histogram. All observation sites
    /// of one metric must pass the same `bounds`.
    pub fn observe(&self, name: &'static str, bounds: &'static [u64], v: u64) {
        if !self.is_enabled() {
            return;
        }
        let tid = self.tid();
        let mut st = self
            .shard(tid)
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        st.histograms
            .entry(MetricKey::plain(name))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Observe `v` into an unbounded-range quantile sketch. Unlike
    /// [`Recorder::observe`], no bucket bounds are needed: the sketch
    /// covers the whole `u64` range at a fixed relative accuracy.
    pub fn sketch_observe(&self, name: &'static str, v: u64) {
        if !self.is_enabled() {
            return;
        }
        self.sketch_key(MetricKey::plain(name), v);
    }

    /// Observe `v` into a labeled quantile sketch.
    pub fn sketch_observe_labeled(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        v: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.sketch_key(MetricKey::labeled(name, labels), v);
    }

    fn sketch_key(&self, key: MetricKey, v: u64) {
        let tid = self.tid();
        let mut st = self
            .shard(tid)
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        st.sketches.entry(key).or_default().observe(v);
    }

    /// Aggregate every shard into one immutable snapshot. Counter,
    /// histogram, and gauge values are independent of which thread
    /// recorded what; only span timings and thread ids vary run to run.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let mut gauges_set: std::collections::BTreeMap<MetricKey, (u64, f64)> =
            std::collections::BTreeMap::new();
        for shard in &self.shards {
            let st = shard.state.lock().unwrap_or_else(|e| e.into_inner());
            for (k, v) in &st.counters {
                *snap.counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, v) in &st.gauges_max {
                let slot = snap.gauges.entry(k.clone()).or_insert(*v);
                if *v > *slot {
                    *slot = *v;
                }
            }
            for (k, (stamp, v)) in &st.gauges_set {
                let slot = gauges_set.entry(k.clone()).or_insert((*stamp, *v));
                if *stamp >= slot.0 {
                    *slot = (*stamp, *v);
                }
            }
            for (k, h) in &st.histograms {
                snap.histograms
                    .entry(k.clone())
                    .and_modify(|acc| acc.merge(h))
                    .or_insert_with(|| h.clone());
            }
            for (k, s) in &st.sketches {
                snap.sketches
                    .entry(k.clone())
                    .and_modify(|acc| acc.merge(s))
                    .or_insert_with(|| s.clone());
            }
            snap.spans.extend(st.spans.iter().cloned());
            snap.threads.extend(st.threads.iter().cloned());
        }
        for (k, (_, v)) in gauges_set {
            debug_assert!(
                !snap.gauges.contains_key(&k),
                "gauge {} used both as set and max",
                k.render()
            );
            snap.gauges.insert(k, v);
        }
        snap.spans
            .sort_by(|a, b| (a.start_us, a.tid, a.name).cmp(&(b.start_us, b.tid, b.name)));
        snap.threads.sort();
        snap
    }
}

struct SpanInner<'r> {
    rec: &'r Recorder,
    name: &'static str,
    tid: u64,
    start: Instant,
    args: Vec<(&'static str, String)>,
}

/// RAII guard for an in-flight span; records a trace event when dropped.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing"]
pub struct SpanGuard<'r> {
    inner: Option<SpanInner<'r>>,
}

impl SpanGuard<'_> {
    /// Attach a `(key, value)` annotation. Formats only when the span is
    /// live (i.e. the recorder was enabled at span start).
    pub fn arg(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if let Some(inner) = self.inner.as_mut() {
            inner.args.push((key, value.to_string()));
        }
        self
    }

    /// Whether this span is actually recording.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end = Instant::now();
        let start_us = inner.rec.offset_us(inner.start);
        let dur_us = end.saturating_duration_since(inner.start).as_micros() as u64;
        let rec = SpanRecord {
            name: inner.name,
            tid: inner.tid,
            start_us,
            dur_us,
            args: inner.args,
        };
        let mut st = inner
            .rec
            .shard(inner.tid)
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        st.spans.push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::new();
        r.count("c_total", 5);
        r.gauge_set("g", 1.0);
        r.observe("h", &[10], 3);
        {
            let _s = r.span("s").arg("k", "v");
        }
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_sum_across_threads_deterministically() {
        let r = Recorder::new();
        r.enable();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        r.count("n_total", 1);
                        r.count_labeled("k_total", &[("kind", "a")], 2);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("n_total"), 8000);
        assert_eq!(snap.counter_labeled("k_total", &[("kind", "a")]), 16_000);
    }

    #[test]
    fn gauges_max_and_set_semantics() {
        let r = Recorder::new();
        r.enable();
        r.gauge_max("hwm", 3.0);
        r.gauge_max("hwm", 9.0);
        r.gauge_max("hwm", 5.0);
        r.gauge_set("last", 1.0);
        r.gauge_set("last", 2.5);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("hwm"), Some(9.0));
        assert_eq!(snap.gauge("last"), Some(2.5));
    }

    #[test]
    fn histograms_merge_across_threads() {
        const B: &[u64] = &[10, 100];
        let r = Recorder::new();
        r.enable();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in [1, 50, 500] {
                        r.observe("h", B, v);
                    }
                });
            }
        });
        let h = r
            .snapshot()
            .histograms
            .get(&MetricKey::plain("h"))
            .cloned()
            .unwrap();
        assert_eq!(h.counts, vec![4, 4, 4]);
        assert_eq!(h.count, 12);
        assert_eq!(h.sum, 4 * 551);
    }

    #[test]
    fn sketches_merge_across_threads_deterministically() {
        let single = {
            let r = Recorder::new();
            r.enable();
            for v in 0..800u64 {
                r.sketch_observe_labeled("delay_ms", &[("component", "total")], (v * 13) % 5000);
            }
            r.snapshot()
                .sketch_labeled("delay_ms", &[("component", "total")])
                .cloned()
                .unwrap()
        };
        let sharded = {
            let r = Recorder::new();
            r.enable();
            let rr = &r;
            std::thread::scope(|s| {
                for t in 0..8u64 {
                    s.spawn(move || {
                        for i in 0..100u64 {
                            let v = ((t * 100 + i) * 13) % 5000;
                            rr.sketch_observe_labeled("delay_ms", &[("component", "total")], v);
                        }
                    });
                }
            });
            r.snapshot()
                .sketch_labeled("delay_ms", &[("component", "total")])
                .cloned()
                .unwrap()
        };
        assert_eq!(single, sharded, "sketch must not depend on sharding");
        assert_eq!(single.count(), 800);
    }

    #[test]
    fn spans_nest_and_carry_args() {
        let r = Recorder::new();
        r.enable();
        {
            let _outer = r.span("outer").arg("x", 1);
            {
                let _inner = r.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.args, vec![("x", "1".to_string())]);
        assert_eq!(outer.tid, inner.tid);
        // Proper containment: inner starts no earlier and ends no later.
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
    }

    #[test]
    fn reset_clears_everything() {
        let r = Recorder::new();
        r.enable();
        r.count("c_total", 1);
        let _ = r.span("s");
        r.reset();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
        // Still enabled after reset.
        r.count("c_total", 2);
        assert_eq!(r.snapshot().counter("c_total"), 2);
    }

    #[test]
    fn threads_are_registered_with_names() {
        let r = Recorder::new();
        r.enable();
        r.count("c_total", 1);
        let snap = r.snapshot();
        assert_eq!(snap.threads.len(), 1);
    }
}
