//! Minimal JSON support: string escaping for the exporters and a small
//! recursive-descent parser so tests (and downstream tools) can validate
//! exporter output without external dependencies.

/// Escape a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` deterministically: integers without a fraction render
/// as integers, everything else uses Rust's shortest-roundtrip `{:?}`.
pub fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keeping key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry a byte offset.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let n = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-consume as UTF-8: back up and take the full char.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty char")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn fmt_f64_is_stable() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-2.0), "-2");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(1.25), "1.25");
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn roundtrips_escaped_strings() {
        let s = "quote \" slash \\ newline \n tab \t";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn parses_unicode_escape() {
        let v = parse("\"\\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("A"));
    }
}
