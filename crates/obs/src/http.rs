//! A tiny dependency-free HTTP/1.1 server for observability endpoints.
//!
//! `sdcheckerd` (and anything else that wants a scrape surface) needs
//! exactly one thing from HTTP: answer small GET requests with small
//! text bodies. This module provides that on `std::net::TcpListener`
//! alone — no async runtime, no external crates — with a cooperative
//! shutdown flag so a daemon can stop serving cleanly on SIGTERM.
//!
//! The server is deliberately minimal: requests are parsed to a method
//! and a path (query strings and headers beyond the terminating blank
//! line are ignored), every response carries `Content-Length` and
//! `Connection: close`, and each connection is handled inline on the
//! serving thread. A Prometheus scraper or a `curl` loop is the intended
//! client, not a browser fleet.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// The content type Prometheus expects from a `/metrics` endpoint
/// (text exposition format version 0.0.4).
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Maximum bytes of request head (request line + headers) we accept.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// How long one connection may take to deliver its *entire* request
/// head. This is an overall deadline, not a per-read timeout: a client
/// trickling one byte every 1.9 s can otherwise hold the single-threaded
/// accept loop hostage indefinitely.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// How long writing one response may take before the connection is
/// abandoned (a client that never drains its receive buffer).
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// How often the accept loop wakes to check the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// A parsed request: method and path, nothing more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `HEAD`, ... (uppercased as sent).
    pub method: String,
    /// The request target, e.g. `/metrics` (query string stripped).
    pub path: String,
}

/// A response to write back: status, content type, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` response.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: content_type.to_string(),
            body: body.into(),
        }
    }

    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<Vec<u8>>) -> Response {
        Response::ok("application/json", body)
    }

    /// A plain-text response with an arbitrary status code.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: body.into(),
        }
    }

    /// The stock `404 Not Found` response.
    pub fn not_found() -> Response {
        Response::text(404, "not found\n")
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }
}

/// A bound listener serving requests until a shutdown flag is raised.
#[derive(Debug)]
pub struct HttpServer {
    listener: TcpListener,
}

impl HttpServer {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept so the serve loop can observe `stop`
        // between connections instead of parking forever in accept(2).
        listener.set_nonblocking(true)?;
        Ok(HttpServer { listener })
    }

    /// The actual bound address (resolves port 0 to the assigned port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve requests until `stop` turns true. Each accepted connection
    /// is parsed, handed to `handler`, answered, and closed; connection-
    /// level errors (malformed requests, client hangups) are answered
    /// with `400` where possible and never abort the loop.
    pub fn serve<F>(&self, stop: &AtomicBool, handler: F) -> io::Result<()>
    where
        F: Fn(&Request) -> Response,
    {
        while !stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Best effort per connection: a broken client must
                    // not take the scrape endpoint down.
                    let _ = handle_connection(stream, &handler);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Read the request head, dispatch to the handler, write the response.
/// Abusive clients get a status, not a hung listener: a head that takes
/// longer than [`READ_TIMEOUT`] in total draws `408`, one larger than
/// [`MAX_HEAD_BYTES`] draws `431`, anything else malformed draws `400`.
fn handle_connection<F>(mut stream: TcpStream, handler: &F) -> io::Result<()>
where
    F: Fn(&Request) -> Response,
{
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let head = match read_head(&mut stream) {
        Ok(head) => head,
        Err(e) => {
            let response = match e.kind() {
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => {
                    Response::text(408, "request timeout\n")
                }
                io::ErrorKind::InvalidData => Response::text(431, "request head too large\n"),
                _ => Response::text(400, "bad request\n"),
            };
            let _ = write_response(&mut stream, &response);
            return Ok(());
        }
    };
    let response = match parse_request(&head) {
        Some(req) if req.method == "GET" || req.method == "HEAD" => {
            // A panicking handler (a bug on one render path, a poisoned
            // invariant) must cost one response, not the serving thread:
            // catch it and degrade to 503 so the scrape surface and every
            // other endpoint stay up.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&req))).unwrap_or_else(
                |_| Response::text(503, "handler panicked; endpoint temporarily unavailable\n"),
            )
        }
        Some(_) => Response::text(405, "method not allowed\n"),
        None => Response::text(400, "bad request\n"),
    };
    write_response(&mut stream, &response)
}

/// Read bytes until the `\r\n\r\n` head terminator (or a size/time cap).
///
/// The per-read timeout shrinks toward an overall [`READ_TIMEOUT`]
/// deadline, so slow-loris clients (one byte per read, each just under
/// the per-read limit) still get cut off at the deadline with a
/// `TimedOut` error rather than dripping forever.
fn read_head(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let deadline = std::time::Instant::now() + READ_TIMEOUT;
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 1024];
    loop {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request head deadline exceeded",
            ));
        }
        // set_read_timeout rejects a zero Duration; the guard above
        // keeps `remaining` positive.
        stream.set_read_timeout(Some(remaining))?;
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "request head deadline exceeded",
                ));
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before request head",
            ));
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            return Ok(head);
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
    }
}

/// Parse `METHOD /path HTTP/1.x` out of the request head.
fn parse_request(head: &[u8]) -> Option<Request> {
    let text = String::from_utf8_lossy(head);
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/") {
        return None;
    }
    // Strip any query string; the endpoints here take no parameters.
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return None;
    }
    Some(Request { method, path })
}

/// Write the status line, minimal headers, and body.
fn write_response(stream: &mut TcpStream, r: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        r.status,
        r.reason(),
        r.content_type,
        r.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&r.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_and_shuts_down() {
        let server = HttpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            server
                .serve(&stop2, |req| match req.path.as_str() {
                    "/metrics" => Response::ok(PROMETHEUS_CONTENT_TYPE, "x_total 1\n"),
                    "/health" => Response::json("{\"ok\": true}"),
                    _ => Response::not_found(),
                })
                .unwrap();
        });

        let got = roundtrip(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 200 OK\r\n"), "{got}");
        assert!(
            got.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
            "{got}"
        );
        assert!(got.ends_with("x_total 1\n"), "{got}");

        let got = roundtrip(addr, "GET /health?verbose=1 HTTP/1.1\r\n\r\n");
        assert!(got.contains("application/json"), "{got}");
        assert!(got.ends_with("{\"ok\": true}"), "{got}");

        let got = roundtrip(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 404 Not Found\r\n"), "{got}");

        let got = roundtrip(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 405"), "{got}");

        let got = roundtrip(addr, "garbage\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 400"), "{got}");

        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn abusive_clients_get_statuses_not_hung_threads() {
        let server = HttpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            server.serve(&stop2, |_| Response::json("{}")).unwrap();
        });

        // A half-open socket: the client sends a partial request line and
        // then goes silent. The server must answer 408 at the overall
        // deadline instead of waiting on the connection forever.
        let started = std::time::Instant::now();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /metrics HT").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408 Request Timeout\r\n"), "{out}");
        assert!(
            started.elapsed() < READ_TIMEOUT + Duration::from_secs(3),
            "half-open connection held the listener for {:?}",
            started.elapsed()
        );

        // And with the listener back, a normal request still works.
        let got = roundtrip(addr, "GET / HTTP/1.1\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 200 OK\r\n"), "{got}");

        // An oversized head draws 431, not an unbounded buffer.
        let mut s = TcpStream::connect(addr).unwrap();
        let filler = format!("GET / HTTP/1.1\r\nX-Filler: {}\r\n", "a".repeat(1000));
        let mut sent = 0;
        while sent <= MAX_HEAD_BYTES {
            if s.write_all(filler.as_bytes()).is_err() {
                break; // server already answered and closed
            }
            sent += filler.len();
        }
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(
            out.starts_with("HTTP/1.1 431 Request Header Fields Too Large\r\n"),
            "{out}"
        );

        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn panicking_handler_degrades_to_503_and_keeps_serving() {
        let server = HttpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            server
                .serve(&stop2, |req| match req.path.as_str() {
                    "/boom" => panic!("render path bug"),
                    _ => Response::json("{}"),
                })
                .unwrap();
        });

        // Silence the default panic hook's backtrace spam for the
        // deliberate panic below; restore it afterwards.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let got = roundtrip(addr, "GET /boom HTTP/1.1\r\n\r\n");
        std::panic::set_hook(prev_hook);
        assert!(
            got.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{got}"
        );

        // The serving thread survived: the next request still works.
        let got = roundtrip(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(got.starts_with("HTTP/1.1 200 OK\r\n"), "{got}");

        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn parse_request_shapes() {
        let req = parse_request(b"GET /report.json?x=1 HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/report.json");
        assert!(parse_request(b"GET\r\n\r\n").is_none());
        assert!(parse_request(b"GET /x SMTP/1.0\r\n\r\n").is_none());
        assert!(parse_request(b"GET relative HTTP/1.0\r\n\r\n").is_none());
    }
}
