//! Gauges sampled from closures at scrape time.
//!
//! The recorder's `gauge_set`/`gauge_max` push values when something
//! happens. Lag-style metrics ("bytes behind the tail", "apps currently
//! in flight") are the opposite: they have a current value at all times
//! and the interesting moment is the *scrape*, not the update. A
//! [`GaugeRegistry`] holds `Fn() -> f64` closures and folds their live
//! values into a [`Snapshot`] just before it is rendered, so `/metrics`
//! always reports the instantaneous state without the producer having
//! to publish on every change.

use std::sync::Mutex;

use crate::metrics::{MetricKey, Snapshot};

type GaugeFn = Box<dyn Fn() -> f64 + Send + Sync>;

/// A set of late-bound gauges, each evaluated when sampled.
#[derive(Default)]
pub struct GaugeRegistry {
    entries: Mutex<Vec<(MetricKey, GaugeFn)>>,
}

impl GaugeRegistry {
    /// An empty registry.
    pub fn new() -> GaugeRegistry {
        GaugeRegistry::default()
    }

    /// Register an unlabeled gauge backed by `f`.
    pub fn register(&self, name: &'static str, f: impl Fn() -> f64 + Send + Sync + 'static) {
        self.register_labeled(name, &[], f);
    }

    /// Register a labeled gauge backed by `f`. Registering the same
    /// name + labels twice keeps both entries; the later one wins at
    /// sample time, so re-registration behaves like replacement.
    pub fn register_labeled(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        let key = MetricKey::labeled(name, labels);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.push((key, Box::new(f)));
    }

    /// Evaluate every registered gauge and merge the values into `snap`
    /// (overwriting any pushed gauge with the same key).
    pub fn sample_into(&self, snap: &mut Snapshot) {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for (key, f) in entries.iter() {
            snap.gauges.insert(key.clone(), f());
        }
    }

    /// Number of registered gauges.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for GaugeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GaugeRegistry")
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn samples_live_values_into_snapshot() {
        let reg = GaugeRegistry::new();
        assert!(reg.is_empty());
        let lag = Arc::new(AtomicU64::new(7));
        let lag2 = Arc::clone(&lag);
        reg.register("tail_lag_bytes", move || {
            lag2.load(Ordering::Relaxed) as f64
        });
        reg.register_labeled("tail_lag_ms", &[("source", "rm")], || 3.0);
        assert_eq!(reg.len(), 2);

        let mut snap = Snapshot::default();
        reg.sample_into(&mut snap);
        let bytes_key = MetricKey::plain("tail_lag_bytes");
        assert_eq!(snap.gauges.get(&bytes_key), Some(&7.0));

        lag.store(42, Ordering::Relaxed);
        reg.sample_into(&mut snap);
        assert_eq!(snap.gauges.get(&bytes_key), Some(&42.0));

        let ms_key = MetricKey::labeled("tail_lag_ms", &[("source", "rm")]);
        assert_eq!(snap.gauges.get(&ms_key), Some(&3.0));
    }
}
