//! A mergeable fixed-size quantile sketch for fleet-scale delay
//! populations.
//!
//! [`QuantileSketch`] is a DDSketch-style log-bucketed histogram over
//! `u64` samples (milliseconds, in this workspace): bucket `k` covers the
//! geometric interval `(γ^(k-1), γ^k]` with `γ = (1+α)/(1−α)` for the
//! relative accuracy `α = 0.5 %`. That gives three properties the raw
//! [`Histogram`](crate::Histogram) lacks:
//!
//! * **bounded relative error** — any quantile estimate is within `α` of
//!   an actual sample value near that rank, independent of the value
//!   range, so p50/p95/p99 of scheduling delays from 1 ms to days stay
//!   within 1 % of the exact order statistics;
//! * **fixed size** — the bucket array never grows past
//!   [`QuantileSketch::BUCKETS`] entries no matter how many samples
//!   stream in, so a fleet of millions of applications aggregates in a
//!   few tens of kilobytes without retaining raw samples;
//! * **deterministic, order-independent merge** — [`merge`] is a
//!   bucket-wise sum plus min/max/count/sum folds, exactly like the
//!   sharded counter registry: any merge tree over any shard partition of
//!   the same sample multiset produces the same sketch, which is what
//!   lets worker pools stream observations and still export identical
//!   bytes for every thread count.
//!
//! [`merge`]: QuantileSketch::merge

/// Relative accuracy target: quantile estimates are within this fraction
/// of a true sample value at the queried rank.
pub const SKETCH_ALPHA: f64 = 0.005;

/// Version tag of the [`QuantileSketch::to_bytes`] wire format.
const SKETCH_WIRE_VERSION: u8 = 1;

/// A malformed [`QuantileSketch`] byte image. Decoding never panics: a
/// truncated, oversized, or internally inconsistent buffer surfaces
/// here so callers (checkpoint restore, for one) can degrade instead of
/// crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchCodecError(String);

impl std::fmt::Display for SketchCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sketch decode: {}", self.0)
    }
}

impl std::error::Error for SketchCodecError {}

/// Little cursor over a byte buffer for [`QuantileSketch::from_bytes`].
struct SketchReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SketchReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SketchCodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SketchCodecError("truncated buffer".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SketchCodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SketchCodecError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, SketchCodecError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
}

/// One exemplar: a concrete labeled sample retained alongside the
/// aggregate, so a tail quantile can be traced back to the instance that
/// produced it (the app id, in this workspace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// The sample value.
    pub value: u64,
    /// Caller-supplied identity of the sample's origin.
    pub label: String,
}

/// A mergeable, fixed-size quantile sketch over `u64` samples.
///
/// ```
/// use obs::QuantileSketch;
/// let mut a = QuantileSketch::new();
/// let mut b = QuantileSketch::new();
/// for v in 1..=500u64 {
///     a.observe(v);
/// }
/// for v in 501..=1000u64 {
///     b.observe(v);
/// }
/// a.merge(&b);
/// let p50 = a.quantile(0.5).unwrap();
/// assert!((p50 - 500.5).abs() / 500.5 < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Bucket counts: `counts[0]` is the exact-zero bucket, `counts[k]`
    /// (k ≥ 1) counts samples in `(γ^(k-2), γ^(k-1)]`, with the last
    /// bucket absorbing overflow. Allocated lazily on first observation.
    counts: Vec<u64>,
    /// Number of samples.
    count: u64,
    /// Sum of samples (for the mean).
    sum: u64,
    /// Exact minimum sample.
    min: u64,
    /// Exact maximum sample.
    max: u64,
    /// Largest labeled samples seen, sorted by `(value desc, label asc)`
    /// and truncated to [`QuantileSketch::EXEMPLAR_SLOTS`]. Kept as a
    /// pure function of the offered multiset, so observation and merge
    /// order never change which exemplars survive.
    exemplars: Vec<Exemplar>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// Fixed bucket-array size: one zero bucket plus enough log-spaced
    /// buckets to cover the whole `u64` range at [`SKETCH_ALPHA`]
    /// accuracy (`ln(2^64)/ln γ ≈ 4436`), rounded up.
    pub const BUCKETS: usize = 4440;

    /// Number of exemplar slots a sketch retains: the top samples by
    /// `(value desc, label asc)`.
    pub const EXEMPLAR_SLOTS: usize = 4;

    /// An empty sketch.
    pub const fn new() -> QuantileSketch {
        QuantileSketch {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            exemplars: Vec::new(),
        }
    }

    fn ln_gamma() -> f64 {
        ((1.0 + SKETCH_ALPHA) / (1.0 - SKETCH_ALPHA)).ln()
    }

    /// Bucket index of a sample.
    fn key(v: u64) -> usize {
        if v == 0 {
            return 0;
        }
        // ceil(log_γ v), clamped into the fixed array; v = 1 maps to
        // bucket 1.
        let k = ((v as f64).ln() / Self::ln_gamma()).ceil() as i64;
        (1 + k.max(0) as usize).min(Self::BUCKETS - 1)
    }

    /// Representative value of a bucket: the geometric midpoint of its
    /// interval, within `α` of every sample the bucket holds.
    fn representative(key: usize) -> f64 {
        if key == 0 {
            return 0.0;
        }
        ((key as f64 - 1.5) * Self::ln_gamma()).exp()
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; Self::BUCKETS];
        }
        self.counts[Self::key(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record one sample and offer it as an exemplar under `label`. The
    /// sample lands in the aggregate exactly as [`observe`] would put it
    /// there; the `(value, label)` pair additionally competes for the
    /// fixed exemplar slots.
    ///
    /// [`observe`]: QuantileSketch::observe
    pub fn observe_exemplar(&mut self, v: u64, label: &str) {
        self.observe(v);
        self.offer_exemplar(Exemplar {
            value: v,
            label: label.to_string(),
        });
    }

    /// Slot an exemplar candidate in: keep the top
    /// [`EXEMPLAR_SLOTS`](QuantileSketch::EXEMPLAR_SLOTS) of the offered
    /// multiset under `(value desc, label asc)`. Greedy top-K over a
    /// total order is order-independent, which keeps merged exports
    /// byte-identical for every shard partition.
    fn offer_exemplar(&mut self, e: Exemplar) {
        let pos = self
            .exemplars
            .partition_point(|x| x.value > e.value || (x.value == e.value && x.label < e.label));
        if pos >= Self::EXEMPLAR_SLOTS {
            return;
        }
        self.exemplars.insert(pos, e);
        self.exemplars.truncate(Self::EXEMPLAR_SLOTS);
    }

    /// The retained exemplars, best (largest value) first.
    pub fn exemplars(&self) -> &[Exemplar] {
        &self.exemplars
    }

    /// Fold another sketch in. Order-independent: any merge order over
    /// the same sample multiset yields an identical sketch.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; Self::BUCKETS];
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for e in &other.exemplars {
            self.offer_exemplar(e.clone());
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Bucket representative at a zero-based integer rank.
    fn value_at_rank(&self, rank: u64) -> f64 {
        let mut cum = 0u64;
        for (k, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                return Self::representative(k);
            }
        }
        self.max as f64
    }

    /// Quantile estimate (`q` in `[0, 1]`), `None` when empty. Mirrors
    /// the linear interpolation of `percentile_sorted` on bucket
    /// representatives, with the exact min/max pinning the extremes.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        if q == 0.0 {
            return Some(self.min as f64);
        }
        if q == 1.0 || self.count == 1 {
            return Some(self.max as f64);
        }
        let pos = q * (self.count - 1) as f64;
        let lo = pos.floor() as u64;
        let hi = pos.ceil() as u64;
        let frac = pos - lo as f64;
        let vlo = self.value_at_rank(lo);
        let vhi = if hi == lo {
            vlo
        } else {
            self.value_at_rank(hi)
        };
        let v = vlo + (vhi - vlo) * frac;
        Some(v.clamp(self.min as f64, self.max as f64))
    }

    /// Serialize to a self-contained byte image (std-only, no external
    /// codec). The bucket array is written sparsely as `(index, count)`
    /// pairs — most of the 4440 buckets are zero in practice — so a
    /// typical fleet sketch is a few hundred bytes. The image is
    /// versioned; [`from_bytes`](QuantileSketch::from_bytes) rejects
    /// anything it cannot reproduce exactly.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(SKETCH_WIRE_VERSION);
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.min.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        out.extend_from_slice(&(self.exemplars.len() as u32).to_le_bytes());
        for e in &self.exemplars {
            out.extend_from_slice(&e.value.to_le_bytes());
            out.extend_from_slice(&(e.label.len() as u32).to_le_bytes());
            out.extend_from_slice(e.label.as_bytes());
        }
        let nonzero: Vec<(usize, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(k, c)| (k, *c))
            .collect();
        out.extend_from_slice(&(nonzero.len() as u32).to_le_bytes());
        for (k, c) in nonzero {
            out.extend_from_slice(&(k as u32).to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Reconstruct a sketch from [`to_bytes`](QuantileSketch::to_bytes)
    /// output. Round-trips exactly: `from_bytes(s.to_bytes()) == s` for
    /// every reachable sketch, including the lazily-unallocated empty
    /// one. A damaged buffer yields an error, never a panic and never a
    /// silently wrong sketch.
    pub fn from_bytes(bytes: &[u8]) -> Result<QuantileSketch, SketchCodecError> {
        let mut r = SketchReader { buf: bytes, pos: 0 };
        let version = r.u8()?;
        if version != SKETCH_WIRE_VERSION {
            return Err(SketchCodecError(format!(
                "unsupported wire version {version}"
            )));
        }
        let count = r.u64()?;
        let sum = r.u64()?;
        let min = r.u64()?;
        let max = r.u64()?;
        let n_ex = r.u32()? as usize;
        if n_ex > Self::EXEMPLAR_SLOTS {
            return Err(SketchCodecError(format!("{n_ex} exemplars exceeds slots")));
        }
        let mut exemplars = Vec::with_capacity(n_ex);
        for _ in 0..n_ex {
            let value = r.u64()?;
            let len = r.u32()? as usize;
            let label = std::str::from_utf8(r.take(len)?)
                .map_err(|_| SketchCodecError("exemplar label is not UTF-8".into()))?
                .to_string();
            exemplars.push(Exemplar { value, label });
        }
        for w in exemplars.windows(2) {
            let ordered =
                w[0].value > w[1].value || (w[0].value == w[1].value && w[0].label < w[1].label);
            if !ordered {
                return Err(SketchCodecError("exemplars out of order".into()));
            }
        }
        let n_buckets = r.u32()? as usize;
        if n_buckets > Self::BUCKETS {
            return Err(SketchCodecError(format!(
                "{n_buckets} bucket entries exceeds {}",
                Self::BUCKETS
            )));
        }
        let mut counts = Vec::new();
        let mut bucket_total = 0u64;
        let mut prev_key: Option<usize> = None;
        for _ in 0..n_buckets {
            let k = r.u32()? as usize;
            let c = r.u64()?;
            if k >= Self::BUCKETS {
                return Err(SketchCodecError(format!("bucket index {k} out of range")));
            }
            if prev_key.is_some_and(|p| k <= p) {
                return Err(SketchCodecError("bucket indices not increasing".into()));
            }
            if c == 0 {
                return Err(SketchCodecError("zero bucket count encoded".into()));
            }
            prev_key = Some(k);
            if counts.is_empty() {
                counts = vec![0; Self::BUCKETS];
            }
            counts[k] = c;
            bucket_total = bucket_total
                .checked_add(c)
                .ok_or_else(|| SketchCodecError("bucket counts overflow".into()))?;
        }
        if bucket_total != count {
            return Err(SketchCodecError(format!(
                "bucket total {bucket_total} disagrees with count {count}"
            )));
        }
        if count == 0 && (min != u64::MAX || max != 0 || !exemplars.is_empty()) {
            return Err(SketchCodecError("non-canonical empty sketch".into()));
        }
        if count > 0 && min > max {
            return Err(SketchCodecError("min exceeds max".into()));
        }
        if r.pos != bytes.len() {
            return Err(SketchCodecError("trailing bytes".into()));
        }
        Ok(QuantileSketch {
            counts,
            count,
            sum,
            min,
            max,
            exemplars,
        })
    }

    /// Decode a serialized sketch and [`merge`](QuantileSketch::merge)
    /// it in, without the caller materializing the intermediate value.
    pub fn merge_from_bytes(&mut self, bytes: &[u8]) -> Result<(), SketchCodecError> {
        let other = Self::from_bytes(bytes)?;
        self.merge(&other);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn extremes_are_exact() {
        let mut s = QuantileSketch::new();
        for v in [7, 123, 99_000, 3] {
            s.observe(v);
        }
        assert_eq!(s.min(), Some(3));
        assert_eq!(s.max(), Some(99_000));
        assert_eq!(s.quantile(0.0), Some(3.0));
        assert_eq!(s.quantile(1.0), Some(99_000.0));
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 99_133);
    }

    #[test]
    fn quantiles_track_order_statistics_within_alpha() {
        // A 1..=10_000 grid: every quantile is known exactly.
        let mut s = QuantileSketch::new();
        for v in 1..=10_000u64 {
            s.observe(v);
        }
        for (q, want) in [
            (0.5, 5000.5),
            (0.9, 9000.1),
            (0.95, 9500.05),
            (0.99, 9900.01),
        ] {
            let got = s.quantile(q).unwrap();
            let rel = (got - want).abs() / want;
            assert!(rel < 0.01, "q={q}: got {got}, want {want}, rel {rel}");
        }
    }

    #[test]
    fn zero_values_have_their_own_bucket() {
        let mut s = QuantileSketch::new();
        for _ in 0..10 {
            s.observe(0);
        }
        s.observe(1000);
        assert_eq!(s.quantile(0.5), Some(0.0));
        assert_eq!(s.max(), Some(1000));
    }

    #[test]
    fn merge_is_order_independent_and_exactly_equal() {
        let vals: Vec<u64> = (0..500u64).map(|i| (i * 37 + 11) % 10_000).collect();
        let mut whole = QuantileSketch::new();
        for v in &vals {
            whole.observe(*v);
        }
        // Partition into 7 shards, merge in two different orders.
        let mut shards: Vec<QuantileSketch> = (0..7).map(|_| QuantileSketch::new()).collect();
        for (i, v) in vals.iter().enumerate() {
            shards[i % 7].observe(*v);
        }
        let mut fwd = QuantileSketch::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = QuantileSketch::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, rev, "merge order must not matter");
        assert_eq!(fwd, whole, "sharded merge must equal single-stream");
    }

    #[test]
    fn merging_empty_is_identity() {
        let mut s = QuantileSketch::new();
        s.observe(42);
        let before = s.clone();
        s.merge(&QuantileSketch::new());
        assert_eq!(s, before);
        let mut e = QuantileSketch::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn exemplars_keep_the_top_slots_in_any_order() {
        let offers: Vec<(u64, String)> = (0..40u64)
            .map(|i| ((i * 31) % 100, format!("app_{i:02}")))
            .collect();
        let mut fwd = QuantileSketch::new();
        for (v, l) in &offers {
            fwd.observe_exemplar(*v, l);
        }
        let mut rev = QuantileSketch::new();
        for (v, l) in offers.iter().rev() {
            rev.observe_exemplar(*v, l);
        }
        assert_eq!(fwd, rev, "exemplar retention must be order-independent");
        assert_eq!(fwd.exemplars().len(), QuantileSketch::EXEMPLAR_SLOTS);
        // The retained set is exactly the top-K of the offered multiset.
        let mut sorted = offers.clone();
        sorted.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (slot, (v, l)) in fwd.exemplars().iter().zip(sorted.iter()) {
            assert_eq!((slot.value, slot.label.as_str()), (*v, l.as_str()));
        }
        // Values are non-increasing, ties broken by label.
        for w in fwd.exemplars().windows(2) {
            assert!(w[0].value >= w[1].value);
        }
    }

    #[test]
    fn exemplars_merge_like_observations() {
        let offers: Vec<(u64, String)> =
            (0..30u64).map(|i| (i * 7 % 50, format!("a{i}"))).collect();
        let mut whole = QuantileSketch::new();
        for (v, l) in &offers {
            whole.observe_exemplar(*v, l);
        }
        let mut shards: Vec<QuantileSketch> = (0..3).map(|_| QuantileSketch::new()).collect();
        for (i, (v, l)) in offers.iter().enumerate() {
            shards[i % 3].observe_exemplar(*v, l);
        }
        let mut merged = QuantileSketch::new();
        for s in shards.iter().rev() {
            merged.merge(s);
        }
        assert_eq!(merged, whole, "sharded exemplars must equal single-stream");
    }

    #[test]
    fn plain_observe_keeps_exemplars_empty() {
        let mut s = QuantileSketch::new();
        s.observe(5);
        s.observe(10);
        assert!(s.exemplars().is_empty());
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let mut s = QuantileSketch::new();
        for v in [0, 1, 7, 123, 99_000, u64::MAX] {
            s.observe(v);
        }
        s.observe_exemplar(5_000, "application_1_0001");
        s.observe_exemplar(9_000, "application_1_0002");
        let back = QuantileSketch::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_sketch_round_trips_to_canonical_empty() {
        let s = QuantileSketch::new();
        let back = QuantileSketch::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
        // The lazily-unallocated bucket array is preserved, so equality
        // with a fresh sketch (not just value equality) holds.
        assert_eq!(back, QuantileSketch::new());
    }

    #[test]
    fn merge_from_bytes_equals_plain_merge() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for v in 0..200u64 {
            a.observe(v * 13 % 999);
            b.observe_exemplar(v * 7 % 777, &format!("app{v}"));
        }
        let mut via_bytes = a.clone();
        via_bytes.merge_from_bytes(&b.to_bytes()).unwrap();
        let mut direct = a.clone();
        direct.merge(&b);
        assert_eq!(via_bytes, direct);
    }

    #[test]
    fn damaged_buffers_error_instead_of_panicking() {
        let mut s = QuantileSketch::new();
        for v in [3, 9, 81, 6561] {
            s.observe_exemplar(v, "x");
        }
        let good = s.to_bytes();
        assert!(QuantileSketch::from_bytes(&[]).is_err(), "empty buffer");
        for cut in 1..good.len() {
            assert!(
                QuantileSketch::from_bytes(&good[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        let mut version = good.clone();
        version[0] = 99;
        assert!(QuantileSketch::from_bytes(&version).is_err(), "bad version");
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(
            QuantileSketch::from_bytes(&trailing).is_err(),
            "trailing bytes"
        );
        // Flip the stored count so it disagrees with the bucket totals.
        let mut skew = good.clone();
        skew[1] ^= 0xff;
        assert!(
            QuantileSketch::from_bytes(&skew).is_err(),
            "count/bucket disagreement"
        );
    }

    #[test]
    fn huge_values_clamp_into_overflow_bucket() {
        let mut s = QuantileSketch::new();
        s.observe(u64::MAX);
        s.observe(u64::MAX - 1);
        assert_eq!(s.count(), 2);
        assert_eq!(s.quantile(1.0), Some(u64::MAX as f64));
        // Estimates stay finite and clamped to the observed range.
        let q = s.quantile(0.5).unwrap();
        assert!(q.is_finite() && q <= u64::MAX as f64);
    }
}
