//! Metric identities and aggregated snapshots.
//!
//! A metric is identified by a static name plus an ordered list of
//! `(label, value)` pairs — the Prometheus data model, kept deliberately
//! tiny. All aggregation is order-independent (counters sum, max-gauges
//! max, set-gauges resolve by a global write stamp, histogram buckets
//! sum), which is what makes totals deterministic for any worker-thread
//! count even though which shard recorded what is not.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::sketch::QuantileSketch;

/// A metric identity: name plus ordered labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Metric name (Prometheus-style snake case).
    pub name: &'static str,
    /// Ordered `(label, value)` pairs. Call sites must use one label
    /// order per name for keys to aggregate.
    pub labels: Vec<(&'static str, String)>,
}

impl MetricKey {
    /// Key with no labels.
    pub fn plain(name: &'static str) -> MetricKey {
        MetricKey {
            name,
            labels: Vec::new(),
        }
    }

    /// Key with labels (values are copied).
    pub fn labeled(name: &'static str, labels: &[(&'static str, &str)]) -> MetricKey {
        MetricKey {
            name,
            labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
        }
    }

    /// Render as `name` or `name{k="v",...}` (the Prometheus exposition
    /// identity, also used as the JSON object key).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let mut out = String::from(self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", crate::json::escape(v));
        }
        out.push('}');
        out
    }
}

/// A fixed-bucket histogram: `counts[i]` counts observations `<=
/// bounds[i]`, with one overflow bucket at the end (`counts.len() ==
/// bounds.len() + 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket bounds, ascending.
    pub bounds: &'static [u64],
    /// Per-bucket observation counts (last = overflow).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    pub(crate) fn new(bounds: &'static [u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    pub(crate) fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    pub(crate) fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// One completed span, ready for trace export.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Static span name (dynamic detail goes in `args`).
    pub name: &'static str,
    /// Logical thread id (assigned in first-use order).
    pub tid: u64,
    /// Start offset from the recorder's enable-time anchor, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Free-form `(key, value)` annotations.
    pub args: Vec<(&'static str, String)>,
}

/// An aggregated, immutable view of everything a recorder captured.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters (summed across shards).
    pub counters: BTreeMap<MetricKey, u64>,
    /// Gauges: max-gauges keep the maximum, set-gauges the latest write.
    pub gauges: BTreeMap<MetricKey, f64>,
    /// Fixed-bucket histograms (bucket-wise summed).
    pub histograms: BTreeMap<MetricKey, Histogram>,
    /// Quantile sketches (bucket-wise summed, order-independent).
    pub sketches: BTreeMap<MetricKey, QuantileSketch>,
    /// All completed spans, sorted by `(start_us, tid, name)`.
    pub spans: Vec<SpanRecord>,
    /// `(tid, thread name)` for every thread that recorded anything.
    pub threads: Vec<(u64, String)>,
}

impl Snapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters
            .get(&MetricKey::plain(name))
            .copied()
            .unwrap_or(0)
    }

    /// Labeled counter value, 0 when absent.
    pub fn counter_labeled(&self, name: &'static str, labels: &[(&'static str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::labeled(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Gauge value, if present.
    pub fn gauge(&self, name: &'static str) -> Option<f64> {
        self.gauges.get(&MetricKey::plain(name)).copied()
    }

    /// Quantile sketch for a plain key, if present.
    pub fn sketch(&self, name: &'static str) -> Option<&QuantileSketch> {
        self.sketches.get(&MetricKey::plain(name))
    }

    /// Quantile sketch for a labeled key, if present.
    pub fn sketch_labeled(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Option<&QuantileSketch> {
        self.sketches.get(&MetricKey::labeled(name, labels))
    }

    /// Sum of one counter name across all label combinations.
    pub fn counter_sum(&self, name: &'static str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_renders_prometheus_identity() {
        assert_eq!(MetricKey::plain("x_total").render(), "x_total");
        let k = MetricKey::labeled("ev", &[("kind", "A"), ("src", "rm")]);
        assert_eq!(k.render(), "ev{kind=\"A\",src=\"rm\"}");
    }

    #[test]
    fn histogram_buckets_and_merge() {
        const B: &[u64] = &[10, 100];
        let mut h = Histogram::new(B);
        for v in [1, 10, 11, 1000] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!((h.sum, h.count), (1022, 4));
        let mut h2 = Histogram::new(B);
        h2.observe(5);
        h2.merge(&h);
        assert_eq!(h2.counts, vec![3, 1, 1]);
        assert_eq!(h2.count, 5);
    }
}
