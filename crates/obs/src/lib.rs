//! # obs — spans, counters, and trace/metrics export for the pipeline
//!
//! SDchecker's whole point is making an opaque scheduling stack
//! observable by mining its logs; this crate applies the same lesson to
//! our own code. It is a dependency-free observability substrate with
//! three pieces:
//!
//! * **hierarchical spans** ([`Recorder::span`]) — RAII wall-clock
//!   timers with thread attribution; nested guards produce the span
//!   tree Perfetto renders as a flame chart;
//! * **typed metrics** — monotonic counters, set/max gauges, and
//!   fixed-bucket histograms behind a sharded registry that worker
//!   pools (`logmodel::par`) write to without contending;
//! * **exporters** — Chrome trace-event JSON ([`chrome_trace`],
//!   loadable in `chrome://tracing` or <https://ui.perfetto.dev>), a
//!   flat metrics JSON dump ([`metrics_json`]), and the Prometheus text
//!   exposition format ([`prometheus_text`]).
//!
//! ## Zero cost when disabled
//!
//! Instrumentation talks to the process-wide [`global`] recorder, which
//! starts **disabled**: every call short-circuits on one relaxed atomic
//! load before taking timestamps, formatting strings, or touching locks.
//! Benchmarks that do not opt in measure the uninstrumented hot path.
//! Binaries opt in with [`enable`] (the `--trace-out`/`--metrics-out`
//! flags) and export with [`global()`](global)`.snapshot()`.
//!
//! ## Determinism
//!
//! Aggregation is order-independent: counters and histogram buckets sum,
//! max-gauges max, set-gauges resolve by a global write stamp. Metric
//! values in a [`Snapshot`] are therefore identical for every worker
//! count on the same input — only span timings and thread ids vary —
//! and [`metrics_json`] renders equal values to identical bytes, so
//! tests can golden-file an entire metrics dump.
//!
//! ```
//! let r = obs::Recorder::new();
//! r.enable();
//! {
//!     let _span = r.span("stage").arg("shard", 3);
//!     r.count_labeled("events_total", &[("kind", "AppSubmitted")], 2);
//! }
//! let snap = r.snapshot();
//! assert_eq!(snap.counter_labeled("events_total", &[("kind", "AppSubmitted")]), 2);
//! assert!(obs::chrome_trace(&snap).contains("\"stage\""));
//! ```

pub mod export;
pub mod gauges;
pub mod http;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod sketch;

pub use export::{chrome_trace, describe, metrics_json, prometheus_text, TraceEvents};
pub use gauges::GaugeRegistry;
pub use http::{HttpServer, Request, Response, PROMETHEUS_CONTENT_TYPE};
pub use metrics::{Histogram, MetricKey, Snapshot, SpanRecord};
pub use recorder::{Recorder, SpanGuard};
pub use sketch::{Exemplar, QuantileSketch, SketchCodecError};

/// The process-wide recorder all library instrumentation targets.
static GLOBAL: Recorder = Recorder::new();

/// The process-wide recorder (disabled until [`enable`] is called).
pub fn global() -> &'static Recorder {
    &GLOBAL
}

/// Enable the global recorder (idempotent).
pub fn enable() {
    GLOBAL.enable();
}

/// Whether the global recorder is recording. Instrumentation uses this
/// to gate any work beyond a plain call (e.g. batching local counts).
#[inline]
pub fn enabled() -> bool {
    GLOBAL.is_enabled()
}

/// Start a span on the global recorder (no-op guard when disabled).
pub fn span(name: &'static str) -> SpanGuard<'static> {
    GLOBAL.span(name)
}

/// Add to an unlabeled counter on the global recorder.
#[inline]
pub fn count(name: &'static str, n: u64) {
    GLOBAL.count(name, n);
}

/// Add to a labeled counter on the global recorder.
#[inline]
pub fn count_labeled(name: &'static str, labels: &[(&'static str, &str)], n: u64) {
    GLOBAL.count_labeled(name, labels, n);
}

/// Raise a high-water-mark gauge on the global recorder.
pub fn gauge_max(name: &'static str, v: f64) {
    GLOBAL.gauge_max(name, v);
}

/// Set a gauge on the global recorder.
pub fn gauge_set(name: &'static str, v: f64) {
    GLOBAL.gauge_set(name, v);
}

/// Observe into a histogram on the global recorder.
pub fn observe(name: &'static str, bounds: &'static [u64], v: u64) {
    GLOBAL.observe(name, bounds, v);
}

/// Observe into a quantile sketch on the global recorder.
#[inline]
pub fn sketch_observe(name: &'static str, v: u64) {
    GLOBAL.sketch_observe(name, v);
}

/// Observe into a labeled quantile sketch on the global recorder.
#[inline]
pub fn sketch_observe_labeled(name: &'static str, labels: &[(&'static str, &str)], v: u64) {
    GLOBAL.sketch_observe_labeled(name, labels, v);
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_starts_disabled_and_spans_are_inert() {
        // No test in this crate enables the global recorder, so it must
        // still be in its initial state here.
        assert!(!super::enabled());
        let g = super::span("noop").arg("k", "v");
        assert!(!g.is_active());
        super::count("nothing_total", 1);
        assert_eq!(super::global().snapshot().counter("nothing_total"), 0);
    }
}
