//! Exporters: Chrome trace-event JSON and flat metrics dumps.

use std::fmt::Write as _;

use crate::json::{escape, fmt_f64};
use crate::metrics::Snapshot;

/// Render the snapshot's spans as Chrome trace-event JSON (the format
/// `chrome://tracing` and Perfetto load). Spans become complete (`"X"`)
/// events with microsecond timestamps; thread-name metadata events label
/// each worker lane.
pub fn chrome_trace(snap: &Snapshot) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  ");
        out.push_str(&ev);
    };
    for (tid, name) in &snap.threads {
        push(
            &mut out,
            format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape(name)
            ),
        );
    }
    for s in &snap.spans {
        let mut args = String::new();
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                args.push_str(", ");
            }
            let _ = write!(args, "\"{}\": \"{}\"", escape(k), escape(v));
        }
        push(
            &mut out,
            format!(
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"name\": \"{}\", \
                 \"ts\": {}, \"dur\": {}, \"args\": {{{args}}}}}",
                s.tid,
                escape(s.name),
                s.start_us,
                s.dur_us
            ),
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Render the snapshot's metrics (counters, gauges, histograms — no
/// spans) as a flat JSON object. Key order is the metric keys' sorted
/// order, so two snapshots with equal metric values render to identical
/// bytes — the property the golden-file tests pin down.
pub fn metrics_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {v}", escape(&k.render()));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(&k.render()), fmt_f64(*v));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
        let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
        let _ = write!(
            out,
            "\n    \"{}\": {{\"bounds\": [{}], \"counts\": [{}], \"sum\": {}, \"count\": {}}}",
            escape(&k.render()),
            bounds.join(", "),
            counts.join(", "),
            h.sum,
            h.count
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Render the snapshot's metrics in the Prometheus text exposition
/// format (counters, gauges, and histograms with `_bucket`/`_sum`/
/// `_count` series).
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for (k, v) in &snap.counters {
        if k.name != last_name {
            let _ = writeln!(out, "# TYPE {} counter", k.name);
            last_name = k.name;
        }
        let _ = writeln!(out, "{} {v}", k.render());
    }
    last_name = "";
    for (k, v) in &snap.gauges {
        if k.name != last_name {
            let _ = writeln!(out, "# TYPE {} gauge", k.name);
            last_name = k.name;
        }
        let _ = writeln!(out, "{} {}", k.render(), fmt_f64(*v));
    }
    for (k, h) in &snap.histograms {
        let _ = writeln!(out, "# TYPE {} histogram", k.name);
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(h.counts.iter()) {
            cumulative += count;
            let _ = writeln!(out, "{}_bucket{{le=\"{bound}\"}} {cumulative}", k.name);
        }
        let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", k.name, h.count);
        let _ = writeln!(out, "{}_sum {}", k.name, h.sum);
        let _ = writeln!(out, "{}_count {}", k.name, h.count);
    }
    out
}

/// Snapshot `recorder` once and write the requested files: the Chrome
/// trace to `trace`, and metrics to `metrics` — Prometheus text when the
/// metrics extension is `.prom` or `.txt`, the JSON dump otherwise. The
/// shared back-end of every binary's `--trace-out`/`--metrics-out` flags.
pub fn write_files(
    recorder: &crate::Recorder,
    trace: Option<&std::path::Path>,
    metrics: Option<&std::path::Path>,
) -> std::io::Result<()> {
    if trace.is_none() && metrics.is_none() {
        return Ok(());
    }
    let snap = recorder.snapshot();
    if let Some(path) = trace {
        std::fs::write(path, chrome_trace(&snap))?;
    }
    if let Some(path) = metrics {
        let text = match path.extension().and_then(|e| e.to_str()) {
            Some("prom") | Some("txt") => prometheus_text(&snap),
            _ => metrics_json(&snap),
        };
        std::fs::write(path, text)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::recorder::Recorder;

    fn sample() -> Snapshot {
        let r = Recorder::new();
        r.enable();
        r.count_labeled("ev_total", &[("kind", "A")], 3);
        r.count("lines_total", 7);
        r.gauge_set("ratio", 2.5);
        r.gauge_max("hwm", 9.0);
        r.observe("sizes", &[10, 100], 5);
        r.observe("sizes", &[10, 100], 500);
        {
            let _outer = r.span("outer").arg("file", "a \"quoted\" name");
            let _inner = r.span("inner");
        }
        r.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_x_events() {
        let trace = chrome_trace(&sample());
        let doc = json::parse(&trace).expect("trace must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        assert!(xs.iter().any(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("outer")
                && e.get("args")
                    .and_then(|a| a.get("file"))
                    .and_then(|f| f.as_str())
                    == Some("a \"quoted\" name")
        }));
        // One thread-name metadata event for the recording thread.
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")));
    }

    #[test]
    fn metrics_json_is_valid_and_deterministic() {
        let a = metrics_json(&sample());
        let b = metrics_json(&sample());
        assert_eq!(a, b, "same metric values must render identically");
        let doc = json::parse(&a).expect("metrics must parse");
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("ev_total{kind=\"A\"}")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("ratio").unwrap().as_f64(),
            Some(2.5)
        );
        let h = doc.get("histograms").unwrap().get("sizes").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(h.get("counts").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn prometheus_text_has_type_lines_and_series() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE ev_total counter"));
        assert!(text.contains("ev_total{kind=\"A\"} 3"));
        assert!(text.contains("# TYPE ratio gauge"));
        assert!(text.contains("ratio 2.5"));
        assert!(text.contains("sizes_bucket{le=\"10\"} 1"));
        assert!(text.contains("sizes_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("sizes_sum 505"));
        assert!(text.contains("sizes_count 2"));
    }

    #[test]
    fn write_files_picks_format_by_extension() {
        let r = Recorder::new();
        r.enable();
        r.count("n_total", 4);
        let dir = std::env::temp_dir().join(format!("obs_export_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let mjson = dir.join("metrics.json");
        let mprom = dir.join("metrics.prom");
        write_files(&r, Some(&trace), Some(&mjson)).unwrap();
        write_files(&r, None, Some(&mprom)).unwrap();
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(json::parse(&t).is_ok());
        let j = std::fs::read_to_string(&mjson).unwrap();
        assert!(json::parse(&j).unwrap().get("counters").is_some());
        let p = std::fs::read_to_string(&mprom).unwrap();
        assert!(p.contains("n_total 4"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_snapshot_exports_parse() {
        let snap = Snapshot::default();
        assert!(json::parse(&chrome_trace(&snap)).is_ok());
        assert!(json::parse(&metrics_json(&snap)).is_ok());
        assert_eq!(prometheus_text(&snap), "");
    }
}
