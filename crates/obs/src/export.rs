//! Exporters: Chrome trace-event JSON and flat metrics dumps.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::json::{escape, fmt_f64};
use crate::metrics::{MetricKey, Snapshot};
use crate::sketch::QuantileSketch;

/// Registered `# HELP` strings, keyed by metric family name. Filled by
/// [`describe`]; families without an entry fall back to their own name
/// so every exposition family still carries a HELP line.
static HELP_REGISTRY: Mutex<BTreeMap<&'static str, &'static str>> = Mutex::new(BTreeMap::new());

/// Register the `# HELP` text for a metric family. Call once at startup
/// (idempotent — later calls overwrite). Unregistered families export
/// with their name as the help text.
pub fn describe(name: &'static str, help: &'static str) {
    let mut reg = HELP_REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.insert(name, help);
}

/// Escape a label value for the Prometheus text exposition format:
/// backslash, double quote, and newline must be backslash-escaped.
pub fn prom_escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text (backslash and newline only; quotes are legal).
pub fn prom_escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a key's label set as `{k="v",...}` with Prometheus escaping
/// (empty string when there are no labels).
fn prom_labels(labels: &[(&'static str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", prom_escape_label(v));
    }
    out.push('}');
    out
}

/// Render a full series identity (`name{labels}`) with Prometheus
/// escaping.
fn prom_series(k: &MetricKey) -> String {
    format!("{}{}", k.name, prom_labels(&k.labels))
}

/// Write the `# HELP` + `# TYPE` header for a family, once per name.
fn write_family_header(
    out: &mut String,
    last_name: &mut &'static str,
    name: &'static str,
    kind: &str,
) {
    if name == *last_name {
        return;
    }
    *last_name = name;
    let reg = HELP_REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let help = reg.get(name).copied().unwrap_or(name);
    let _ = writeln!(out, "# HELP {name} {}", prom_escape_help(help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Incremental writer for the Chrome trace-event JSON format (the format
/// `chrome://tracing` and <https://ui.perfetto.dev> load).
///
/// The writer is clock-agnostic: callers supply every timestamp as plain
/// microseconds, so the same format serves both wall-clock pipeline
/// traces ([`chrome_trace`], anchored at recorder enable time) and
/// *simulated-time* application traces (`sdchecker`'s app trace, anchored
/// at the log epoch). Events carry an explicit `pid` so one file can hold
/// many processes — Perfetto renders each as its own collapsible track
/// group.
#[derive(Debug)]
pub struct TraceEvents {
    out: String,
    any: bool,
}

impl Default for TraceEvents {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceEvents {
    /// An empty trace document.
    pub fn new() -> TraceEvents {
        TraceEvents {
            out: String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["),
            any: false,
        }
    }

    fn push(&mut self, ev: std::fmt::Arguments<'_>) {
        if self.any {
            self.out.push(',');
        }
        self.any = true;
        self.out.push_str("\n  ");
        let _ = self.out.write_fmt(ev);
    }

    fn fmt_args(args: &[(&str, String)]) -> String {
        let mut s = String::new();
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": \"{}\"", escape(k), escape(v));
        }
        s
    }

    /// Name a process lane (`ph:"M"` metadata).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.push(format_args!(
            "{{\"ph\": \"M\", \"pid\": {pid}, \"name\": \"process_name\", \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(name)
        ));
    }

    /// Name a thread lane within a process (`ph:"M"` metadata).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.push(format_args!(
            "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"name\": \"thread_name\", \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(name)
        ));
    }

    /// A complete slice (`ph:"X"`): `ts`/`dur` in microseconds on
    /// whatever clock the caller uses throughout the document.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts_us: u64,
        dur_us: u64,
        args: &[(&str, String)],
    ) {
        self.push(format_args!(
            "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"name\": \"{}\", \
             \"ts\": {ts_us}, \"dur\": {dur_us}, \"args\": {{{}}}}}",
            escape(name),
            Self::fmt_args(args)
        ));
    }

    /// Start of a flow arrow (`ph:"s"`). `id` pairs it with the matching
    /// [`TraceEvents::flow_end`]; the point must lie inside a slice on
    /// `(pid, tid)` for renderers to anchor the arrow.
    pub fn flow_start(&mut self, pid: u64, tid: u64, id: u64, name: &str, ts_us: u64) {
        self.push(format_args!(
            "{{\"ph\": \"s\", \"pid\": {pid}, \"tid\": {tid}, \"cat\": \"flow\", \
             \"id\": {id}, \"name\": \"{}\", \"ts\": {ts_us}}}",
            escape(name)
        ));
    }

    /// End of a flow arrow (`ph:"f"`, binding to the enclosing slice).
    pub fn flow_end(&mut self, pid: u64, tid: u64, id: u64, name: &str, ts_us: u64) {
        self.push(format_args!(
            "{{\"ph\": \"f\", \"bp\": \"e\", \"pid\": {pid}, \"tid\": {tid}, \
             \"cat\": \"flow\", \"id\": {id}, \"name\": \"{}\", \"ts\": {ts_us}}}",
            escape(name)
        ));
    }

    /// Close the document and return the JSON text.
    pub fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Render the snapshot's spans as Chrome trace-event JSON. Spans become
/// complete (`"X"`) events with wall-clock microsecond timestamps
/// (offsets from recorder enable time); thread-name metadata events label
/// each worker lane.
pub fn chrome_trace(snap: &Snapshot) -> String {
    let mut t = TraceEvents::new();
    for (tid, name) in &snap.threads {
        t.thread_name(1, *tid, name);
    }
    for s in &snap.spans {
        t.complete(1, s.tid, s.name, s.start_us, s.dur_us, &s.args);
    }
    t.finish()
}

/// Render one quantile sketch as a JSON object (count, sum, min, max,
/// mean, and the standard percentile ladder). Deterministic bytes for
/// equal sketches; `null` fields when the sketch is empty. Sketches
/// holding exemplars grow an `exemplars` array (worst labeled samples
/// first); exemplar-free sketches render exactly as before, so existing
/// golden files are untouched.
pub fn sketch_json(s: &QuantileSketch) -> String {
    let opt_u = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
    let opt_f = |v: Option<f64>| v.map(fmt_f64).unwrap_or_else(|| "null".into());
    let mut out = format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
         \"p50\": {}, \"p90\": {}, \"p95\": {}, \"p99\": {}",
        s.count(),
        s.sum(),
        opt_u(s.min()),
        opt_u(s.max()),
        opt_f(s.mean()),
        opt_f(s.quantile(0.5)),
        opt_f(s.quantile(0.9)),
        opt_f(s.quantile(0.95)),
        opt_f(s.quantile(0.99)),
    );
    if !s.exemplars().is_empty() {
        out.push_str(", \"exemplars\": [");
        for (i, e) in s.exemplars().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"value\": {}, \"label\": \"{}\"}}",
                e.value,
                escape(&e.label)
            );
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// Render the snapshot's metrics (counters, gauges, histograms — no
/// spans) as a flat JSON object. Key order is the metric keys' sorted
/// order, so two snapshots with equal metric values render to identical
/// bytes — the property the golden-file tests pin down.
pub fn metrics_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {v}", escape(&k.render()));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(&k.render()), fmt_f64(*v));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
        let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
        let _ = write!(
            out,
            "\n    \"{}\": {{\"bounds\": [{}], \"counts\": [{}], \"sum\": {}, \"count\": {}}}",
            escape(&k.render()),
            bounds.join(", "),
            counts.join(", "),
            h.sum,
            h.count
        );
    }
    out.push_str("\n  },\n  \"sketches\": {");
    for (i, (k, s)) in snap.sketches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(&k.render()), sketch_json(s));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Render the snapshot's metrics in the Prometheus text exposition
/// format (version 0.0.4): every family gets `# HELP`/`# TYPE` lines,
/// label values are escaped per the spec, histograms emit cumulative
/// `_bucket`/`_sum`/`_count` series that keep their key's labels, and
/// sketches export as summaries with `quantile` labels.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name: &'static str = "";
    for (k, v) in &snap.counters {
        write_family_header(&mut out, &mut last_name, k.name, "counter");
        let _ = writeln!(out, "{} {v}", prom_series(k));
    }
    last_name = "";
    for (k, v) in &snap.gauges {
        write_family_header(&mut out, &mut last_name, k.name, "gauge");
        let _ = writeln!(out, "{} {}", prom_series(k), fmt_f64(*v));
    }
    last_name = "";
    for (k, h) in &snap.histograms {
        write_family_header(&mut out, &mut last_name, k.name, "histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(h.counts.iter()) {
            cumulative += count;
            let mut labeled = k.clone();
            labeled.labels.push(("le", bound.to_string()));
            let _ = writeln!(
                out,
                "{}_bucket{} {cumulative}",
                k.name,
                prom_labels(&labeled.labels)
            );
        }
        let mut labeled = k.clone();
        labeled.labels.push(("le", "+Inf".to_string()));
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            k.name,
            prom_labels(&labeled.labels),
            h.count
        );
        let labels = prom_labels(&k.labels);
        let _ = writeln!(out, "{}_sum{labels} {}", k.name, h.sum);
        let _ = writeln!(out, "{}_count{labels} {}", k.name, h.count);
    }
    last_name = "";
    for (k, s) in &snap.sketches {
        write_family_header(&mut out, &mut last_name, k.name, "summary");
        for (q, v) in [
            (0.5, s.quantile(0.5)),
            (0.95, s.quantile(0.95)),
            (0.99, s.quantile(0.99)),
        ] {
            let Some(v) = v else { continue };
            let mut labeled = k.clone();
            labeled.labels.push(("quantile", format!("{q}")));
            let _ = writeln!(out, "{} {}", prom_series(&labeled), fmt_f64(v));
        }
        // `_sum`/`_count` suffix the metric name, keeping the labels.
        let labels = prom_labels(&k.labels);
        let _ = writeln!(out, "{}_sum{labels} {}", k.name, s.sum());
        let _ = writeln!(out, "{}_count{labels} {}", k.name, s.count());
    }
    out
}

/// Snapshot `recorder` once and write the requested files: the Chrome
/// trace to `trace`, and metrics to `metrics` — Prometheus text when the
/// metrics extension is `.prom` or `.txt`, the JSON dump otherwise. The
/// shared back-end of every binary's `--trace-out`/`--metrics-out` flags.
pub fn write_files(
    recorder: &crate::Recorder,
    trace: Option<&std::path::Path>,
    metrics: Option<&std::path::Path>,
) -> std::io::Result<()> {
    if trace.is_none() && metrics.is_none() {
        return Ok(());
    }
    let snap = recorder.snapshot();
    if let Some(path) = trace {
        std::fs::write(path, chrome_trace(&snap))?;
    }
    if let Some(path) = metrics {
        let text = match path.extension().and_then(|e| e.to_str()) {
            Some("prom") | Some("txt") => prometheus_text(&snap),
            _ => metrics_json(&snap),
        };
        std::fs::write(path, text)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::recorder::Recorder;

    fn sample() -> Snapshot {
        let r = Recorder::new();
        r.enable();
        r.count_labeled("ev_total", &[("kind", "A")], 3);
        r.count("lines_total", 7);
        r.gauge_set("ratio", 2.5);
        r.gauge_max("hwm", 9.0);
        r.observe("sizes", &[10, 100], 5);
        r.observe("sizes", &[10, 100], 500);
        {
            let _outer = r.span("outer").arg("file", "a \"quoted\" name");
            let _inner = r.span("inner");
        }
        r.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_x_events() {
        let trace = chrome_trace(&sample());
        let doc = json::parse(&trace).expect("trace must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        assert!(xs.iter().any(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("outer")
                && e.get("args")
                    .and_then(|a| a.get("file"))
                    .and_then(|f| f.as_str())
                    == Some("a \"quoted\" name")
        }));
        // One thread-name metadata event for the recording thread.
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")));
    }

    #[test]
    fn metrics_json_is_valid_and_deterministic() {
        let a = metrics_json(&sample());
        let b = metrics_json(&sample());
        assert_eq!(a, b, "same metric values must render identically");
        let doc = json::parse(&a).expect("metrics must parse");
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("ev_total{kind=\"A\"}")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("ratio").unwrap().as_f64(),
            Some(2.5)
        );
        let h = doc.get("histograms").unwrap().get("sizes").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(h.get("counts").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn prometheus_text_has_type_lines_and_series() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE ev_total counter"));
        assert!(text.contains("ev_total{kind=\"A\"} 3"));
        assert!(text.contains("# TYPE ratio gauge"));
        assert!(text.contains("ratio 2.5"));
        assert!(text.contains("sizes_bucket{le=\"10\"} 1"));
        assert!(text.contains("sizes_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("sizes_sum 505"));
        assert!(text.contains("sizes_count 2"));
    }

    #[test]
    fn prometheus_text_emits_help_for_every_family() {
        describe("ev_total", "extraction events by kind");
        let text = prometheus_text(&sample());
        // Registered family gets its description; the rest fall back to
        // the family name, but every family must carry a HELP line.
        assert!(text.contains("# HELP ev_total extraction events by kind"));
        for family in ["lines_total", "ratio", "hwm", "sizes"] {
            assert!(
                text.contains(&format!("# HELP {family} ")),
                "missing HELP for {family}:\n{text}"
            );
        }
        // HELP precedes TYPE for the same family.
        let help_at = text.find("# HELP ev_total").unwrap();
        let type_at = text.find("# TYPE ev_total").unwrap();
        assert!(help_at < type_at);
    }

    #[test]
    fn prometheus_text_escapes_label_values() {
        let r = Recorder::new();
        r.enable();
        r.count_labeled("esc_total", &[("path", "a\\b\"c\nd")], 1);
        let text = prometheus_text(&r.snapshot());
        assert!(
            text.contains("esc_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "bad escaping:\n{text}"
        );
        assert_eq!(prom_escape_label("plain"), "plain");
        assert_eq!(prom_escape_label("a\\b"), "a\\\\b");
        assert_eq!(prom_escape_label("q\"q"), "q\\\"q");
        assert_eq!(prom_escape_label("n\nn"), "n\\nn");
        assert_eq!(prom_escape_help("h\\x\ny"), "h\\\\x\\ny");
    }

    #[test]
    fn prometheus_text_escapes_hostile_names_on_every_series_shape() {
        // App/node names mined from logs can carry backslashes, quotes,
        // and newlines, and they reach label values on counters, gauges,
        // histograms, and summaries alike. Every exposition shape must
        // escape them per the 0.0.4 text format.
        let hostile = "app \"q\\1\"\nrm";
        let mut snap = Snapshot::default();
        snap.counters
            .insert(MetricKey::labeled("apps_total", &[("name", hostile)]), 1);
        snap.gauges
            .insert(MetricKey::labeled("app_lag", &[("name", hostile)]), 2.0);
        let mut h = crate::metrics::Histogram::new(&[10]);
        h.observe(5);
        snap.histograms
            .insert(MetricKey::labeled("app_hist", &[("name", hostile)]), h);
        let mut s = QuantileSketch::new();
        s.observe(7);
        snap.sketches
            .insert(MetricKey::labeled("app_delay", &[("name", hostile)]), s);
        let text = prometheus_text(&snap);
        let escaped = "name=\"app \\\"q\\\\1\\\"\\nrm\"";
        for family in ["apps_total", "app_lag", "app_hist_bucket", "app_delay_sum"] {
            assert!(
                text.lines()
                    .any(|l| l.starts_with(family) && l.contains(escaped)),
                "{family} series not escaped:\n{text}"
            );
        }
        // The raw newline never leaks: every non-comment line is a
        // well-formed `series value` pair with an even quote count.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(!line.is_empty(), "blank line mid-exposition:\n{text}");
            assert_eq!(
                line.matches('"').count() % 2,
                0,
                "unbalanced quotes in {line:?}"
            );
            assert!(
                line.rsplit(' ')
                    .next()
                    .is_some_and(|v| v.parse::<f64>().is_ok()),
                "line does not end in a value: {line:?}"
            );
        }
    }

    #[test]
    fn sketch_json_renders_escaped_exemplars() {
        let mut s = QuantileSketch::new();
        s.observe_exemplar(1200, "application_1 \"résumé\"\\n");
        s.observe_exemplar(300, "application_2");
        let j = sketch_json(&s);
        let doc = json::parse(&j).expect("sketch JSON with exemplars must parse");
        let ex = doc.get("exemplars").unwrap().as_arr().unwrap();
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].get("value").unwrap().as_f64(), Some(1200.0));
        assert_eq!(
            ex[0].get("label").unwrap().as_str(),
            Some("application_1 \"résumé\"\\n")
        );
        // Exemplar-free sketches keep the legacy shape byte-for-byte.
        let mut plain = QuantileSketch::new();
        plain.observe(5);
        assert!(!sketch_json(&plain).contains("exemplars"));
    }

    #[test]
    fn prometheus_histogram_buckets_keep_labels() {
        let mut snap = Snapshot::default();
        let mut h = crate::metrics::Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(50);
        snap.histograms
            .insert(MetricKey::labeled("lat_ms", &[("stage", "extract")]), h);
        let text = prometheus_text(&snap);
        assert!(text.contains("lat_ms_bucket{stage=\"extract\",le=\"10\"} 1"));
        assert!(text.contains("lat_ms_bucket{stage=\"extract\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ms_sum{stage=\"extract\"} 55"));
        assert!(text.contains("lat_ms_count{stage=\"extract\"} 2"));
        // One header pair even though labeled keys could repeat the name.
        assert_eq!(text.matches("# TYPE lat_ms histogram").count(), 1);
    }

    #[test]
    fn write_files_picks_format_by_extension() {
        let r = Recorder::new();
        r.enable();
        r.count("n_total", 4);
        let dir = std::env::temp_dir().join(format!("obs_export_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let mjson = dir.join("metrics.json");
        let mprom = dir.join("metrics.prom");
        write_files(&r, Some(&trace), Some(&mjson)).unwrap();
        write_files(&r, None, Some(&mprom)).unwrap();
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(json::parse(&t).is_ok());
        let j = std::fs::read_to_string(&mjson).unwrap();
        assert!(json::parse(&j).unwrap().get("counters").is_some());
        let p = std::fs::read_to_string(&mprom).unwrap();
        assert!(p.contains("n_total 4"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_snapshot_exports_parse() {
        let snap = Snapshot::default();
        assert!(json::parse(&chrome_trace(&snap)).is_ok());
        assert!(json::parse(&metrics_json(&snap)).is_ok());
        assert_eq!(prometheus_text(&snap), "");
    }

    #[test]
    fn trace_events_writer_builds_valid_documents() {
        let mut t = TraceEvents::new();
        t.process_name(7, "application_42");
        t.thread_name(7, 0, "app");
        t.complete(7, 0, "total", 1_000, 5_000, &[("cid", "c1".to_string())]);
        t.flow_start(7, 0, 99, "critical", 2_000);
        t.flow_end(7, 1, 99, "critical", 3_000);
        let doc = json::parse(&t.finish()).expect("must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 5);
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(x.get("ts").unwrap().as_f64(), Some(1000.0));
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(5000.0));
        assert_eq!(
            x.get("args").unwrap().get("cid").unwrap().as_str(),
            Some("c1")
        );
        let f = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("f"))
            .unwrap();
        assert_eq!(f.get("bp").and_then(|b| b.as_str()), Some("e"));
        assert_eq!(f.get("id").unwrap().as_f64(), Some(99.0));
    }

    #[test]
    fn empty_trace_events_document_parses() {
        assert!(json::parse(&TraceEvents::new().finish()).is_ok());
    }

    #[test]
    fn sketches_export_in_json_and_prometheus() {
        let r = Recorder::new();
        r.enable();
        for v in 1..=100u64 {
            r.sketch_observe_labeled("delay_ms", &[("component", "total")], v * 10);
        }
        let snap = r.snapshot();
        let j = metrics_json(&snap);
        let doc = json::parse(&j).expect("metrics must parse");
        let s = doc
            .get("sketches")
            .unwrap()
            .get("delay_ms{component=\"total\"}")
            .unwrap();
        assert_eq!(s.get("count").unwrap().as_f64(), Some(100.0));
        assert_eq!(s.get("min").unwrap().as_f64(), Some(10.0));
        assert_eq!(s.get("max").unwrap().as_f64(), Some(1000.0));
        let p95 = s.get("p95").unwrap().as_f64().unwrap();
        assert!((p95 - 950.5).abs() / 950.5 < 0.01, "p95 {p95}");
        let p = prometheus_text(&snap);
        assert!(p.contains("# TYPE delay_ms summary"));
        assert!(p.contains("delay_ms{component=\"total\",quantile=\"0.5\"}"));
        assert!(p.contains("delay_ms_count{component=\"total\"} 100"));
    }
}
