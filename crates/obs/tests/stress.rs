//! Thread-stress property test for the sharded recorder.
//!
//! Eight threads hammer record/snapshot/merge concurrently; the final
//! merged snapshot must equal the sequential sum exactly — the property
//! the `sdlint::interleave` registry-snapshot model checks exhaustively
//! at small scale, exercised here at real scale on real threads.

use obs::Recorder;

const THREADS: u64 = 8;
const ITERS: u64 = 2_000;

#[test]
fn merged_snapshot_equals_sequential_sum_under_contention() {
    let r = Recorder::new();
    r.enable();
    let rr = &r;
    std::thread::scope(|s| {
        // Writers: counters, histograms, and sketches from 8 threads.
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..ITERS {
                    rr.count("stress_total", 1);
                    rr.count_labeled("stress_kind_total", &[("kind", "w")], 2);
                    rr.observe("stress_hist", &[10, 100, 1000], (t * ITERS + i) % 2000);
                    rr.sketch_observe("stress_sketch", (t * ITERS + i) % 5000);
                }
            });
        }
        // A concurrent snapshotter: mid-run merges must never observe
        // more than the final total, never go backwards, and never tear.
        s.spawn(move || {
            let mut last = 0u64;
            for _ in 0..50 {
                let snap = rr.snapshot();
                let n = snap.counter("stress_total");
                assert!(n <= THREADS * ITERS, "snapshot overshot: {n}");
                assert!(n >= last, "snapshot went backwards: {n} < {last}");
                last = n;
                let k = snap.counter_labeled("stress_kind_total", &[("kind", "w")]);
                assert_eq!(k % 2, 0, "labeled counter torn: {k}");
            }
        });
    });

    let snap = r.snapshot();
    assert_eq!(snap.counter("stress_total"), THREADS * ITERS);
    assert_eq!(
        snap.counter_labeled("stress_kind_total", &[("kind", "w")]),
        2 * THREADS * ITERS
    );

    // Histogram totals are exact: every observation lands in exactly one
    // bucket, independent of sharding and schedule.
    let h = snap
        .histograms
        .get(&obs::MetricKey::plain("stress_hist"))
        .expect("histogram present");
    assert_eq!(h.count, THREADS * ITERS);
    let per_thread_sum: u64 = (0..ITERS).map(|i| i % 2000).sum::<u64>();
    let total_sum: u64 = (0..THREADS)
        .map(|t| (0..ITERS).map(|i| (t * ITERS + i) % 2000).sum::<u64>())
        .sum();
    assert!(total_sum >= per_thread_sum);
    assert_eq!(h.sum, total_sum);

    // Sketch count is exact too (values are rank-compressed, counts are
    // not).
    let sk = snap
        .sketches
        .get(&obs::MetricKey::plain("stress_sketch"))
        .expect("sketch present");
    assert_eq!(sk.count(), THREADS * ITERS);
}

#[test]
fn gauge_set_latest_write_wins_across_threads() {
    let r = Recorder::new();
    r.enable();
    let rr = &r;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..200 {
                    rr.gauge_set("stress_gauge", (t * 1000 + i) as f64);
                }
            });
        }
    });
    // Whichever thread stamped last wins; the value must be one that was
    // actually written, not a blend.
    let v = r.snapshot().gauge("stress_gauge").expect("gauge present");
    let t = (v as u64) / 1000;
    let i = (v as u64) % 1000;
    assert!(t < THREADS && i < 200, "gauge value {v} was never written");
}
