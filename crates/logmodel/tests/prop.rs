//! Property-based tests: every identifier and timestamp format must
//! round-trip, and ID scanning must find whatever the simulator embeds —
//! the load-bearing contract between log writer and log miner.

use logmodel::{
    format_timestamp, parse_line, parse_timestamp, scan_ids, ApplicationId, ContainerId, Epoch,
    Level, LogRecord, LogSource, NodeId, ScannedId, TsMs,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn application_id_roundtrip(ts in 1u64..10_000_000_000_000, seq in 1u32..1_000_000) {
        let id = ApplicationId::new(ts, seq);
        prop_assert_eq!(id.to_string().parse::<ApplicationId>().unwrap(), id);
    }

    #[test]
    fn container_id_roundtrip(ts in 1u64..10_000_000_000_000, seq in 1u32..100_000,
                              attempt in 1u32..99, c in 1u64..10_000_000) {
        let id = ApplicationId::new(ts, seq).attempt(attempt).container(c);
        prop_assert_eq!(id.to_string().parse::<ContainerId>().unwrap(), id);
    }

    #[test]
    fn node_id_roundtrip(n in 0u32..10_000) {
        let id = NodeId(n);
        prop_assert_eq!(id.to_string().parse::<NodeId>().unwrap(), id);
    }

    #[test]
    fn timestamp_roundtrip(offset in 0u64..10_000_000_000) {
        let epoch = Epoch::default_run();
        let s = format_timestamp(&epoch, TsMs(offset));
        prop_assert_eq!(s.len(), 23);
        let parsed = parse_timestamp(&s).unwrap();
        prop_assert_eq!(epoch.offset_of(parsed), Some(TsMs(offset)));
    }

    /// A log line built from arbitrary (sane) message text parses back to
    /// the identical record.
    #[test]
    fn log_line_roundtrip(
        offset in 0u64..100_000_000,
        msg in "[a-zA-Z0-9_ .:=()\\[\\]-]{1,120}",
        class in "[A-Za-z][A-Za-z0-9]{0,30}",
    ) {
        // The format requires "class: message"; messages must not start
        // with whitespace (trim round-trip) and class must not contain
        // ": ".
        prop_assume!(!msg.starts_with(' ') && !msg.ends_with(' '));
        prop_assume!(!msg.is_empty());
        let epoch = Epoch::default_run();
        let rec = LogRecord::new(TsMs(offset), Level::Info, class, msg);
        let line = logmodel::format::format_line(&epoch, &rec);
        prop_assert_eq!(parse_line(&epoch, &line), Some(rec));
    }

    /// `scan_ids` finds every id embedded in prose, in order.
    #[test]
    fn scan_finds_embedded_ids(
        seqs in prop::collection::vec(1u32..10_000, 1..6),
        sep in "[a-z ,.()]{1,12}",
    ) {
        prop_assume!(!sep.contains("application") && !sep.contains("container"));
        let cts = 1_521_018_000_000u64;
        let mut text = String::from("prefix ");
        let mut expected = Vec::new();
        for (i, s) in seqs.iter().enumerate() {
            if i % 2 == 0 {
                let id = ApplicationId::new(cts, *s);
                text.push_str(&id.to_string());
                expected.push(ScannedId::App(id));
            } else {
                let id = ApplicationId::new(cts, *s).attempt(1).container(i as u64 + 1);
                text.push_str(&id.to_string());
                expected.push(ScannedId::Container(id));
            }
            text.push_str(&sep);
        }
        prop_assert_eq!(scan_ids(&text), expected);
    }

    /// LogSource paths round-trip for arbitrary ids.
    #[test]
    fn source_path_roundtrip(seq in 1u32..100_000, c in 1u64..1_000_000, node in 0u32..500) {
        let app = ApplicationId::new(1_521_018_000_000, seq);
        for src in [
            LogSource::ResourceManager,
            LogSource::NodeManager(NodeId(node)),
            LogSource::Driver(app),
            LogSource::Executor(app.attempt(1).container(c)),
        ] {
            prop_assert_eq!(LogSource::from_rel_path(&src.rel_path()), Some(src));
        }
    }
}
