//! Property-based tests: every identifier and timestamp format must
//! round-trip, and ID scanning must find whatever the simulator embeds —
//! the load-bearing contract between log writer and log miner.
//!
//! Properties run as seeded randomized loops over `simkit::SimRng` (the
//! workspace is dependency-free, so there is no proptest); each case is
//! deterministic per seed.

use logmodel::{
    format_timestamp, parse_line, parse_timestamp, scan_ids, ApplicationId, ContainerId, Epoch,
    Level, LogRecord, LogSource, NodeId, ScannedId, TsMs,
};
use simkit::SimRng;

const CASES: u64 = 256;

fn pick(rng: &mut SimRng, alphabet: &[u8], len_lo: u64, len_hi: u64) -> String {
    let len = rng.range(len_lo, len_hi);
    (0..len)
        .map(|_| alphabet[rng.index(alphabet.len())] as char)
        .collect()
}

#[test]
fn application_id_roundtrip() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x10 + case);
        let ts = rng.range(1, 10_000_000_000_000);
        let seq = rng.range(1, 1_000_000) as u32;
        let id = ApplicationId::new(ts, seq);
        assert_eq!(
            id.to_string().parse::<ApplicationId>().unwrap(),
            id,
            "case {case}"
        );
    }
}

#[test]
fn container_id_roundtrip() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x11 + case);
        let ts = rng.range(1, 10_000_000_000_000);
        let seq = rng.range(1, 100_000) as u32;
        let attempt = rng.range(1, 99) as u32;
        let c = rng.range(1, 10_000_000);
        let id = ApplicationId::new(ts, seq).attempt(attempt).container(c);
        assert_eq!(
            id.to_string().parse::<ContainerId>().unwrap(),
            id,
            "case {case}"
        );
    }
}

#[test]
fn node_id_roundtrip() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x12 + case);
        let id = NodeId(rng.below(10_000) as u32);
        assert_eq!(id.to_string().parse::<NodeId>().unwrap(), id, "case {case}");
    }
}

#[test]
fn timestamp_roundtrip() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x13 + case);
        let offset = rng.below(10_000_000_000);
        let epoch = Epoch::default_run();
        let s = format_timestamp(&epoch, TsMs(offset));
        assert_eq!(s.len(), 23, "case {case}");
        let parsed = parse_timestamp(&s).unwrap();
        assert_eq!(epoch.offset_of(parsed), Some(TsMs(offset)), "case {case}");
    }
}

/// A log line built from arbitrary (sane) message text parses back to
/// the identical record.
#[test]
fn log_line_roundtrip() {
    const MSG: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_ .:=()[]-";
    const CLASS_FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const CLASS_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    for case in 0..CASES {
        let mut rng = SimRng::new(0x14 + case);
        let offset = rng.below(100_000_000);
        // The format requires "class: message"; messages must not start or
        // end with whitespace (trim round-trip) and class must not contain
        // ": ".
        let msg = pick(&mut rng, MSG, 1, 121).trim().to_string();
        if msg.is_empty() {
            continue;
        }
        let class = format!(
            "{}{}",
            pick(&mut rng, CLASS_FIRST, 1, 2),
            pick(&mut rng, CLASS_REST, 0, 31)
        );
        let epoch = Epoch::default_run();
        let rec = LogRecord::new(TsMs(offset), Level::Info, &class, msg);
        let line = logmodel::format::format_line(&epoch, &rec);
        assert_eq!(
            parse_line(&epoch, &line),
            Some(rec),
            "case {case}: line {line:?}"
        );
    }
}

/// `scan_ids` finds every id embedded in prose, in order.
#[test]
fn scan_finds_embedded_ids() {
    const SEP: &[u8] = b"abcdefghijklmnopqrstuvwxyz ,.()";
    for case in 0..CASES {
        let mut rng = SimRng::new(0x15 + case);
        let nids = rng.range(1, 6) as usize;
        let seqs: Vec<u32> = (0..nids).map(|_| rng.range(1, 10_000) as u32).collect();
        let sep = pick(&mut rng, SEP, 1, 13);
        if sep.contains("application") || sep.contains("container") {
            continue;
        }
        let cts = 1_521_018_000_000u64;
        let mut text = String::from("prefix ");
        let mut expected = Vec::new();
        for (i, s) in seqs.iter().enumerate() {
            if i % 2 == 0 {
                let id = ApplicationId::new(cts, *s);
                text.push_str(&id.to_string());
                expected.push(ScannedId::App(id));
            } else {
                let id = ApplicationId::new(cts, *s)
                    .attempt(1)
                    .container(i as u64 + 1);
                text.push_str(&id.to_string());
                expected.push(ScannedId::Container(id));
            }
            text.push_str(&sep);
        }
        assert_eq!(scan_ids(&text), expected, "case {case}: text {text:?}");
    }
}

/// LogSource paths round-trip for arbitrary ids.
#[test]
fn source_path_roundtrip() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x16 + case);
        let seq = rng.range(1, 100_000) as u32;
        let c = rng.range(1, 1_000_000);
        let node = rng.below(500) as u32;
        let app = ApplicationId::new(1_521_018_000_000, seq);
        for src in [
            LogSource::ResourceManager,
            LogSource::NodeManager(NodeId(node)),
            LogSource::Driver(app),
            LogSource::Executor(app.attempt(1).container(c)),
        ] {
            assert_eq!(
                LogSource::from_rel_path(&src.rel_path()),
                Some(src),
                "case {case}"
            );
        }
    }
}
