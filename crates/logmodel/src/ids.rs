//! Global identifiers, in YARN's exact string formats.
//!
//! SDchecker groups state-transition messages by the IDs embedded in them
//! (paper §III-C: "SDchecker binds each log event with its corresponding
//! global ID (application ID or container ID)"), so the formats here must
//! round-trip: the simulator prints them, the miner re-parses them out of
//! free-form message text.
//!
//! Formats (matching Hadoop):
//!
//! * `application_<clusterTs>_<appSeq:04>`
//! * `appattempt_<clusterTs>_<appSeq:04>_<attempt:06>`
//! * `container_<clusterTs>_<appSeq:04>_<attempt:02>_<containerSeq:06>`
//! * nodes: `<host>:<port>` with synthetic hosts `nodeNN.cluster.local`

use std::fmt;
use std::str::FromStr;

/// Error parsing an identifier from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdParseError {
    /// What was being parsed.
    pub kind: &'static str,
    /// The offending input.
    pub input: String,
}

impl fmt::Display for IdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {:?}", self.kind, self.input)
    }
}

impl std::error::Error for IdParseError {}

fn err(kind: &'static str, input: &str) -> IdParseError {
    IdParseError {
        kind,
        input: input.to_string(),
    }
}

/// A YARN application id: `application_<clusterTs>_<seq>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ApplicationId {
    /// ResourceManager start timestamp (epoch ms) — constant per cluster run.
    pub cluster_ts: u64,
    /// 1-based application sequence number.
    pub seq: u32,
}

impl ApplicationId {
    /// Construct from the cluster timestamp and sequence number.
    pub fn new(cluster_ts: u64, seq: u32) -> ApplicationId {
        ApplicationId { cluster_ts, seq }
    }

    /// The first attempt of this application.
    pub fn attempt(self, attempt: u32) -> AppAttemptId {
        AppAttemptId { app: self, attempt }
    }
}

impl fmt::Display for ApplicationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "application_{}_{:04}", self.cluster_ts, self.seq)
    }
}

impl FromStr for ApplicationId {
    type Err = IdParseError;
    fn from_str(s: &str) -> Result<Self, IdParseError> {
        let rest = s
            .strip_prefix("application_")
            .ok_or_else(|| err("ApplicationId", s))?;
        let (ts, seq) = rest
            .split_once('_')
            .ok_or_else(|| err("ApplicationId", s))?;
        Ok(ApplicationId {
            cluster_ts: ts.parse().map_err(|_| err("ApplicationId", s))?,
            seq: seq.parse().map_err(|_| err("ApplicationId", s))?,
        })
    }
}

/// A YARN application attempt id: `appattempt_<clusterTs>_<seq>_<attempt>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppAttemptId {
    /// The owning application.
    pub app: ApplicationId,
    /// 1-based attempt number (>1 when the AM was retried after failure).
    pub attempt: u32,
}

impl AppAttemptId {
    /// A container of this attempt.
    pub fn container(self, seq: u64) -> ContainerId {
        ContainerId { attempt: self, seq }
    }
}

impl fmt::Display for AppAttemptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "appattempt_{}_{:04}_{:06}",
            self.app.cluster_ts, self.app.seq, self.attempt
        )
    }
}

impl FromStr for AppAttemptId {
    type Err = IdParseError;
    fn from_str(s: &str) -> Result<Self, IdParseError> {
        let rest = s
            .strip_prefix("appattempt_")
            .ok_or_else(|| err("AppAttemptId", s))?;
        let mut parts = rest.split('_');
        let ts = parts.next().ok_or_else(|| err("AppAttemptId", s))?;
        let seq = parts.next().ok_or_else(|| err("AppAttemptId", s))?;
        let attempt = parts.next().ok_or_else(|| err("AppAttemptId", s))?;
        if parts.next().is_some() {
            return Err(err("AppAttemptId", s));
        }
        Ok(AppAttemptId {
            app: ApplicationId {
                cluster_ts: ts.parse().map_err(|_| err("AppAttemptId", s))?,
                seq: seq.parse().map_err(|_| err("AppAttemptId", s))?,
            },
            attempt: attempt.parse().map_err(|_| err("AppAttemptId", s))?,
        })
    }
}

/// A YARN container id:
/// `container_<clusterTs>_<appSeq>_<attempt>_<containerSeq>`.
///
/// Container sequence 1 is, by YARN convention, the ApplicationMaster
/// (Spark driver) container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId {
    /// The owning application attempt.
    pub attempt: AppAttemptId,
    /// 1-based container sequence within the attempt.
    pub seq: u64,
}

impl ContainerId {
    /// Whether this is the AM (driver) container.
    pub fn is_am(self) -> bool {
        self.seq == 1
    }

    /// The owning application.
    pub fn app(self) -> ApplicationId {
        self.attempt.app
    }
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "container_{}_{:04}_{:02}_{:06}",
            self.attempt.app.cluster_ts, self.attempt.app.seq, self.attempt.attempt, self.seq
        )
    }
}

impl FromStr for ContainerId {
    type Err = IdParseError;
    fn from_str(s: &str) -> Result<Self, IdParseError> {
        let rest = s
            .strip_prefix("container_")
            .ok_or_else(|| err("ContainerId", s))?;
        let mut parts = rest.split('_');
        let ts = parts.next().ok_or_else(|| err("ContainerId", s))?;
        let app_seq = parts.next().ok_or_else(|| err("ContainerId", s))?;
        let attempt = parts.next().ok_or_else(|| err("ContainerId", s))?;
        let seq = parts.next().ok_or_else(|| err("ContainerId", s))?;
        if parts.next().is_some() {
            return Err(err("ContainerId", s));
        }
        Ok(ContainerId {
            attempt: AppAttemptId {
                app: ApplicationId {
                    cluster_ts: ts.parse().map_err(|_| err("ContainerId", s))?,
                    seq: app_seq.parse().map_err(|_| err("ContainerId", s))?,
                },
                attempt: attempt.parse().map_err(|_| err("ContainerId", s))?,
            },
            seq: seq.parse().map_err(|_| err("ContainerId", s))?,
        })
    }
}

/// A cluster node, printed as `nodeNN.cluster.local:45454` (the NodeManager
/// RPC address format YARN uses in its logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The NM RPC port used in the printed form.
    pub const PORT: u16 = 45454;

    /// The host part (`nodeNN.cluster.local`).
    pub fn host(self) -> String {
        format!("node{:02}.cluster.local", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{:02}.cluster.local:{}", self.0, Self::PORT)
    }
}

impl FromStr for NodeId {
    type Err = IdParseError;
    fn from_str(s: &str) -> Result<Self, IdParseError> {
        let host = s.split(':').next().unwrap_or(s);
        let rest = host.strip_prefix("node").ok_or_else(|| err("NodeId", s))?;
        let num = rest.split('.').next().ok_or_else(|| err("NodeId", s))?;
        Ok(NodeId(num.parse().map_err(|_| err("NodeId", s))?))
    }
}

/// An identifier recognized inside free-form message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScannedId {
    /// `application_...`
    App(ApplicationId),
    /// `appattempt_...`
    Attempt(AppAttemptId),
    /// `container_...`
    Container(ContainerId),
}

impl ScannedId {
    /// The application this id (transitively) belongs to.
    pub fn app(self) -> ApplicationId {
        match self {
            ScannedId::App(a) => a,
            ScannedId::Attempt(a) => a.app,
            ScannedId::Container(c) => c.app(),
        }
    }
}

/// Scan a message for embedded global IDs, in order of appearance.
///
/// This is the grouping key extraction at the core of SDchecker's log
/// mining: every Table-I message carries at least one of these IDs.
pub fn scan_ids(text: &str) -> Vec<ScannedId> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let rest = &text[i..];
        let (kind, prefix_len) = if rest.starts_with("application_") {
            ("app", "application_".len())
        } else if rest.starts_with("appattempt_") {
            ("attempt", "appattempt_".len())
        } else if rest.starts_with("container_") {
            ("container", "container_".len())
        } else {
            i += rest.chars().next().map_or(1, |c| c.len_utf8());
            continue;
        };
        // The id token extends over digits and underscores.
        let mut end = i + prefix_len;
        while end < bytes.len() && (bytes[end].is_ascii_digit() || bytes[end] == b'_') {
            end += 1;
        }
        // Trim trailing underscores that belong to surrounding prose.
        let mut token_end = end;
        while token_end > i && bytes[token_end - 1] == b'_' {
            token_end -= 1;
        }
        let token = &text[i..token_end];
        let parsed = match kind {
            "app" => token.parse::<ApplicationId>().ok().map(ScannedId::App),
            "attempt" => token.parse::<AppAttemptId>().ok().map(ScannedId::Attempt),
            _ => token.parse::<ContainerId>().ok().map(ScannedId::Container),
        };
        if let Some(id) = parsed {
            out.push(id);
        }
        i = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TS: u64 = 1_530_000_000_000;

    #[test]
    fn application_id_roundtrip() {
        let id = ApplicationId::new(TS, 17);
        let s = id.to_string();
        assert_eq!(s, "application_1530000000000_0017");
        assert_eq!(s.parse::<ApplicationId>().unwrap(), id);
    }

    #[test]
    fn application_id_large_seq() {
        let id = ApplicationId::new(TS, 123_456);
        let s = id.to_string();
        assert_eq!(s, "application_1530000000000_123456");
        assert_eq!(s.parse::<ApplicationId>().unwrap(), id);
    }

    #[test]
    fn attempt_id_roundtrip() {
        let id = ApplicationId::new(TS, 3).attempt(1);
        let s = id.to_string();
        assert_eq!(s, "appattempt_1530000000000_0003_000001");
        assert_eq!(s.parse::<AppAttemptId>().unwrap(), id);
    }

    #[test]
    fn container_id_roundtrip() {
        let id = ApplicationId::new(TS, 3).attempt(1).container(42);
        let s = id.to_string();
        assert_eq!(s, "container_1530000000000_0003_01_000042");
        assert_eq!(s.parse::<ContainerId>().unwrap(), id);
        assert!(!id.is_am());
        assert!(ApplicationId::new(TS, 3).attempt(1).container(1).is_am());
    }

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId(7);
        assert_eq!(n.to_string(), "node07.cluster.local:45454");
        assert_eq!(n.to_string().parse::<NodeId>().unwrap(), n);
        assert_eq!(
            "node12.cluster.local".parse::<NodeId>().unwrap(),
            NodeId(12)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("application_abc_1".parse::<ApplicationId>().is_err());
        assert!("app_1_1".parse::<ApplicationId>().is_err());
        assert!("container_1_2_3".parse::<ContainerId>().is_err());
        assert!("container_1_2_3_4_5".parse::<ContainerId>().is_err());
        assert!("host:123".parse::<NodeId>().is_err());
    }

    #[test]
    fn scan_finds_ids_in_prose() {
        let app = ApplicationId::new(TS, 9);
        let cont = app.attempt(1).container(2);
        let msg = format!(
            "Assigned container {cont} of capacity <memory:4096, vCores:8> on host node03, \
             which has 3 containers; app {app} total 2"
        );
        let ids = scan_ids(&msg);
        assert_eq!(ids, vec![ScannedId::Container(cont), ScannedId::App(app)]);
        assert_eq!(ids[0].app(), app);
    }

    #[test]
    fn scan_handles_adjacent_punctuation() {
        let app = ApplicationId::new(TS, 1);
        let msg = format!("{app}: State change; ({app})");
        assert_eq!(scan_ids(&msg).len(), 2);
    }

    #[test]
    fn scan_ignores_malformed() {
        assert!(scan_ids("application_ container_xyz appattempt_1").is_empty());
        assert!(scan_ids("no ids here").is_empty());
    }

    #[test]
    fn scan_attempt_not_confused_with_app() {
        // "appattempt_" must not be scanned as "application_"-like prefix.
        let att = ApplicationId::new(TS, 2).attempt(1);
        let ids = scan_ids(&format!("registered {att} ok"));
        assert_eq!(ids, vec![ScannedId::Attempt(att)]);
    }
}
