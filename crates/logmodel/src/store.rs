//! [`LogStore`]: per-source log streams with directory round-tripping.
//!
//! The simulator appends records as the run progresses; afterwards the store
//! can be flushed to a directory tree shaped like a real cluster log
//! collection, and SDchecker can read that tree back (or consume the store
//! in memory through [`LogStore::iter_lines`], which renders the same text).

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::format::{format_line, parse_line, Epoch};
use crate::par::{self, Parallelism};
use crate::record::{Level, LogRecord, LogSource};
use crate::TsMs;

/// Histogram bucket bounds for lines-per-log-file during ingest.
const LINES_PER_FILE_BOUNDS: &[u64] = &[10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// An in-memory collection of log streams, one per [`LogSource`].
#[derive(Debug)]
pub struct LogStore {
    epoch: Epoch,
    sources: BTreeMap<LogSource, Vec<LogRecord>>,
    total: usize,
}

impl LogStore {
    /// An empty store anchored at `epoch`.
    pub fn new(epoch: Epoch) -> LogStore {
        LogStore {
            epoch,
            sources: BTreeMap::new(),
            total: 0,
        }
    }

    /// The store's wall-clock anchor.
    pub fn epoch(&self) -> &Epoch {
        &self.epoch
    }

    /// Append a record to `source`'s stream.
    pub fn push(&mut self, source: LogSource, rec: LogRecord) {
        self.total += 1;
        self.sources.entry(source).or_default().push(rec);
    }

    /// Convenience: append an INFO record.
    pub fn info(&mut self, source: LogSource, ts: TsMs, class: &str, message: impl Into<String>) {
        self.push(source, LogRecord::new(ts, Level::Info, class, message));
    }

    /// All sources present, in deterministic order.
    pub fn sources(&self) -> impl Iterator<Item = LogSource> + '_ {
        self.sources.keys().copied()
    }

    /// The records of one source (empty slice if absent).
    pub fn records(&self, source: LogSource) -> &[LogRecord] {
        self.sources.get(&source).map_or(&[], |v| v.as_slice())
    }

    /// Total records across all sources.
    pub fn total_records(&self) -> usize {
        self.total
    }

    /// Render every line of every source as `(source, line)` pairs, exactly
    /// as they would appear on disk. Within a source, records keep append
    /// order (which the simulator guarantees is time order).
    pub fn iter_lines(&self) -> impl Iterator<Item = (LogSource, String)> + '_ {
        self.sources.iter().flat_map(move |(src, recs)| {
            recs.iter()
                .map(move |r| (*src, format_line(&self.epoch, r)))
        })
    }

    /// Render one source to its full text.
    pub fn render_source(&self, source: LogSource) -> String {
        let mut out = String::new();
        for r in self.records(source) {
            out.push_str(&format_line(&self.epoch, r));
            out.push('\n');
        }
        out
    }

    /// Flush to a directory tree (`resourcemanager.log`,
    /// `nodemanager-nodeNN.log`, `apps/<appId>/driver.log`, ...). The
    /// epoch is written to `epoch.txt` so reads can reconstruct offsets.
    pub fn write_dir(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join("epoch.txt"), format!("{}\n", self.epoch.unix_ms))?;
        for (src, _) in self.sources.iter() {
            let rel = src.rel_path();
            let path = dir.join(&rel);
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent)?;
            }
            let mut f = io::BufWriter::new(fs::File::create(&path)?);
            for r in self.records(*src) {
                writeln!(f, "{}", format_line(&self.epoch, r))?;
            }
            f.flush()?;
        }
        Ok(())
    }

    /// Read a directory tree previously written by [`LogStore::write_dir`]
    /// (or hand-assembled in the same layout). Unparseable lines are
    /// silently skipped, mirroring how the real tool must tolerate stack
    /// traces and banners.
    pub fn read_dir(dir: &Path) -> io::Result<LogStore> {
        Self::read_dir_with(dir, Parallelism::ONE)
    }

    /// [`LogStore::read_dir`] with one parse task per log file spread over
    /// `par` worker threads. The result is identical for every thread
    /// count: files are enumerated and merged in sorted-relative-path
    /// order, and each source's records are stably re-sorted by timestamp
    /// afterwards (rotated segments `x.log.1` merge into the same source).
    pub fn read_dir_with(dir: &Path, par: Parallelism) -> io::Result<LogStore> {
        let _span = obs::span("ingest").arg("dir", dir.display());
        let epoch = match fs::read_to_string(dir.join("epoch.txt")) {
            Ok(s) => Epoch {
                unix_ms: s.trim().parse().map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("bad epoch.txt: {e}"))
                })?,
            },
            Err(_) => Epoch::default_run(),
        };
        // Enumerate log files first (cheap), then parse them in parallel
        // (the expensive part). Sorting by relative path pins the merge
        // order so the store's contents never depend on directory
        // iteration order or worker scheduling.
        let mut files: Vec<(LogSource, String, PathBuf)> = Vec::new();
        let mut stack = vec![dir.to_path_buf()];
        while let Some(d) = stack.pop() {
            for entry in fs::read_dir(&d)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                    continue;
                }
                let rel = path
                    .strip_prefix(dir)
                    .map_err(|e| io::Error::other(e.to_string()))?
                    .to_string_lossy()
                    .into_owned();
                let Some(src) = LogSource::from_rel_path(&rel) else {
                    continue; // epoch.txt, stray files
                };
                files.push((src, rel, path));
            }
        }
        files.sort_by(|a, b| a.1.cmp(&b.1));

        obs::count("ingest_files_total", files.len() as u64);
        let parsed: Vec<io::Result<(LogSource, Vec<LogRecord>)>> =
            par::map(par, files, |(src, rel, path)| {
                let span = obs::span("ingest_file").arg("file", &rel);
                // Lossy decode: damaged collections carry garbage bytes
                // (bit rot, partially-overwritten blocks), and a hard
                // UTF-8 error here would reject the whole corpus over one
                // bad sector. Replacement characters make the affected
                // line unparseable, so it is skipped like any other
                // malformed line.
                let text = String::from_utf8_lossy(&fs::read(&path)?).into_owned();
                let mut lines = 0u64;
                let recs: Vec<LogRecord> = text
                    .lines()
                    .inspect(|_| lines += 1)
                    .filter_map(|line| parse_line(&epoch, line))
                    .collect();
                if span.is_active() {
                    let parsed = recs.len() as u64;
                    obs::count_labeled("ingest_lines_total", &[("status", "parsed")], parsed);
                    obs::count_labeled(
                        "ingest_lines_total",
                        &[("status", "skipped")],
                        lines - parsed,
                    );
                    obs::observe("ingest_file_lines", LINES_PER_FILE_BOUNDS, lines);
                }
                Ok((src, recs))
            });

        let mut store = LogStore::new(epoch);
        for result in parsed {
            let (src, recs) = result?;
            for rec in recs {
                store.push(src, rec);
            }
        }
        // Rotated segments (`x.log.1`) merge into the same source but may
        // arrive in arbitrary file order; restore time order so
        // first-record semantics (driver/executor FIRST_LOG) hold.
        for recs in store.sources_mut() {
            recs.sort_by_key(|r| r.ts);
        }
        Ok(store)
    }

    /// Mutable access to every source's record vector (internal; used to
    /// restore time order after merging rotated segments).
    fn sources_mut(&mut self) -> impl Iterator<Item = &mut Vec<LogRecord>> {
        self.sources.values_mut()
    }

    /// Every record of every source, globally ordered by timestamp (ties
    /// broken by source order, then append order). This is the order a
    /// live cluster would emit the lines in, so streamed log emission
    /// (`sdsim --stream-to`) replays it for a realistic tail workload.
    pub fn records_by_time(&self) -> Vec<(LogSource, &LogRecord)> {
        let mut all: Vec<(LogSource, &LogRecord)> = self
            .sources
            .iter()
            .flat_map(|(src, recs)| recs.iter().map(move |r| (*src, r)))
            .collect();
        // Stable sort: equal (ts, source) pairs keep append order.
        all.sort_by_key(|(src, r)| (r.ts, *src));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ApplicationId, NodeId};

    fn sample_store() -> LogStore {
        let epoch = Epoch::default_run();
        let mut s = LogStore::new(epoch);
        let app = ApplicationId::new(epoch.unix_ms, 1);
        s.info(
            LogSource::ResourceManager,
            TsMs(10),
            "RMAppImpl",
            format!("{app} State change from NEW_SAVING to SUBMITTED on event = START"),
        );
        s.info(
            LogSource::NodeManager(NodeId(3)),
            TsMs(500),
            "ContainerImpl",
            format!(
                "Container {} transitioned from NEW to LOCALIZING",
                app.attempt(1).container(1)
            ),
        );
        s.info(
            LogSource::Driver(app),
            TsMs(1200),
            "ApplicationMaster",
            "Registered with ResourceManager",
        );
        s
    }

    #[test]
    fn push_and_query() {
        let s = sample_store();
        assert_eq!(s.total_records(), 3);
        assert_eq!(s.sources().count(), 3);
        assert_eq!(s.records(LogSource::ResourceManager).len(), 1);
        let app = ApplicationId::new(s.epoch().unix_ms, 1);
        assert_eq!(s.records(LogSource::Driver(app)).len(), 1);
        assert_eq!(
            s.records(LogSource::Driver(ApplicationId::new(1, 9))).len(),
            0
        );
    }

    #[test]
    fn render_has_one_line_per_record() {
        let s = sample_store();
        let txt = s.render_source(LogSource::ResourceManager);
        assert_eq!(txt.lines().count(), 1);
        assert!(txt.contains("NEW_SAVING to SUBMITTED"));
        assert_eq!(s.iter_lines().count(), 3);
    }

    #[test]
    fn dir_roundtrip() {
        let s = sample_store();
        let dir = std::env::temp_dir().join(format!("logstore_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        s.write_dir(&dir).unwrap();
        let back = LogStore::read_dir(&dir).unwrap();
        assert_eq!(back.total_records(), s.total_records());
        assert_eq!(back.epoch(), s.epoch());
        for src in s.sources() {
            assert_eq!(back.records(src), s.records(src), "source {src:?}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotated_segments_merge_in_time_order() {
        let dir = std::env::temp_dir().join(format!("logstore_rot_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // Newer segment has later timestamps; rotation keeps the older
        // lines in the `.1` file.
        fs::write(
            dir.join("resourcemanager.log"),
            "2018-03-14 09:00:10,000 INFO  X: newer\n",
        )
        .unwrap();
        fs::write(
            dir.join("resourcemanager.log.1"),
            "2018-03-14 09:00:01,000 INFO  X: older\n",
        )
        .unwrap();
        let s = LogStore::read_dir(&dir).unwrap();
        let recs = s.records(LogSource::ResourceManager);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].message, "older");
        assert_eq!(recs[1].message, "newer");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn records_by_time_is_globally_ordered() {
        let s = sample_store();
        let ordered = s.records_by_time();
        assert_eq!(ordered.len(), 3);
        assert!(ordered.windows(2).all(|w| w[0].1.ts <= w[1].1.ts));
        assert_eq!(ordered[0].0, LogSource::ResourceManager);
        assert_eq!(ordered[0].1.ts, TsMs(10));
        assert_eq!(ordered[2].1.ts, TsMs(1200));
        // Equal timestamps fall back to source order (RM before NM).
        let mut tied = LogStore::new(Epoch::default_run());
        tied.info(LogSource::NodeManager(NodeId(1)), TsMs(5), "X", "nm");
        tied.info(LogSource::ResourceManager, TsMs(5), "X", "rm");
        let ordered = tied.records_by_time();
        assert_eq!(ordered[0].1.message, "rm");
        assert_eq!(ordered[1].1.message, "nm");
    }

    #[test]
    fn read_dir_skips_junk_lines_and_files() {
        let dir = std::env::temp_dir().join(format!("logstore_junk_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("resourcemanager.log"),
            "garbage line\n2018-03-14 09:00:00,001 INFO  X: ok\n\tat stack.frame\n",
        )
        .unwrap();
        fs::write(dir.join("README"), "not a log").unwrap();
        let s = LogStore::read_dir(&dir).unwrap();
        assert_eq!(s.total_records(), 1);
        assert_eq!(s.records(LogSource::ResourceManager)[0].message, "ok");
        fs::remove_dir_all(&dir).unwrap();
    }
}
