//! Log records and log sources.

use crate::ids::{ApplicationId, ContainerId, NodeId};
use crate::TsMs;
use std::fmt;

/// log4j severity level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// DEBUG
    Debug,
    /// INFO — the level all scheduling state transitions are logged at.
    Info,
    /// WARN
    Warn,
    /// ERROR
    Error,
}

impl Level {
    /// The fixed-width token used in log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }

    /// Parse a level token.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "DEBUG" => Some(Level::Debug),
            "INFO" => Some(Level::Info),
            "WARN" => Some(Level::Warn),
            "ERROR" => Some(Level::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` (not `write_str`) so `{:<5}` aligns the class column.
        f.pad(self.as_str())
    }
}

/// Which log file a record belongs to. Mirrors the log collection layout of
/// a real cluster: one ResourceManager log, one NodeManager log per node,
/// and per-application driver/executor logs (what `yarn logs -applicationId`
/// would aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogSource {
    /// The ResourceManager daemon log.
    ResourceManager,
    /// A NodeManager daemon log.
    NodeManager(NodeId),
    /// A Spark driver / MapReduce AppMaster container log.
    Driver(ApplicationId),
    /// A Spark executor / MapReduce task container log.
    Executor(ContainerId),
}

impl LogSource {
    /// Relative file path used when flushing a [`crate::LogStore`] to disk.
    pub fn rel_path(&self) -> String {
        match self {
            LogSource::ResourceManager => "resourcemanager.log".to_string(),
            LogSource::NodeManager(n) => format!("nodemanager-node{:02}.log", n.0),
            LogSource::Driver(app) => format!("apps/{app}/driver.log"),
            LogSource::Executor(cid) => {
                format!("apps/{}/executor_{cid}.log", cid.app())
            }
        }
    }

    /// Reconstruct the source from a relative path (inverse of
    /// [`LogSource::rel_path`]). Rotated segments (`….log.1`, `….log.2`)
    /// map to the same source as their base file, as log4j's rolling
    /// appender produces them.
    pub fn from_rel_path(path: &str) -> Option<LogSource> {
        let path = path.replace('\\', "/");
        // Strip a numeric rotation suffix.
        let path = match path.rsplit_once('.') {
            Some((base, suffix))
                if base.ends_with(".log") && suffix.chars().all(|c| c.is_ascii_digit()) =>
            {
                base.to_string()
            }
            _ => path,
        };
        if path == "resourcemanager.log" {
            return Some(LogSource::ResourceManager);
        }
        if let Some(rest) = path.strip_prefix("nodemanager-") {
            let host = rest.strip_suffix(".log")?;
            return host.parse().ok().map(LogSource::NodeManager);
        }
        if let Some(rest) = path.strip_prefix("apps/") {
            let (app_str, file) = rest.split_once('/')?;
            let app: ApplicationId = app_str.parse().ok()?;
            if file == "driver.log" {
                return Some(LogSource::Driver(app));
            }
            if let Some(cid_str) = file.strip_prefix("executor_") {
                let cid: ContainerId = cid_str.strip_suffix(".log")?.parse().ok()?;
                return Some(LogSource::Executor(cid));
            }
        }
        None
    }

    /// True for cluster-scheduler (YARN daemon) logs, false for
    /// application (Spark/MapReduce process) logs.
    pub fn is_cluster_log(&self) -> bool {
        matches!(self, LogSource::ResourceManager | LogSource::NodeManager(_))
    }
}

/// One log line: timestamp offset, level, emitting class, message text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Milliseconds since the run's epoch.
    pub ts: TsMs,
    /// Severity.
    pub level: Level,
    /// The log4j logger name's final component (e.g. `RMAppImpl`).
    pub class: String,
    /// Free-form message text (IDs embedded).
    pub message: String,
}

impl LogRecord {
    /// Construct a record.
    pub fn new(
        ts: TsMs,
        level: Level,
        class: impl Into<String>,
        message: impl Into<String>,
    ) -> LogRecord {
        LogRecord {
            ts,
            level,
            class: class.into(),
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TS: u64 = 1_530_000_000_000;

    #[test]
    fn level_roundtrip() {
        for l in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("TRACE"), None);
    }

    #[test]
    fn source_paths_roundtrip() {
        let app = ApplicationId::new(TS, 12);
        let cid = app.attempt(1).container(3);
        for src in [
            LogSource::ResourceManager,
            LogSource::NodeManager(NodeId(4)),
            LogSource::Driver(app),
            LogSource::Executor(cid),
        ] {
            let p = src.rel_path();
            assert_eq!(LogSource::from_rel_path(&p), Some(src), "path {p}");
        }
    }

    #[test]
    fn source_path_shapes() {
        let app = ApplicationId::new(TS, 12);
        assert_eq!(
            LogSource::NodeManager(NodeId(4)).rel_path(),
            "nodemanager-node04.log"
        );
        assert_eq!(
            LogSource::Driver(app).rel_path(),
            "apps/application_1530000000000_0012/driver.log"
        );
        assert!(LogSource::Driver(app).rel_path().starts_with("apps/"));
    }

    #[test]
    fn rotated_segments_map_to_base_source() {
        assert_eq!(
            LogSource::from_rel_path("resourcemanager.log.1"),
            Some(LogSource::ResourceManager)
        );
        assert_eq!(
            LogSource::from_rel_path("nodemanager-node04.log.12"),
            Some(LogSource::NodeManager(NodeId(4)))
        );
        assert_eq!(LogSource::from_rel_path("resourcemanager.log.x1"), None);
    }

    #[test]
    fn bad_paths_rejected() {
        assert_eq!(LogSource::from_rel_path("foo.log"), None);
        assert_eq!(LogSource::from_rel_path("apps/bad/driver.log"), None);
        assert_eq!(
            LogSource::from_rel_path("apps/application_1_1/unknown.log"),
            None
        );
    }

    #[test]
    fn cluster_vs_app_logs() {
        let app = ApplicationId::new(TS, 1);
        assert!(LogSource::ResourceManager.is_cluster_log());
        assert!(LogSource::NodeManager(NodeId(0)).is_cluster_log());
        assert!(!LogSource::Driver(app).is_cluster_log());
    }
}
