//! # logmodel — YARN/Spark log syntax, global IDs, and log stores
//!
//! This crate owns everything about log *syntax* shared between the
//! simulator (which writes logs) and SDchecker (which mines them):
//!
//! * the global identifiers YARN stamps into every message —
//!   [`ApplicationId`], [`AppAttemptId`], [`ContainerId`], [`NodeId`] —
//!   with their exact on-the-wire string formats and parsers;
//! * the log4j line format (`timestamp LEVEL class: message`, ISO-8601
//!   timestamps with millisecond precision, the precision SDchecker works
//!   at per §III-A of the paper);
//! * [`LogStore`], an in-memory collection of per-source log streams that
//!   can be flushed to / re-read from a directory tree shaped like a real
//!   cluster's log collection (`resourcemanager.log`, one NodeManager log
//!   per node, per-application driver/executor logs).
//!
//! SDchecker itself never links against the simulator: it consumes log
//! *text* through this crate's parsers, exactly as the paper's tool
//! consumes collected log files.

pub mod corrupt;
pub mod format;
pub mod ids;
pub mod par;
pub mod record;
pub mod schema;
pub mod store;

pub use corrupt::{corrupt_dir, CorruptConfig, CorruptReport, Rng64};
pub use format::{format_line, format_timestamp, parse_line, parse_timestamp, Epoch};
pub use ids::{
    scan_ids, AppAttemptId, ApplicationId, ContainerId, IdParseError, NodeId, ScannedId,
};
pub use par::Parallelism;
pub use record::{Level, LogRecord, LogSource};
pub use store::LogStore;

/// Millisecond time offset from the run's epoch. Mirrors `simkit::Millis`
/// but is redeclared here so sdchecker does not need to depend on the
/// simulation engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TsMs(pub u64);

impl TsMs {
    /// Zero offset.
    pub const ZERO: TsMs = TsMs(0);

    /// Difference `self - earlier`, saturating at zero.
    pub fn since(self, earlier: TsMs) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl std::fmt::Display for TsMs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsms_since_saturates() {
        assert_eq!(TsMs(10).since(TsMs(3)), 7);
        assert_eq!(TsMs(3).since(TsMs(10)), 0);
    }

    #[test]
    fn tsms_secs() {
        assert_eq!(TsMs(2500).as_secs_f64(), 2.5);
    }
}
