//! The log4j line format: rendering and parsing.
//!
//! Both YARN and Spark use log4j (paper §III-A); each message is
//!
//! ```text
//! 2018-03-14 09:00:17,123 INFO  RMAppImpl: application_... State change ...
//! ```
//!
//! i.e. an ISO-8601 timestamp with comma-separated milliseconds (log4j's
//! `ISO8601` date format), a level, the logger's class name, and the message.
//! Timestamps carry 1 ms precision — the precision bound of SDchecker.
//!
//! Calendar math is implemented directly (civil-from-days / days-from-civil,
//! Howard Hinnant's algorithms) rather than pulling in a chrono dependency:
//! we only need fixed-offset wall-clock rendering of an epoch plus a
//! millisecond offset.

use crate::record::{Level, LogRecord};
use crate::TsMs;

/// A wall-clock anchor for a run: log line timestamps are
/// `epoch + record.ts` rendered as civil date-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// Milliseconds since the Unix epoch at simulation time zero.
    pub unix_ms: u64,
}

impl Epoch {
    /// The default anchor used across this repository: 2018-03-14 09:00:00
    /// (an arbitrary morning in the paper's submission year). Also the
    /// source of the `cluster_ts` in application IDs.
    pub fn default_run() -> Epoch {
        // 2018-03-14T09:00:00Z = 1521018000 s.
        Epoch {
            unix_ms: 1_521_018_000_000,
        }
    }

    /// The Unix-ms instant of a simulation offset.
    pub fn instant(&self, ts: TsMs) -> u64 {
        self.unix_ms + ts.0
    }

    /// Convert a Unix-ms instant back to a simulation offset. `None` if the
    /// instant predates the epoch.
    pub fn offset_of(&self, unix_ms: u64) -> Option<TsMs> {
        unix_ms.checked_sub(self.unix_ms).map(TsMs)
    }
}

/// days → (year, month, day) for days since 1970-01-01 (Hinnant's
/// `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// (year, month, day) → days since 1970-01-01 (Hinnant's `days_from_civil`).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = if m > 2 { m - 3 } else { m + 9 } as u64;
    let doy = (153 * mp + 2) / 5 + d as u64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i64 - 719_468
}

/// Render a Unix-ms instant as `YYYY-MM-DD HH:MM:SS,mmm`.
pub fn format_unix_ms(unix_ms: u64) -> String {
    let days = (unix_ms / 86_400_000) as i64;
    let in_day = unix_ms % 86_400_000;
    let (y, mo, d) = civil_from_days(days);
    let ms = in_day % 1000;
    let s = (in_day / 1000) % 60;
    let mi = (in_day / 60_000) % 60;
    let h = in_day / 3_600_000;
    format!("{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02},{ms:03}")
}

/// Render a record timestamp under `epoch`.
pub fn format_timestamp(epoch: &Epoch, ts: TsMs) -> String {
    format_unix_ms(epoch.instant(ts))
}

/// Parse `YYYY-MM-DD HH:MM:SS,mmm` to a Unix-ms instant.
pub fn parse_timestamp(s: &str) -> Option<u64> {
    // Fixed-width format: positions are stable.
    if s.len() != 23 {
        return None;
    }
    let b = s.as_bytes();
    if b[4] != b'-'
        || b[7] != b'-'
        || b[10] != b' '
        || b[13] != b':'
        || b[16] != b':'
        || b[19] != b','
    {
        return None;
    }
    let num = |lo: usize, hi: usize| -> Option<u64> { s.get(lo..hi)?.parse().ok() };
    let y = num(0, 4)? as i64;
    let mo = num(5, 7)? as u32;
    let d = num(8, 10)? as u32;
    let h = num(11, 13)?;
    let mi = num(14, 16)?;
    let sec = num(17, 19)?;
    let ms = num(20, 23)?;
    if !(1..=12).contains(&mo) || !(1..=31).contains(&d) || h > 23 || mi > 59 || sec > 59 {
        return None;
    }
    let days = days_from_civil(y, mo, d);
    if days < 0 {
        return None;
    }
    Some(days as u64 * 86_400_000 + h * 3_600_000 + mi * 60_000 + sec * 1000 + ms)
}

/// Render a full log line.
pub fn format_line(epoch: &Epoch, rec: &LogRecord) -> String {
    format!(
        "{} {:<5} {}: {}",
        format_timestamp(epoch, rec.ts),
        rec.level,
        rec.class,
        rec.message
    )
}

/// Parse a log line back to a [`LogRecord`]. Returns `None` for lines that
/// do not match the format (SDchecker skips them — real logs contain stack
/// traces and banners too).
pub fn parse_line(epoch: &Epoch, line: &str) -> Option<LogRecord> {
    let line = line.trim_end();
    if line.len() < 25 {
        return None;
    }
    let ts_str = line.get(0..23)?;
    let unix_ms = parse_timestamp(ts_str)?;
    let ts = epoch.offset_of(unix_ms)?;
    let rest = line.get(24..)?; // skip the space after the timestamp
    let mut parts = rest.splitn(2, ' ');
    let level = Level::parse(parts.next()?)?;
    let after_level = parts.next()?.trim_start();
    let (class, message) = after_level.split_once(": ")?;
    Some(LogRecord::new(ts, level, class, message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_rendering() {
        let e = Epoch::default_run();
        assert_eq!(format_timestamp(&e, TsMs(0)), "2018-03-14 09:00:00,000");
        assert_eq!(
            format_timestamp(&e, TsMs(17_123)),
            "2018-03-14 09:00:17,123"
        );
        // Crosses a minute and an hour.
        assert_eq!(
            format_timestamp(&e, TsMs(3_600_000 + 61_005)),
            "2018-03-14 10:01:01,005"
        );
    }

    #[test]
    fn rendering_crosses_midnight() {
        let e = Epoch::default_run();
        let day = 86_400_000;
        assert_eq!(format_timestamp(&e, TsMs(day)), "2018-03-15 09:00:00,000");
        // 2018-03-31 + 1 day = April 1st.
        assert_eq!(
            format_timestamp(&e, TsMs(18 * day)),
            "2018-04-01 09:00:00,000"
        );
    }

    #[test]
    fn timestamp_roundtrip() {
        let e = Epoch::default_run();
        for off in [0u64, 1, 999, 1000, 59_999, 86_400_000 * 3 + 12_345_678] {
            let s = format_timestamp(&e, TsMs(off));
            let parsed = parse_timestamp(&s).unwrap();
            assert_eq!(e.offset_of(parsed), Some(TsMs(off)), "offset {off} => {s}");
        }
    }

    #[test]
    fn parse_timestamp_rejects_malformed() {
        assert_eq!(parse_timestamp("2018-03-14 09:00:00.000"), None); // dot not comma
        assert_eq!(parse_timestamp("2018-03-14T09:00:00,000"), None);
        assert_eq!(parse_timestamp("18-03-14 09:00:00,000"), None);
        assert_eq!(parse_timestamp("2018-13-14 09:00:00,000"), None);
        assert_eq!(parse_timestamp(""), None);
    }

    #[test]
    fn line_roundtrip() {
        let e = Epoch::default_run();
        let rec = LogRecord::new(
            TsMs(5_123),
            Level::Info,
            "RMAppImpl",
            "application_1521018000000_0001 State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED",
        );
        let line = format_line(&e, &rec);
        assert_eq!(
            line,
            "2018-03-14 09:00:05,123 INFO  RMAppImpl: application_1521018000000_0001 State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"
        );
        assert_eq!(parse_line(&e, &line), Some(rec));
    }

    #[test]
    fn line_levels_align() {
        let e = Epoch::default_run();
        let rec = LogRecord::new(TsMs(0), Level::Error, "C", "m");
        let line = format_line(&e, &rec);
        assert!(line.contains(" ERROR C: m"), "{line}");
        assert_eq!(parse_line(&e, &line), Some(rec));
    }

    #[test]
    fn parse_line_skips_non_log_lines() {
        let e = Epoch::default_run();
        assert_eq!(parse_line(&e, ""), None);
        assert_eq!(
            parse_line(&e, "    at java.lang.Thread.run(Thread.java:748)"),
            None
        );
        assert_eq!(
            parse_line(&e, "SLF4J: Class path contains multiple bindings"),
            None
        );
        // Pre-epoch timestamps are rejected (cannot be mapped to offsets).
        assert_eq!(parse_line(&e, "2018-03-14 08:59:59,999 INFO  C: m"), None);
    }

    #[test]
    fn parse_line_message_with_colons() {
        let e = Epoch::default_run();
        let line = "2018-03-14 09:00:00,000 INFO  ContainerImpl: Container container_1521018000000_0001_01_000002 transitioned from LOCALIZING to SCHEDULED: ok";
        let rec = parse_line(&e, line).unwrap();
        assert_eq!(rec.class, "ContainerImpl");
        assert!(rec.message.ends_with("SCHEDULED: ok"));
    }

    #[test]
    fn civil_calendar_spot_checks() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(days_from_civil(2000, 2, 29)), (2000, 2, 29));
        assert_eq!(civil_from_days(days_from_civil(2018, 3, 14)), (2018, 3, 14));
        // Leap-year boundary.
        assert_eq!(
            civil_from_days(days_from_civil(2016, 2, 28) + 1),
            (2016, 2, 29)
        );
        assert_eq!(
            civil_from_days(days_from_civil(2017, 2, 28) + 1),
            (2017, 3, 1)
        );
    }
}
