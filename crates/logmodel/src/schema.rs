//! The shared log-vocabulary types of the emitter↔parser contract.
//!
//! SDchecker's premise is that scheduler logs are a reliable mirror of
//! the state machines that emit them (paper §III-A / Table I). That only
//! holds while the *emitters* (`yarnsim`, `sparksim`) and the *parser*
//! (`sdchecker`) agree on every message shape — and that agreement used
//! to be implicit: a string in a `format!` here, a pattern literal there.
//!
//! This module reifies the contract. Emitting crates export their
//! message vocabulary as [`MsgTemplate`] tables and their state machines
//! as [`MachineSpec`]s; the parser exports its pattern table; and the
//! `sdlint` crate cross-checks the two statically. The types live in
//! `logmodel` because it is the one crate both sides already depend on.

use std::fmt;

/// Which log family a message is written to (mirrors the four stream
/// families of the corpus layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    /// `resourcemanager.log`.
    ResourceManager,
    /// `nodemanager-node*.log`.
    NodeManager,
    /// `apps/<appId>/driver.log`.
    Driver,
    /// `apps/<appId>/executor-*.log`.
    Executor,
}

impl Family {
    /// Stable display name (matches `sdchecker`'s coverage labels).
    pub fn name(self) -> &'static str {
        match self {
            Family::ResourceManager => "resourcemanager",
            Family::NodeManager => "nodemanager",
            Family::Driver => "driver",
            Family::Executor => "executor",
        }
    }
}

/// What the extraction rules are expected to do with a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Scheduling-relevant: exactly one extractor pattern must match it
    /// (no misses, no shadowing).
    Event,
    /// Scheduling-relevant but consumed by a *positional* rule (the
    /// paper's "first log message marks the successful launching" trick,
    /// §III-B): no shape-based pattern may match it, and its family must
    /// carry a positional rule.
    Positional,
    /// Realism/noise: no shape-based extractor pattern may match it
    /// (a match would mean noise is being misread as evidence).
    Noise,
}

/// One message template an emitter can write: literal text with `{}`
/// capture holes, bound to its log4j class and log family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgTemplate {
    /// Stable identifier used in diagnostics (e.g. `rm_app_state_change`).
    pub name: &'static str,
    /// The log4j class the message is logged under.
    pub class: &'static str,
    /// Which log family the message is written to.
    pub family: Family,
    /// The message shape: literal text with `{}` holes.
    pub template: &'static str,
    /// What the parser is expected to do with it.
    pub disposition: Disposition,
    /// The source file of the emit site (diagnostics).
    pub file: &'static str,
}

impl MsgTemplate {
    /// Number of `{}` holes in the template.
    pub fn holes(&self) -> usize {
        self.template.split("{}").count() - 1
    }

    /// Render the template with concrete values, one per hole.
    ///
    /// Arity mismatches are a programming error caught by
    /// `debug_assert` (and by `sdlint`'s bounded model check, which
    /// exercises every emit site under test builds); in release builds
    /// extra values are dropped and missing ones render as empty.
    pub fn msg(&self, args: &[&dyn fmt::Display]) -> String {
        debug_assert_eq!(
            args.len(),
            self.holes(),
            "template {} takes {} values",
            self.name,
            self.holes()
        );
        let mut out = String::with_capacity(self.template.len() + 16 * args.len());
        let mut args = args.iter();
        for (i, part) in self.template.split("{}").enumerate() {
            if i > 0 {
                if let Some(a) = args.next() {
                    use fmt::Write as _;
                    let _ = write!(out, "{a}");
                }
            }
            out.push_str(part);
        }
        out
    }

    /// Render with placeholder values (`x0`, `x1`, ...) — the sample
    /// instantiation `sdlint` uses for shape conformance checks.
    pub fn sample(&self) -> String {
        let vals: Vec<String> = (0..self.holes()).map(|i| format!("x{i}")).collect();
        let refs: Vec<&dyn fmt::Display> = vals.iter().map(|v| v as &dyn fmt::Display).collect();
        self.msg(&refs)
    }
}

/// A state machine reified as data: states (by display name), the
/// initial state, the terminal set, and the legal-transition matrix.
/// Emitting crates build these from their state enums so checkers can
/// analyze reachability and dead-ends without generics over the enums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSpec {
    /// The log4j class whose transitions this machine logs
    /// (e.g. `RMAppImpl`).
    pub name: &'static str,
    /// All states, by display name (log spelling).
    pub states: Vec<&'static str>,
    /// Index of the initial state in `states`.
    pub initial: usize,
    /// `terminal[i]` — whether `states[i]` is terminal.
    pub terminal: Vec<bool>,
    /// `can_go[i][j]` — whether `states[i] → states[j]` is legal.
    pub can_go: Vec<Vec<bool>>,
}

impl MachineSpec {
    /// Index of a state by display name.
    pub fn index_of(&self, state: &str) -> Option<usize> {
        self.states.iter().position(|s| *s == state)
    }

    /// Whether the named transition is legal.
    pub fn legal(&self, from: &str, to: &str) -> bool {
        match (self.index_of(from), self.index_of(to)) {
            (Some(f), Some(t)) => self.can_go[f][t],
            _ => false,
        }
    }

    /// All states reachable from the initial state.
    pub fn reachable(&self) -> Vec<bool> {
        let n = self.states.len();
        let mut seen = vec![false; n];
        let mut stack = vec![self.initial];
        seen[self.initial] = true;
        while let Some(i) = stack.pop() {
            for (j, reach) in seen.iter_mut().enumerate() {
                if self.can_go[i][j] && !*reach {
                    *reach = true;
                    stack.push(j);
                }
            }
        }
        seen
    }
}

/// Levenshtein edit distance — used to name the *nearest* known shape
/// in drift diagnostics.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// How strongly `message` resembles a `{}`-holed template: the fraction
/// of the template's literal text found in the message, in order
/// (1.0 = every literal segment present — the message differs only in
/// its captured values). This is the near-miss score behind "this
/// unmatched line resembles template X".
pub fn template_affinity(template: &str, message: &str) -> f64 {
    let mut literal_len = 0usize;
    let mut found_len = 0usize;
    let mut rest = message;
    for part in template.split("{}") {
        if part.is_empty() {
            continue;
        }
        literal_len += part.len();
        if let Some(pos) = rest.find(part) {
            found_len += part.len();
            rest = &rest[pos + part.len()..];
        }
    }
    if literal_len == 0 {
        return 0.0;
    }
    found_len as f64 / literal_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: MsgTemplate = MsgTemplate {
        name: "t",
        class: "C",
        family: Family::ResourceManager,
        template: "{} State change from {} to {} on event = {}",
        disposition: Disposition::Event,
        file: "schema.rs",
    };

    #[test]
    fn holes_and_msg_round_trip_format() {
        assert_eq!(T.holes(), 4);
        let got = T.msg(&[&"app_1_0001", &"SUBMITTED", &"ACCEPTED", &"APP_ACCEPTED"]);
        assert_eq!(
            got,
            "app_1_0001 State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"
        );
    }

    #[test]
    fn sample_fills_placeholders() {
        assert_eq!(T.sample(), "x0 State change from x1 to x2 on event = x3");
        let no_holes = MsgTemplate {
            template: "just text",
            ..T
        };
        assert_eq!(no_holes.sample(), "just text");
    }

    #[test]
    fn trailing_hole_renders() {
        let t = MsgTemplate {
            template: "Localizer failed for {}",
            ..T
        };
        assert_eq!(t.holes(), 1);
        assert_eq!(
            t.msg(&[&"container_1_0001_01_000001"]),
            "Localizer failed for container_1_0001_01_000001"
        );
    }

    #[test]
    fn machine_spec_reachability_and_legality() {
        // A ─→ B ─→ C(terminal); D unreachable.
        let m = MachineSpec {
            name: "M",
            states: vec!["A", "B", "C", "D"],
            initial: 0,
            terminal: vec![false, false, true, false],
            can_go: vec![
                vec![false, true, false, false],
                vec![false, false, true, false],
                vec![false, false, false, false],
                vec![false, false, true, false],
            ],
        };
        assert!(m.legal("A", "B"));
        assert!(!m.legal("A", "C"));
        assert!(!m.legal("A", "NOPE"));
        assert_eq!(m.reachable(), vec![true, true, true, false]);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("transitioned", "Transitioned"), 1);
        assert_eq!(edit_distance("", "xyz"), 3);
    }

    #[test]
    fn affinity_scores_near_misses_high() {
        let tpl = "Container {} transitioned from {} to {}";
        assert_eq!(
            template_affinity(tpl, "Container c_9 transitioned from NEW to PAUSED"),
            1.0
        );
        assert!(template_affinity(tpl, "Re-sorting assigned queue") < 0.2);
        // Out-of-order literals don't count.
        assert!(template_affinity("a {} b", "b then a") < 1.0);
        assert_eq!(template_affinity("{}", "anything"), 0.0);
    }
}
