//! A minimal scoped worker pool for the offline analysis pipeline.
//!
//! SDchecker's workload is embarrassingly parallel at two granularities —
//! per log stream and per application — so all we need is a deterministic
//! ordered `map` over a work list. This module provides exactly that on
//! `std::thread::scope` (no external dependencies): results come back in
//! input order regardless of which worker ran which item, and
//! `Parallelism::ONE` runs the plain sequential loop on the calling thread
//! with no pool at all, so the single-threaded path is byte-for-byte the
//! pre-parallelism code path.
//!
//! Later PRs should reuse this instead of hand-rolling thread scopes.

use std::sync::Mutex;

/// How many worker threads a pipeline stage may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Strictly sequential: run everything on the calling thread.
    pub const ONE: Parallelism = Parallelism { threads: 1 };

    /// Exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Parallelism {
        Parallelism {
            threads: threads.max(1),
        }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Parallelism {
        Parallelism::new(Self::hardware_threads())
    }

    /// The machine's available hardware parallelism (1 when unknown).
    pub fn hardware_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// `requested` workers clamped to the hardware parallelism. More
    /// workers than hardware threads only adds scheduling overhead
    /// (benchmarks show a net slowdown), so binaries route `--threads`
    /// through here and report requested vs effective separately.
    pub fn clamped(requested: usize) -> Parallelism {
        Parallelism::new(requested.max(1).min(Self::hardware_threads()))
    }

    /// The configured worker count.
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Whether this configuration runs the sequential code path.
    pub fn is_sequential(self) -> bool {
        self.threads == 1
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::auto()
    }
}

/// Apply `f` to every item, returning results in input order.
///
/// With `Parallelism::ONE` (or fewer than two items) this is exactly
/// `items.into_iter().map(f).collect()` on the calling thread. Otherwise a
/// scoped pool of `min(threads, items)` workers pulls items off a shared
/// queue; the pool lives only for the duration of the call, so `f` may
/// borrow from the caller's stack.
///
/// A panic in `f` propagates to the caller once all workers have stopped.
pub fn map<T, R, F>(par: Parallelism, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if par.is_sequential() || items.len() < 2 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let workers = par.threads().min(n);
    let queue = Mutex::new(items.into_iter().enumerate());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for w in 0..workers {
            let (queue, done, f) = (&queue, &done, &f);
            s.spawn(move || {
                let _span = obs::span("par_worker").arg("worker", w).arg("items", n);
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    // Take one item per lock so a slow item cannot starve
                    // the other workers of the rest of the queue.
                    let Some((idx, item)) = queue.lock().unwrap().next() else {
                        break;
                    };
                    local.push((idx, f(item)));
                }
                done.lock().unwrap().append(&mut local);
            });
        }
    });
    let mut done = done.into_inner().unwrap();
    debug_assert_eq!(done.len(), n);
    done.sort_by_key(|(idx, _)| *idx);
    done.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..100).collect();
        let seq = map(Parallelism::ONE, items.clone(), |x| x * x);
        for threads in [2, 3, 8, 64] {
            let par = map(Parallelism::new(threads), items.clone(), |x| x * x);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn order_is_input_order_despite_uneven_work() {
        let items: Vec<usize> = (0..32).collect();
        let out = map(Parallelism::new(4), items, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_from_caller_stack() {
        let base = [10u64, 20, 30];
        let out = map(Parallelism::new(2), vec![0usize, 1, 2], |i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn empty_and_single_item() {
        let out: Vec<u32> = map(Parallelism::new(8), Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
        let out = map(Parallelism::new(8), vec![5u32], |x| x + 1);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn parallelism_clamps_and_defaults() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert!(Parallelism::ONE.is_sequential());
        assert!(Parallelism::auto().threads() >= 1);
        assert!(!Parallelism::new(2).is_sequential());
    }

    #[test]
    fn clamped_never_exceeds_hardware() {
        let hw = Parallelism::hardware_threads();
        assert!(hw >= 1);
        assert_eq!(Parallelism::clamped(0).threads(), 1);
        assert_eq!(Parallelism::clamped(1).threads(), 1);
        assert_eq!(Parallelism::clamped(hw).threads(), hw);
        assert_eq!(Parallelism::clamped(hw + 100).threads(), hw);
    }
}
