//! Deterministic log-corruption harness: damage an on-disk log corpus the
//! way real collections get damaged — truncated files (disk full, node
//! died mid-rotation), clipped lines, duplicated lines (double-flushed
//! appenders), reordered lines (interleaved rotation segments), and
//! garbage bytes (bit rot, partially-overwritten blocks).
//!
//! The harness is seeded: the same `(corpus, seed, config)` triple always
//! produces the same damage, so fuzz failures replay exactly. SDchecker's
//! robustness contract is checked against this module's output: for *any*
//! seed the analyzer must exit cleanly and account for every application
//! it can still see.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Small deterministic PRNG (xorshift64*). Not cryptographic — it only
/// needs to be fast, seedable, and stable across platforms, so corruption
/// runs replay bit-for-bit from a seed.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seeded generator. A zero seed is remapped (xorshift fixes on 0).
    pub fn new(seed: u64) -> Rng64 {
        Rng64 {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

/// Per-file damage probabilities. Each knob is the chance that the named
/// operation is applied to a given log file; several can hit one file.
#[derive(Debug, Clone)]
pub struct CorruptConfig {
    /// Drop the tail of the file at a random byte offset (mid-line cuts
    /// included — the classic "collection stopped here" artifact).
    pub truncate: f64,
    /// Clip a random suffix off individual lines.
    pub clip_line: f64,
    /// Duplicate individual lines in place.
    pub duplicate_line: f64,
    /// Swap adjacent lines (rotation-merge reordering).
    pub swap_lines: f64,
    /// Overwrite a short span of a line with garbage bytes.
    pub garbage: f64,
}

impl Default for CorruptConfig {
    fn default() -> CorruptConfig {
        CorruptConfig {
            truncate: 0.3,
            clip_line: 0.05,
            duplicate_line: 0.05,
            swap_lines: 0.05,
            garbage: 0.05,
        }
    }
}

impl CorruptConfig {
    /// A harsher profile: most files damaged, many lines hit.
    pub fn severe() -> CorruptConfig {
        CorruptConfig {
            truncate: 0.6,
            clip_line: 0.2,
            duplicate_line: 0.2,
            swap_lines: 0.2,
            garbage: 0.2,
        }
    }
}

/// Summary of the damage a [`corrupt_dir`] pass inflicted.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CorruptReport {
    /// Log files rewritten (at least one operation applied).
    pub files_damaged: usize,
    /// Files whose tail was truncated.
    pub truncated: usize,
    /// Individual lines clipped, duplicated, swapped, or garbled.
    pub lines_damaged: usize,
}

/// Walk every `*.log` file under `dir` (sorted for determinism) and apply
/// seeded damage per `cfg`. `epoch.txt` is left intact — destroying it
/// models a different failure (no corpus at all) that callers test
/// separately. Returns what was damaged.
pub fn corrupt_dir(dir: &Path, seed: u64, cfg: &CorruptConfig) -> io::Result<CorruptReport> {
    let mut files = Vec::new();
    collect_logs(dir, &mut files)?;
    files.sort();
    let mut rng = Rng64::new(seed);
    let mut report = CorruptReport::default();
    for path in files {
        let bytes = fs::read(&path)?;
        let (damaged, file_report) = corrupt_bytes(&bytes, &mut rng, cfg);
        if file_report.files_damaged > 0 {
            fs::write(&path, damaged)?;
            report.files_damaged += 1;
            report.truncated += file_report.truncated;
            report.lines_damaged += file_report.lines_damaged;
        }
    }
    Ok(report)
}

fn collect_logs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_logs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "log") {
            out.push(path);
        }
    }
    Ok(())
}

/// Apply the configured operations to one file's bytes. Pure — the RNG is
/// the only state — so unit tests can pin exact outputs.
fn corrupt_bytes(bytes: &[u8], rng: &mut Rng64, cfg: &CorruptConfig) -> (Vec<u8>, CorruptReport) {
    let mut report = CorruptReport::default();
    let mut lines: Vec<Vec<u8>> = bytes.split(|&b| b == b'\n').map(|l| l.to_vec()).collect();
    // split leaves one empty trailing element for a newline-terminated
    // file; keep it so re-joining preserves the terminator.
    let n_real = lines.len().saturating_sub(1);

    let mut i = 0;
    while i < n_real {
        if cfg.duplicate_line > 0.0 && rng.chance(cfg.duplicate_line) {
            lines.insert(i + 1, lines[i].clone());
            report.lines_damaged += 1;
            i += 2;
            continue;
        }
        if cfg.swap_lines > 0.0 && i + 1 < n_real && rng.chance(cfg.swap_lines) {
            lines.swap(i, i + 1);
            report.lines_damaged += 1;
            i += 2;
            continue;
        }
        if cfg.clip_line > 0.0 && !lines[i].is_empty() && rng.chance(cfg.clip_line) {
            let keep = rng.below(lines[i].len());
            lines[i].truncate(keep);
            report.lines_damaged += 1;
        } else if cfg.garbage > 0.0 && lines[i].len() > 4 && rng.chance(cfg.garbage) {
            let start = rng.below(lines[i].len() - 2);
            let span = 1 + rng.below((lines[i].len() - start).min(8));
            for b in &mut lines[i][start..start + span] {
                *b = (rng.next_u64() % 256) as u8;
                // keep it one line: newline bytes would split it.
                if *b == b'\n' {
                    *b = b'?';
                }
            }
            report.lines_damaged += 1;
        }
        i += 1;
    }
    let mut out = lines.join(&b'\n');
    if cfg.truncate > 0.0 && !out.is_empty() && rng.chance(cfg.truncate) {
        let keep = rng.below(out.len());
        out.truncate(keep);
        report.truncated += 1;
    }
    if report.truncated > 0 || report.lines_damaged > 0 {
        report.files_damaged = 1;
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_nonzero() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut z = Rng64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn corruption_replays_from_seed() {
        let text = (0..50)
            .map(|i| format!("2017-09-0{} 10:00:00,{:03} INFO  C: line {i}", i % 9 + 1, i))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        let cfg = CorruptConfig::severe();
        let (a, ra) = corrupt_bytes(text.as_bytes(), &mut Rng64::new(7), &cfg);
        let (b, rb) = corrupt_bytes(text.as_bytes(), &mut Rng64::new(7), &cfg);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert!(ra.files_damaged > 0, "severe config should damage 50 lines");
        // A different seed produces different damage.
        let (c, _) = corrupt_bytes(text.as_bytes(), &mut Rng64::new(8), &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_config_is_identity() {
        let cfg = CorruptConfig {
            truncate: 0.0,
            clip_line: 0.0,
            duplicate_line: 0.0,
            swap_lines: 0.0,
            garbage: 0.0,
        };
        let text = b"one\ntwo\nthree\n";
        let (out, report) = corrupt_bytes(text, &mut Rng64::new(1), &cfg);
        assert_eq!(out, text);
        assert_eq!(report, CorruptReport::default());
    }

    #[test]
    fn corrupt_dir_rewrites_only_log_files() {
        let dir = std::env::temp_dir().join(format!("logmodel_cr_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("apps/app_1")).unwrap();
        let line = "2017-09-01 10:00:00,000 INFO  C: hello corruption harness\n";
        fs::write(dir.join("resourcemanager.log"), line.repeat(40)).unwrap();
        fs::write(dir.join("apps/app_1/driver.log"), line.repeat(40)).unwrap();
        fs::write(dir.join("epoch.txt"), "1504260000000\n").unwrap();
        let report = corrupt_dir(&dir, 99, &CorruptConfig::severe()).unwrap();
        assert!(report.files_damaged >= 1);
        // epoch.txt is untouched.
        assert_eq!(
            fs::read_to_string(dir.join("epoch.txt")).unwrap(),
            "1504260000000\n"
        );
        // Deterministic: re-damaging a fresh copy gives the same report.
        let dir2 = std::env::temp_dir().join(format!("logmodel_cr2_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir2);
        fs::create_dir_all(dir2.join("apps/app_1")).unwrap();
        fs::write(dir2.join("resourcemanager.log"), line.repeat(40)).unwrap();
        fs::write(dir2.join("apps/app_1/driver.log"), line.repeat(40)).unwrap();
        fs::write(dir2.join("epoch.txt"), "1504260000000\n").unwrap();
        let report2 = corrupt_dir(&dir2, 99, &CorruptConfig::severe()).unwrap();
        assert_eq!(report, report2);
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }
}
