//! The `World`: the complete simulation model — cluster + applications —
//! pluggable into `simkit`'s engine.
//!
//! The world routes three event families:
//!
//! * [`Ev::Cluster`] — yarnsim's internal events (scheduler ticks,
//!   heartbeats, resource-flow completions);
//! * [`Ev::Submit`] — a job arrival from the workload trace;
//! * [`Ev::Run`] — application-layer events (executor registrations).
//!
//! Cluster notices cascade: an application's reaction to a notice may
//! produce further notices at the same timestamp (e.g. a granted container
//! is launched, which immediately hits a cached localization). The handler
//! drains notices to a fixed point before returning to the kernel.

use std::collections::BTreeMap;

use logmodel::{ApplicationId, Epoch, LogStore};
use simkit::{Ctx, Engine, Millis, Model, SimRng};
use yarnsim::{AppNotice, Cluster, ClusterConfig, ClusterEvent, Out};

use crate::job::{Framework, JobSpec};
use crate::run::{JobSummary, MrRun, Run, RunEvent, SparkRun, Wx};

/// World events.
#[derive(Debug)]
pub enum Ev {
    /// A cluster-internal event.
    Cluster(ClusterEvent),
    /// A job arrives (from the workload trace).
    Submit(Box<JobSpec>),
    /// An application-layer event.
    Run(RunEvent),
}

/// The full simulation state.
pub struct World {
    /// The cluster substrate.
    pub cluster: Cluster,
    /// The shared log corpus (what SDchecker will mine).
    pub logs: LogStore,
    runs: BTreeMap<ApplicationId, Run>,
    rng_sub: SimRng,
    jobs_submitted: u64,
    /// Completed jobs, in completion order.
    pub summaries: Vec<JobSummary>,
}

impl World {
    /// A world over `cfg`, deterministically seeded.
    pub fn new(cfg: ClusterConfig, seed: u64) -> World {
        let epoch = Epoch::default_run();
        let root = SimRng::new(seed);
        World {
            cluster: Cluster::new(cfg, epoch.unix_ms, root.fork_named("cluster").seed()),
            logs: LogStore::new(epoch),
            runs: BTreeMap::new(),
            rng_sub: root.fork_named("apps"),
            jobs_submitted: 0,
            summaries: Vec::new(),
        }
    }

    /// Jobs submitted so far.
    pub fn jobs_submitted(&self) -> u64 {
        self.jobs_submitted
    }

    /// Jobs still running.
    pub fn jobs_live(&self) -> usize {
        self.runs.len()
    }

    fn do_submit(&mut self, now: Millis, spec: JobSpec, out: &mut Out) {
        self.jobs_submitted += 1;
        let mut rng = self.rng_sub.fork(self.jobs_submitted);
        let submission = match spec.framework {
            Framework::Spark => SparkRun::submission(&spec, &mut rng),
            Framework::MapReduce => MrRun::submission(&spec, &mut rng),
        };
        let app = self
            .cluster
            .submit_application(now, submission, &mut self.logs, out);
        self.runs.insert(app, Run::new(spec, app, now, rng));
    }

    fn notice_app(n: &AppNotice) -> ApplicationId {
        match n {
            AppNotice::ContainersGranted { app, .. }
            | AppNotice::ProcessStarted { app, .. }
            | AppNotice::WorkDone { app, .. }
            | AppNotice::ProcessFailed { app, .. }
            | AppNotice::AttemptRetry { app, .. }
            | AppNotice::AppFailed { app } => *app,
        }
    }
}

impl Model for World {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<Ev>) {
        let now = ctx.now();
        let mut out = Out::new();
        let mut later: Vec<(Millis, RunEvent)> = Vec::new();
        match ev {
            Ev::Cluster(cev) => self.cluster.handle(now, cev, &mut self.logs, &mut out),
            Ev::Submit(spec) => self.do_submit(now, *spec, &mut out),
            Ev::Run(rev) => {
                let RunEvent::ExecutorRegistered { app, .. } = rev;
                if let Some(run) = self.runs.get_mut(&app) {
                    let mut wx = Wx {
                        now,
                        cluster: &mut self.cluster,
                        logs: &mut self.logs,
                        out: &mut out,
                        later: &mut later,
                    };
                    run.on_run_event(rev, &mut wx);
                }
            }
        }
        // Drain the notice cascade at this timestamp.
        while !out.notices.is_empty() {
            let notices = std::mem::take(&mut out.notices);
            for n in notices {
                let app = Self::notice_app(&n);
                if let Some(run) = self.runs.get_mut(&app) {
                    let mut wx = Wx {
                        now,
                        cluster: &mut self.cluster,
                        logs: &mut self.logs,
                        out: &mut out,
                        later: &mut later,
                    };
                    run.on_notice(n, &mut wx);
                }
                // Notices for finished/unknown apps (stray work
                // completions after teardown) are dropped.
            }
        }
        // Sweep finished runs into summaries.
        let summaries = &mut self.summaries;
        self.runs.retain(|_, r| match r.summary() {
            Some(s) => {
                summaries.push(s);
                false
            }
            None => true,
        });
        for (t, e) in out.events {
            ctx.schedule_at(t, Ev::Cluster(e));
        }
        for (t, e) in later {
            ctx.schedule_at(t, Ev::Run(e));
        }
    }

    fn event_label(ev: &Ev) -> &'static str {
        match ev {
            Ev::Cluster(_) => "cluster",
            Ev::Submit(_) => "submit",
            Ev::Run(_) => "run",
        }
    }
}

/// Convenience runner: build a world, schedule `arrivals`, and run to
/// completion (bounded by `horizon` as a safety net). Returns the log
/// corpus and the completed-job summaries.
pub fn simulate(
    cfg: ClusterConfig,
    seed: u64,
    arrivals: Vec<(Millis, JobSpec)>,
    horizon: Millis,
) -> (LogStore, Vec<JobSummary>) {
    let mut world = World::new(cfg, seed);
    let mut start_out = Out::new();
    world.cluster.start(&mut start_out);
    let mut engine = Engine::new(world, seed ^ 0x5157_u64);
    for (t, e) in start_out.events {
        engine.schedule_at(t, Ev::Cluster(e));
    }
    for (at, spec) in arrivals {
        engine.schedule_at(at, Ev::Submit(Box::new(spec)));
    }
    engine.run_until(horizon);
    let world = engine.into_model();
    (world.logs, world.summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use logmodel::LogSource;

    fn run_one(spec: JobSpec) -> (LogStore, Vec<JobSummary>) {
        simulate(
            ClusterConfig::default(),
            42,
            vec![(Millis(100), spec)],
            Millis::from_mins(240),
        )
    }

    #[test]
    fn single_sql_job_completes_with_full_log_evidence() {
        let (logs, summaries) = run_one(profiles::spark_sql_default(2048.0, 4));
        assert_eq!(summaries.len(), 1, "job must complete");
        let s = &summaries[0];
        assert!(
            s.runtime() > Millis::from_secs(5),
            "runtime {}",
            s.runtime()
        );
        assert!(
            s.runtime() < Millis::from_mins(5),
            "runtime {}",
            s.runtime()
        );

        let app = s.app;
        // Table-I evidence, message by message.
        let rm_text = logs.render_source(LogSource::ResourceManager);
        for needle in [
            "from NEW_SAVING to SUBMITTED",  // 1
            "from SUBMITTED to ACCEPTED",    // 2
            "on event = ATTEMPT_REGISTERED", // 3
            "from NEW to ALLOCATED",         // 4
            "from ALLOCATED to ACQUIRED",    // 5
        ] {
            assert!(rm_text.contains(needle), "RM log missing {needle:?}");
        }
        let driver_text = logs.render_source(LogSource::Driver(app));
        for needle in [
            "Starting ApplicationMaster",      // 9
            "Registered with ResourceManager", // 10
            "START_ALLO",                      // 11
            "END_ALLO",                        // 12
            "Final app status: SUCCEEDED",
        ] {
            assert!(
                driver_text.contains(needle),
                "driver log missing {needle:?}"
            );
        }
        // Executor logs: 4 executors × (first log 13 + ≥1 task 14).
        let execs: Vec<_> = logs
            .sources()
            .filter(|s| matches!(s, LogSource::Executor(_)))
            .collect();
        assert_eq!(execs.len(), 4);
        for e in execs {
            let txt = logs.render_source(e);
            assert!(txt.contains("Started executor"), "missing 13 in {e:?}");
            assert!(txt.contains("Got assigned task"), "missing 14 in {e:?}");
        }
        // NM evidence exists on at least one node.
        assert!(logs
            .sources()
            .any(|s| matches!(s, LogSource::NodeManager(_))));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let (a_logs, a_sum) = run_one(profiles::spark_sql_default(2048.0, 4));
        let (b_logs, b_sum) = run_one(profiles::spark_sql_default(2048.0, 4));
        assert_eq!(a_sum.len(), b_sum.len());
        assert_eq!(a_sum[0].finished_at, b_sum[0].finished_at);
        let a_lines: Vec<_> = a_logs.iter_lines().collect();
        let b_lines: Vec<_> = b_logs.iter_lines().collect();
        assert_eq!(a_lines, b_lines, "logs must be byte-identical");
    }

    #[test]
    fn different_seeds_differ() {
        let (_, a) = simulate(
            ClusterConfig::default(),
            1,
            vec![(Millis(100), profiles::spark_sql_default(2048.0, 4))],
            Millis::from_mins(240),
        );
        let (_, b) = simulate(
            ClusterConfig::default(),
            2,
            vec![(Millis(100), profiles::spark_sql_default(2048.0, 4))],
            Millis::from_mins(240),
        );
        assert_ne!(a[0].finished_at, b[0].finished_at);
    }

    #[test]
    fn wordcount_completes_faster_in_init_than_sql() {
        // Executor delay proxy: first task timestamp minus first executor
        // log timestamp should be smaller for wordcount (1 opened file vs
        // 8) — Fig 11-(a).
        fn exec_delay(spec: JobSpec) -> u64 {
            let (logs, sums) = run_one(spec);
            assert_eq!(sums.len(), 1);
            let mut first_exec_log = u64::MAX;
            let mut first_task = u64::MAX;
            for src in logs.sources() {
                if let LogSource::Executor(_) = src {
                    for r in logs.records(src) {
                        if r.message.starts_with("Started executor") {
                            first_exec_log = first_exec_log.min(r.ts.0);
                        }
                        if r.message.starts_with("Got assigned task") {
                            first_task = first_task.min(r.ts.0);
                        }
                    }
                }
            }
            first_task - first_exec_log
        }
        let sql = exec_delay(profiles::spark_sql_default(2048.0, 4));
        let wc = exec_delay(profiles::spark_wordcount(2048.0, 4));
        assert!(
            sql > wc + 1500,
            "sql executor delay {sql} ms must exceed wordcount {wc} ms by the extra 7 files"
        );
    }

    #[test]
    fn parallel_user_init_shrinks_executor_delay() {
        let seq = profiles::spark_sql_default(2048.0, 4);
        let mut par = profiles::spark_sql_default(2048.0, 4);
        par.user_init.parallel = true;
        let (_, s1) = run_one(seq);
        let (_, s2) = run_one(par);
        assert!(
            s2[0].runtime() < s1[0].runtime(),
            "parallel init {} must beat sequential {}",
            s2[0].runtime(),
            s1[0].runtime()
        );
    }

    #[test]
    fn mapreduce_job_completes_with_per_task_containers() {
        let (logs, sums) = run_one(profiles::mr_wordcount(1024.0));
        assert_eq!(sums.len(), 1);
        // 8 maps + 1 reduce = 9 task containers, each with its own log.
        let exec_logs = logs
            .sources()
            .filter(|s| matches!(s, LogSource::Executor(_)))
            .count();
        assert_eq!(exec_logs, 9);
        let rm = logs.render_source(LogSource::ResourceManager);
        assert!(rm.contains("to FINISHED"));
    }

    #[test]
    fn overallocation_bug_leaves_unused_containers() {
        let mut spec = profiles::spark_sql_default(2048.0, 4);
        spec.overalloc_extra = 2;
        let (logs, sums) = run_one(spec);
        assert_eq!(sums.len(), 1);
        // 1 AM + 4 used executors + 2 released = 7 RM container histories,
        // but only 4 executor log files.
        let exec_logs = logs
            .sources()
            .filter(|s| matches!(s, LogSource::Executor(_)))
            .count();
        assert_eq!(exec_logs, 4);
        let rm = logs.render_source(LogSource::ResourceManager);
        let allocated = rm.matches("from NEW to ALLOCATED").count();
        assert_eq!(allocated, 7, "1 AM + 4 + 2 extras allocated");
    }

    #[test]
    fn concurrent_jobs_all_complete() {
        let arrivals: Vec<(Millis, JobSpec)> = (0..6)
            .map(|i| {
                (
                    Millis(1000 * i as u64),
                    profiles::spark_sql_default(2048.0, 4),
                )
            })
            .collect();
        let (_, sums) = simulate(
            ClusterConfig::default(),
            11,
            arrivals,
            Millis::from_mins(240),
        );
        assert_eq!(sums.len(), 6);
    }

    #[test]
    fn jvm_warmup_tax_lengthens_first_wave() {
        let mut cold = profiles::spark_sql_default(2048.0, 4);
        cold.warmup_factor = 2.5;
        let mut warm = profiles::spark_sql_default(2048.0, 4);
        warm.warmup_factor = 1.0;
        let (_, c) = run_one(cold);
        let (_, w) = run_one(warm);
        assert!(
            c[0].runtime() > w[0].runtime() + Millis(2_000),
            "warm-up tax must cost seconds: {} vs {}",
            c[0].runtime(),
            w[0].runtime()
        );
    }

    #[test]
    fn kmeans_interference_app_completes() {
        let (logs, sums) = run_one(profiles::kmeans(5));
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].kind, "kmeans");
        // Kmeans is a Spark app: it has full Table-I evidence too.
        let an = sdchecker::analyze_store(&logs);
        assert!(an.delays[0].total_ms.is_some());
    }

    #[test]
    fn jvm_reuse_profile_is_faster_end_to_end() {
        let base = profiles::spark_sql_default(2048.0, 4);
        let warm = profiles::with_jvm_reuse(base.clone());
        let (base_logs, _) = run_one(base);
        let (warm_logs, _) = run_one(warm);
        let b = sdchecker::analyze_store(&base_logs);
        let w = sdchecker::analyze_store(&warm_logs);
        assert!(
            w.delays[0].total_ms.unwrap() < b.delays[0].total_ms.unwrap(),
            "JVM reuse must shorten the total scheduling delay"
        );
        assert!(
            w.delays[0].driver_ms.unwrap() < b.delays[0].driver_ms.unwrap(),
            "JVM reuse must shorten the driver delay"
        );
    }

    #[test]
    fn first_task_waits_for_registered_quorum() {
        // With min ratio 1.0 the first task must come after every executor
        // registered (first task ts > every executor first-log ts).
        let mut spec = profiles::spark_sql_default(2048.0, 4);
        spec.min_registered_ratio = 1.0;
        let (logs, _) = run_one(spec);
        let an = sdchecker::analyze_store(&logs);
        let d = &an.delays[0];
        let first_task = d.first_task.unwrap();
        for c in d.containers.iter().filter(|c| !c.is_am) {
            let fl = c.first_log.unwrap();
            assert!(
                fl <= first_task,
                "task assigned before executor {} was up",
                c.cid
            );
        }
        // cl (last executor up) must precede the first task under ratio 1.
        assert!(d.cl_ms.unwrap() <= d.total_ms.unwrap());
    }

    #[test]
    fn dfsio_saturates_and_slows_a_colocated_query() {
        // A lone SQL query vs the same query next to a 50-writer dfsIO:
        // the query must get slower (Fig 12 direction).
        let lone = run_one(profiles::spark_sql_default(2048.0, 4)).1[0].runtime();
        let (_, sums) = simulate(
            ClusterConfig::default(),
            42,
            vec![
                (Millis(100), profiles::dfsio(50, 20.0)),
                // Submit once the writers are up.
                (Millis(30_000), profiles::spark_sql_default(2048.0, 4)),
            ],
            Millis::from_mins(600),
        );
        let sql = sums
            .iter()
            .find(|s| s.kind == "spark-sql")
            .expect("query finished");
        assert!(
            sql.runtime() > lone,
            "under dfsIO the query ({}) must be slower than alone ({lone})",
            sql.runtime()
        );
    }

    #[test]
    fn am_retry_job_still_completes_and_is_slower() {
        // Attempt 1's AM is scripted to die at launch; attempt 2 must
        // replay the whole protocol, register as attempt 2, and finish —
        // later than the fault-free run.
        let (_, clean) = run_one(profiles::spark_sql_default(2048.0, 4));
        let cfg = ClusterConfig {
            faults: yarnsim::FaultConfig {
                scripted_am_failures: vec![(1, 1)],
                ..yarnsim::FaultConfig::default()
            },
            ..ClusterConfig::default()
        };
        let (logs, sums) = simulate(
            cfg,
            42,
            vec![(Millis(100), profiles::spark_sql_default(2048.0, 4))],
            Millis::from_mins(240),
        );
        assert_eq!(sums.len(), 1, "retried job must still complete");
        let s = &sums[0];
        assert!(!s.failed);
        assert!(
            s.finished_at > clean[0].finished_at,
            "retry must not speed the job up: {} vs clean {}",
            s.finished_at,
            clean[0].finished_at
        );
        let driver_text = logs.render_source(LogSource::Driver(s.app));
        assert!(
            driver_text.contains(&format!(
                "Registered with ResourceManager as {}",
                s.app.attempt(2)
            )),
            "driver must register under attempt 2"
        );
        let rm_text = logs.render_source(LogSource::ResourceManager);
        assert!(rm_text.contains("from LAUNCHED to FAILED on event = CONTAINER_FINISHED"));
        assert!(rm_text.contains("from FINISHING to FINISHED"));
    }

    #[test]
    fn am_exhaustion_marks_job_failed() {
        // Every localization fails: both attempts die and the summary
        // reports a FAILED application instead of hanging forever.
        let cfg = ClusterConfig {
            faults: yarnsim::FaultConfig {
                localization_failure_rate: 1.0,
                ..yarnsim::FaultConfig::default()
            },
            ..ClusterConfig::default()
        };
        let (logs, sums) = simulate(
            cfg,
            42,
            vec![(Millis(100), profiles::spark_sql_default(2048.0, 4))],
            Millis::from_mins(240),
        );
        assert_eq!(sums.len(), 1);
        assert!(sums[0].failed);
        let rm_text = logs.render_source(LogSource::ResourceManager);
        assert!(rm_text.contains("from FINAL_SAVING to FAILED"));
    }
}
