//! Calibrated job profiles for the paper's workloads.
//!
//! Each constant is pinned by evidence from the paper:
//!
//! * driver/executor launch ≈ 700 ms median (Fig 9-(a), `spm`/`spe`);
//!   MapReduce instances "a bit longer";
//! * driver delay (first log → RM registration) ≈ 3 s for both wordcount
//!   and Spark-SQL (Fig 11-(a)) — shared SparkContext code;
//! * Spark-SQL opens 8 TPC-H tables during user init, each creating an
//!   RDD + broadcast variable, sequentially (§IV-D); wordcount opens 1;
//! * the default Spark-SQL localization payload is ≈ 500 MB and takes
//!   ≈ 500 ms (Fig 8);
//! * executors are 4 GB / 8 cores, jobs default to 4 executors & 2 GB
//!   input (§IV-A);
//! * JVM warm-up costs ~30 % of short-job runtime (ref. \[27\] via §V-B) —
//!   modeled as a 1.6× tax on each executor's first task wave.

use simkit::Dist;
use yarnsim::{ContainerRuntime, ResourceReq};

use crate::job::{Framework, JobKind, JobSpec, StageSpec, UserInit};

/// HDFS block size (MB) — §IV-A.
pub const HDFS_BLOCK_MB: f64 = 128.0;

/// Number of TPC-H tables (opened files during Spark-SQL init).
pub const TPCH_TABLES: u32 = 8;

fn splits(input_mb: f64) -> u32 {
    ((input_mb / HDFS_BLOCK_MB).ceil() as u32).clamp(2, 800)
}

/// Stage structure of a generic SQL query over `input_mb` of data:
/// scan → shuffle/join → aggregate. Per-task compute scales with the
/// split payload (a 10 MB split costs far less CPU than a full 128 MB
/// block), which is what makes *tiny* jobs schedule-bound (Fig 5: a
/// 20 MB query spends > 65 % of its runtime on scheduling).
pub fn sql_stages(input_mb: f64) -> Vec<StageSpec> {
    let n = splits(input_mb);
    let io_per_task = input_mb / n as f64;
    let cpu_scale = (io_per_task / HDFS_BLOCK_MB).clamp(0.12, 1.5);
    vec![
        StageSpec {
            tasks: n,
            task_cpu_ms: Dist::lognormal(4200.0 * cpu_scale, 0.45),
            task_io_mb: io_per_task,
        },
        StageSpec {
            tasks: (n / 2).max(2),
            task_cpu_ms: Dist::lognormal(2600.0 * cpu_scale, 0.40),
            task_io_mb: 8.0,
        },
        StageSpec {
            tasks: (n / 8).max(1),
            task_cpu_ms: Dist::lognormal(1500.0 * cpu_scale, 0.40),
            task_io_mb: 2.0,
        },
    ]
}

fn spark_base(label: String, kind: JobKind, executors: u32) -> JobSpec {
    JobSpec {
        label,
        kind,
        framework: Framework::Spark,
        num_executors: executors,
        executor_resource: ResourceReq::SPARK_EXECUTOR,
        am_resource: ResourceReq::SPARK_DRIVER,
        runtime: ContainerRuntime::Default,
        am_heartbeat_ms: 1000,
        driver_localization_mb: 500.0,
        executor_localization_mb: 500.0,
        extra_files_mb: 0.0,
        am_launch_cpu_ms: Dist::lognormal(600.0, 0.28),
        worker_launch_cpu_ms: Dist::lognormal(620.0, 0.28),
        launch_io_mb: 64.0,
        // 6.4 s of 2-thread work ⇒ ≈ 3.2 s wall on an idle node, the
        // driver delay both wordcount and SQL show in Fig 11-(a).
        driver_init_cpu_ms: Dist::lognormal(6400.0, 0.18),
        driver_init_threads: 2.0,
        exec_register_rpc_ms: Dist::lognormal(20.0, 0.50),
        executor_setup_cpu_ms: Dist::lognormal(1350.0, 0.30),
        executor_setup_io_mb: 150.0,
        first_dispatch_overhead_ms: Dist::lognormal(900.0, 0.40),
        user_init: UserInit::none(),
        stages: Vec::new(),
        min_registered_ratio: 0.8,
        task_slots_per_executor: ResourceReq::SPARK_EXECUTOR.vcores,
        task_threads: 1.0,
        task_io_replicas: 1,
        warmup_factor: 1.6,
        warmup_tasks: ResourceReq::SPARK_EXECUTOR.vcores,
        overalloc_extra: 0,
    }
}

/// The default Spark-SQL (TPC-H-like) job: `input_mb` of table data,
/// `executors` Spark executors (paper default: 2 GB / 4 executors).
pub fn spark_sql_default(input_mb: f64, executors: u32) -> JobSpec {
    let mut s = spark_base(
        format!("spark-sql-{}mb", input_mb as u64),
        JobKind::SparkSql,
        executors,
    );
    s.user_init = UserInit {
        files: TPCH_TABLES,
        per_file_cpu_ms: Dist::lognormal(900.0, 0.30),
        // Building the per-table RDD + broadcast reads table
        // metadata/footers: grows with table size. This is the mechanism
        // behind Fig 5's "in-delay deteriorated by 5.7x with 200 GB
        // input" — user init reads lie on the scheduling critical path.
        per_file_io_mb: 40.0 + input_mb * 0.004,
        parallel: false,
    };
    s.stages = sql_stages(input_mb);
    s
}

/// Spark wordcount: one input file, map + reduce stage (Fig 11-(a)).
pub fn spark_wordcount(input_mb: f64, executors: u32) -> JobSpec {
    let mut s = spark_base(
        format!("spark-wc-{}mb", input_mb as u64),
        JobKind::SparkWordcount,
        executors,
    );
    let n = splits(input_mb);
    s.user_init = UserInit {
        files: 1,
        per_file_cpu_ms: Dist::lognormal(620.0, 0.30),
        per_file_io_mb: 24.0,
        parallel: false,
    };
    s.stages = vec![
        StageSpec {
            tasks: n,
            task_cpu_ms: Dist::lognormal(3800.0, 0.40),
            task_io_mb: input_mb / n as f64,
        },
        StageSpec {
            tasks: (n / 8).max(1),
            task_cpu_ms: Dist::lognormal(2200.0, 0.40),
            task_io_mb: 4.0,
        },
    ];
    s
}

/// MapReduce wordcount: the cluster-load generator of Fig 7 and Table II
/// ("MapReduce will spawn a large number of map tasks that can quickly
/// occupy the cluster resource").
pub fn mr_wordcount(input_mb: f64) -> JobSpec {
    let n = splits(input_mb);
    JobSpec {
        label: format!("mr-wc-{}mb", input_mb as u64),
        kind: JobKind::MapReduce,
        framework: Framework::MapReduce,
        num_executors: n, // informational for MR
        executor_resource: ResourceReq::MR_TASK,
        am_resource: ResourceReq::MR_MASTER,
        runtime: ContainerRuntime::Default,
        am_heartbeat_ms: 1000,
        driver_localization_mb: 200.0,
        executor_localization_mb: 60.0,
        extra_files_mb: 0.0,
        am_launch_cpu_ms: Dist::lognormal(780.0, 0.30),
        worker_launch_cpu_ms: Dist::lognormal(740.0, 0.33),
        launch_io_mb: 48.0,
        driver_init_cpu_ms: Dist::lognormal(1800.0, 0.20),
        driver_init_threads: 1.0,
        exec_register_rpc_ms: Dist::lognormal(20.0, 0.50),
        executor_setup_cpu_ms: Dist::constant(0.0),
        executor_setup_io_mb: 0.0,
        first_dispatch_overhead_ms: Dist::constant(0.0),
        user_init: UserInit::none(),
        stages: vec![
            StageSpec {
                tasks: n,
                task_cpu_ms: Dist::lognormal(9000.0, 0.35),
                task_io_mb: input_mb / n as f64,
            },
            StageSpec {
                tasks: (n / 8).max(1),
                task_cpu_ms: Dist::lognormal(5000.0, 0.35),
                task_io_mb: 16.0,
            },
        ],
        min_registered_ratio: 0.0, // MR schedules per-container; no gate
        task_slots_per_executor: 1,
        task_threads: 1.0,
        task_io_replicas: 1,
        warmup_factor: 1.0, // fresh JVM cost is in the launch work
        warmup_tasks: 0,
        overalloc_extra: 0,
    }
}

/// HDFS replication factor (§IV-A: "replication factor of three").
pub const HDFS_REPLICATION: u32 = 3;

/// dfsIO interference: `writers` parallel map tasks, each writing
/// `gb_per_task` GB to HDFS (paper: 20 GB each; §IV-E). Every HDFS write
/// fans out through the replication pipeline — one full-size stream on
/// each of three nodes — which is what makes 100 writers overwhelm
/// "both disks and the network" as the paper says.
pub fn dfsio(writers: u32, gb_per_task: f64) -> JobSpec {
    let mut s = mr_wordcount(writers as f64 * HDFS_BLOCK_MB);
    s.label = format!("dfsio-{writers}w");
    s.kind = JobKind::DfsIo;
    s.task_io_replicas = HDFS_REPLICATION;
    s.stages = vec![StageSpec {
        tasks: writers,
        task_cpu_ms: Dist::lognormal(800.0, 0.25),
        task_io_mb: gb_per_task * 1024.0,
    }];
    s
}

/// Kmeans CPU interference (HiBench): iterative, CPU-bound, deliberately
/// oversubscribing node CPUs — each executor is *configured* with 16
/// vcores' worth of compute threads while YARN does not enforce CPU
/// isolation (§IV-E: 4 executors × 16 vcores per app).
pub fn kmeans(iterations: u32) -> JobSpec {
    let executors = 4;
    let mut s = spark_base("kmeans".into(), JobKind::Kmeans, executors);
    // Requests only 1 vcore but runs 16 compute threads per task slot:
    // the oversubscription that makes it an interference generator.
    s.executor_resource = ResourceReq {
        mem_mb: 4096,
        vcores: 1,
    };
    s.task_slots_per_executor = 2;
    s.task_threads = 16.0;
    s.user_init = UserInit {
        files: 1,
        per_file_cpu_ms: Dist::lognormal(620.0, 0.30),
        per_file_io_mb: 24.0,
        parallel: false,
    };
    s.stages = (0..iterations)
        .map(|_| StageSpec {
            tasks: executors * s.task_slots_per_executor,
            task_cpu_ms: Dist::lognormal(60_000.0, 0.15),
            task_io_mb: 20.0,
        })
        .collect();
    s
}

/// §V-B proposed optimization: JVM reuse for recurring applications.
/// A warm JVM removes most of the process-start cost (fork from a zygote
/// instead of cold start), most of the executor-side classloading, the
/// first-wave JIT warm-up tax, and part of the driver's context
/// initialization. Applies the optimization to a job spec in place.
pub fn with_jvm_reuse(mut spec: JobSpec) -> JobSpec {
    spec.label = format!("{}-jvmreuse", spec.label);
    spec.am_launch_cpu_ms = spec.am_launch_cpu_ms.scaled(0.2);
    spec.worker_launch_cpu_ms = spec.worker_launch_cpu_ms.scaled(0.2);
    spec.launch_io_mb *= 0.25; // classes already mapped in the warm JVM
    spec.executor_setup_cpu_ms = spec.executor_setup_cpu_ms.scaled(0.5);
    spec.executor_setup_io_mb *= 0.25;
    spec.driver_init_cpu_ms = spec.driver_init_cpu_ms.scaled(0.7);
    spec.warmup_factor = 1.0;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_default_matches_paper_setup() {
        let s = spark_sql_default(2048.0, 4);
        assert_eq!(s.num_executors, 4);
        assert_eq!(s.executor_resource, ResourceReq::SPARK_EXECUTOR);
        assert_eq!(s.user_init.files, 8, "TPC-H has 8 tables");
        assert!(!s.user_init.parallel, "default init is sequential");
        assert_eq!(s.stages[0].tasks, 16, "2 GB / 128 MB = 16 splits");
        assert!((s.driver_localization_mb - 500.0).abs() < f64::EPSILON);
    }

    #[test]
    fn wordcount_opens_one_file() {
        let s = spark_wordcount(2048.0, 4);
        assert_eq!(s.user_init.files, 1);
        assert_eq!(s.kind, JobKind::SparkWordcount);
    }

    #[test]
    fn splits_clamped() {
        assert_eq!(splits(20.0), 2); // tiny inputs still get 2 tasks
        assert_eq!(splits(2048.0), 16);
        assert_eq!(splits(200.0 * 1024.0 * 1024.0), 800); // clamp at 800
    }

    #[test]
    fn dfsio_writes_big_flows() {
        let s = dfsio(100, 20.0);
        assert_eq!(s.stages.len(), 1);
        assert_eq!(s.stages[0].tasks, 100);
        assert!((s.stages[0].task_io_mb - 20480.0).abs() < f64::EPSILON);
        assert_eq!(s.task_io_replicas, HDFS_REPLICATION);
        assert_eq!(s.framework, Framework::MapReduce);
    }

    #[test]
    fn kmeans_oversubscribes_cpu() {
        let s = kmeans(10);
        assert_eq!(s.executor_resource.vcores, 1);
        assert!(s.task_threads > s.executor_resource.vcores as f64);
        assert_eq!(s.stages.len(), 10);
    }

    #[test]
    fn jvm_reuse_cuts_startup_costs() {
        let base = spark_sql_default(2048.0, 4);
        let warm = with_jvm_reuse(base.clone());
        assert!(warm.worker_launch_cpu_ms.median() < base.worker_launch_cpu_ms.median() * 0.25);
        assert!(warm.driver_init_cpu_ms.median() < base.driver_init_cpu_ms.median());
        assert_eq!(warm.warmup_factor, 1.0);
        assert!(warm.label.ends_with("-jvmreuse"));
    }

    #[test]
    fn mr_has_no_gate() {
        let s = mr_wordcount(4096.0);
        assert_eq!(s.min_registered_ratio, 0.0);
        assert_eq!(s.task_slots_per_executor, 1);
    }
}
