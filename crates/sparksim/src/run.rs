//! Per-application driver logic: the Spark and MapReduce AM protocols.
//!
//! A [`Run`] consumes cluster notices ([`yarnsim::AppNotice`]) and run
//! events (executor registrations) and reacts by calling back into the
//! cluster — launching containers, spawning driver/executor work,
//! finishing the application — while writing the application-side log
//! messages of Table I (9–14):
//!
//! * driver `FIRST_LOG` (9) and `REGISTER` (10) — `ApplicationMaster`
//! * `START_ALLO` (11) / `END_ALLO` (12) — the two log lines the paper's
//!   authors patched into Spark's `YarnAllocator`
//! * executor `FIRST_LOG` (13) — `CoarseGrainedExecutorBackend`
//! * `FIRST_TASK` (14) — `Executor: Got assigned task …`

use std::collections::{BTreeMap, HashMap};

use logmodel::{ApplicationId, ContainerId, LogSource, LogStore, NodeId, TsMs};
use simkit::{Millis, Sample, SimRng};
use yarnsim::{AppNotice, Cluster, InstanceKind, LaunchSpec, LocalResource, Out, Ticket};

use crate::job::{Framework, JobSpec, StageSpec};

/// Events the application layer schedules for itself (via the `World`).
#[derive(Debug, Clone)]
pub enum RunEvent {
    /// An executor's registration RPC reached the driver.
    ExecutorRegistered {
        /// Owning application.
        app: ApplicationId,
        /// The registering executor's container.
        cid: ContainerId,
    },
}

/// Mutable context threaded through run handlers.
pub struct Wx<'a> {
    /// Current simulation time.
    pub now: Millis,
    /// The cluster to call back into.
    pub cluster: &'a mut Cluster,
    /// The shared log store.
    pub logs: &'a mut LogStore,
    /// Cluster effect buffer (events + notices cascade).
    pub out: &'a mut Out,
    /// Run events to schedule (absolute time).
    pub later: &'a mut Vec<(Millis, RunEvent)>,
}

impl Wx<'_> {
    fn ts(&self) -> TsMs {
        TsMs(self.now.0)
    }
}

/// Completed-job record.
#[derive(Debug, Clone)]
pub struct JobSummary {
    /// The application.
    pub app: ApplicationId,
    /// Spec label (e.g. `tpch-q07`).
    pub label: String,
    /// Family tag (`spark-sql`, `dfsio`, ...).
    pub kind: &'static str,
    /// Submission time.
    pub submitted_at: Millis,
    /// Completion time (AM unregistered, or attempts exhausted).
    pub finished_at: Millis,
    /// True when the application terminated FAILED (AM attempts
    /// exhausted under fault injection) instead of finishing cleanly.
    pub failed: bool,
}

impl JobSummary {
    /// End-to-end job runtime.
    pub fn runtime(&self) -> Millis {
        self.finished_at - self.submitted_at
    }
}

/// Work-ticket purposes for a Spark run.
#[derive(Debug, Clone, Copy)]
enum Purpose {
    DriverInit,
    UserFileIo { idx: u32 },
    UserFileCpu,
    ExecutorSetupIo { cid: ContainerId },
    ExecutorSetup { cid: ContainerId },
    DispatchOverhead,
    TaskIo { cid: ContainerId, cpu_ms: f64 },
    TaskCpu { cid: ContainerId },
}

/// Work-ticket purposes for a MapReduce run.
#[derive(Debug, Clone, Copy)]
enum MrPurpose {
    MasterInit,
    /// One stream of a (possibly replicated) task transfer; the task's
    /// CPU phase starts when all streams finish.
    TaskIo {
        cid: ContainerId,
        cpu_ms: f64,
    },
    TaskCpu {
        cid: ContainerId,
    },
}

/// Executor state within a Spark run.
#[derive(Debug)]
struct Exec {
    node: NodeId,
    registered: bool,
    free_slots: u32,
    tasks_run: u32,
}

/// One live application.
pub enum Run {
    /// Spark protocol.
    Spark(Box<SparkRun>),
    /// MapReduce protocol.
    Mr(Box<MrRun>),
}

impl Run {
    /// Create the right protocol driver for `spec`.
    pub fn new(spec: JobSpec, app: ApplicationId, submit_at: Millis, rng: SimRng) -> Run {
        match spec.framework {
            Framework::Spark => Run::Spark(Box::new(SparkRun::new(spec, app, submit_at, rng))),
            Framework::MapReduce => Run::Mr(Box::new(MrRun::new(spec, app, submit_at, rng))),
        }
    }

    /// Route a cluster notice.
    pub fn on_notice(&mut self, n: AppNotice, wx: &mut Wx) {
        match self {
            Run::Spark(r) => r.on_notice(n, wx),
            Run::Mr(r) => r.on_notice(n, wx),
        }
    }

    /// Route a run event.
    pub fn on_run_event(&mut self, ev: RunEvent, wx: &mut Wx) {
        match self {
            Run::Spark(r) => r.on_run_event(ev, wx),
            Run::Mr(_) => {} // MR has no executor-registration protocol
        }
    }

    /// Completed-job summary, once finished.
    pub fn summary(&self) -> Option<JobSummary> {
        match self {
            Run::Spark(r) => r.finished_at.map(|t| JobSummary {
                app: r.app,
                label: r.spec.label.clone(),
                kind: r.spec.kind.tag(),
                submitted_at: r.submit_at,
                finished_at: t,
                failed: r.failed,
            }),
            Run::Mr(r) => r.finished_at.map(|t| JobSummary {
                app: r.app,
                label: r.spec.label.clone(),
                kind: r.spec.kind.tag(),
                submitted_at: r.submit_at,
                finished_at: t,
                failed: r.failed,
            }),
        }
    }
}

/// Build the localization list for a container.
fn localization(base_name: &str, base_mb: f64, extra_mb: f64) -> Vec<LocalResource> {
    let mut v = vec![LocalResource::new(base_name, base_mb)];
    if extra_mb > 0.0 {
        v.push(LocalResource::new("extra-files", extra_mb));
    }
    v
}

// ======================================================================
// Spark
// ======================================================================

/// Spark driver protocol state.
pub struct SparkRun {
    spec: JobSpec,
    app: ApplicationId,
    submit_at: Millis,
    rng: SimRng,
    driver: Option<(ContainerId, NodeId)>,
    executors: BTreeMap<ContainerId, Exec>,
    /// Needed executors launched so far.
    launched: u32,
    /// Registered executors.
    registered: u32,
    end_allo_logged: bool,
    user_init_started: bool,
    user_files_done: u32,
    user_init_done: bool,
    stage_idx: usize,
    stage_dispatched: u32,
    stage_completed: u32,
    next_tid: u64,
    dispatch_cursor: usize,
    dispatch_overhead: OverheadState,
    tickets: HashMap<Ticket, Purpose>,
    /// Current AM attempt (bumped by [`AppNotice::AttemptRetry`]).
    attempt: u32,
    /// Terminally FAILED (attempts exhausted).
    failed: bool,
    /// Set when the AM unregistered.
    pub(crate) finished_at: Option<Millis>,
}

/// Progress of the one-time driver dispatch overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OverheadState {
    NotStarted,
    Running,
    Done,
}

impl SparkRun {
    fn new(spec: JobSpec, app: ApplicationId, submit_at: Millis, rng: SimRng) -> SparkRun {
        SparkRun {
            spec,
            app,
            submit_at,
            rng,
            driver: None,
            executors: BTreeMap::new(),
            launched: 0,
            registered: 0,
            end_allo_logged: false,
            user_init_started: false,
            user_files_done: 0,
            user_init_done: false,
            stage_idx: 0,
            stage_dispatched: 0,
            stage_completed: 0,
            next_tid: 0,
            dispatch_cursor: 0,
            dispatch_overhead: OverheadState::NotStarted,
            tickets: HashMap::new(),
            attempt: 1,
            failed: false,
            finished_at: None,
        }
    }

    /// The submission context for this job (what the client sends).
    pub fn submission(spec: &JobSpec, rng: &mut SimRng) -> yarnsim::AppSubmission {
        yarnsim::AppSubmission {
            name: spec.label.clone(),
            am_resource: spec.am_resource,
            am_launch: LaunchSpec {
                kind: InstanceKind::SparkDriver,
                localization: localization(
                    "spark-libs.jar",
                    spec.driver_localization_mb,
                    spec.extra_files_mb,
                ),
                runtime: spec.runtime,
                launch_cpu_ms: spec.am_launch_cpu_ms.sample(rng),
                launch_threads: 1.0,
                launch_io_mb: spec.launch_io_mb,
            },
            am_heartbeat_ms: spec.am_heartbeat_ms,
        }
    }

    fn on_notice(&mut self, n: AppNotice, wx: &mut Wx) {
        match n {
            AppNotice::ProcessStarted {
                container,
                node,
                kind,
                ..
            } => match kind {
                InstanceKind::SparkDriver => self.on_driver_started(container, node, wx),
                InstanceKind::SparkExecutor => self.on_executor_started(container, node, wx),
                other => panic!("unexpected instance kind {other:?} in Spark app"),
            },
            AppNotice::ContainersGranted { containers, .. } => {
                self.on_granted(containers, wx);
            }
            AppNotice::WorkDone { ticket, .. } => self.on_work_done(ticket, wx),
            AppNotice::ProcessFailed { container, .. } => self.on_process_failed(container, wx),
            AppNotice::AttemptRetry { new_attempt, .. } => self.on_attempt_retry(new_attempt),
            AppNotice::AppFailed { .. } => self.on_app_failed(wx),
        }
    }

    /// A worker container died (launch/localization failure or node loss):
    /// forget it, reclaim any tasks that were running on it, and ask the
    /// scheduler for a replacement — what Spark's `YarnAllocator` does on
    /// a completed-with-failure container report.
    fn on_process_failed(&mut self, cid: ContainerId, wx: &mut Wx) {
        if self.finished_at.is_some() {
            return;
        }
        let Some(e) = self.executors.remove(&cid) else {
            return;
        };
        if e.registered {
            self.registered = self.registered.saturating_sub(1);
        }
        self.launched = self.launched.saturating_sub(1);
        let lost: Vec<Ticket> = self
            .tickets
            .iter()
            .filter(|(_, p)| {
                matches!(p,
                    Purpose::ExecutorSetupIo { cid: c }
                    | Purpose::ExecutorSetup { cid: c }
                    | Purpose::TaskIo { cid: c, .. }
                    | Purpose::TaskCpu { cid: c } if *c == cid)
            })
            .map(|(t, _)| *t)
            .collect();
        for t in lost {
            if let Some(Purpose::TaskIo { .. } | Purpose::TaskCpu { .. }) = self.tickets.remove(&t)
            {
                // The task never finished: put it back on the stage.
                self.stage_dispatched = self.stage_dispatched.saturating_sub(1);
            }
        }
        wx.cluster
            .request_containers(wx.now, self.app, 1, self.spec.executor_resource, wx.out);
        self.maybe_dispatch(wx);
    }

    /// The RM restarted our AM (attempt N failed, attempt N+1 launching):
    /// reset all protocol state; the submission→launch sequence replays.
    fn on_attempt_retry(&mut self, new_attempt: u32) {
        if self.finished_at.is_some() {
            return;
        }
        self.attempt = new_attempt;
        self.driver = None;
        self.executors.clear();
        self.launched = 0;
        self.registered = 0;
        self.end_allo_logged = false;
        self.user_init_started = false;
        self.user_files_done = 0;
        self.user_init_done = false;
        self.stage_idx = 0;
        self.stage_dispatched = 0;
        self.stage_completed = 0;
        self.dispatch_cursor = 0;
        self.dispatch_overhead = OverheadState::NotStarted;
        self.tickets.clear();
    }

    /// Attempts exhausted: the application is terminally FAILED.
    fn on_app_failed(&mut self, wx: &mut Wx) {
        if self.finished_at.is_some() {
            return;
        }
        self.failed = true;
        self.finished_at = Some(wx.now);
        if self.driver.is_some() {
            let t = &crate::schema::SPARK_APP_FAILED;
            wx.logs.info(
                LogSource::Driver(self.app),
                wx.ts(),
                t.class,
                t.msg(&[&self.spec.label]),
            );
        }
    }

    fn on_run_event(&mut self, ev: RunEvent, wx: &mut Wx) {
        let RunEvent::ExecutorRegistered { cid, .. } = ev;
        if self.finished_at.is_some() {
            return;
        }
        if let Some(e) = self.executors.get_mut(&cid) {
            if !e.registered {
                e.registered = true;
                self.registered += 1;
            }
        }
        self.maybe_dispatch(wx);
    }

    fn on_driver_started(&mut self, cid: ContainerId, node: NodeId, wx: &mut Wx) {
        self.driver = Some((cid, node));
        // Log message 9: the driver's first log line.
        let t = &crate::schema::SPARK_AM_START;
        wx.logs.info(
            LogSource::Driver(self.app),
            wx.ts(),
            t.class,
            t.msg(&[&self.spec.label]),
        );
        // SparkContext + RM client initialization (driver delay, §IV-D).
        let work = self.spec.driver_init_cpu_ms.sample(&mut self.rng);
        let t = wx.cluster.spawn_cpu(
            wx.now,
            node,
            self.app,
            work,
            self.spec.driver_init_threads,
            wx.out,
        );
        self.tickets.insert(t, Purpose::DriverInit);
    }

    fn on_driver_registered(&mut self, wx: &mut Wx) {
        // Log message 10.
        let t = &crate::schema::SPARK_AM_REGISTERED;
        wx.logs.info(
            LogSource::Driver(self.app),
            wx.ts(),
            t.class,
            t.msg(&[&self.app.attempt(self.attempt)]),
        );
        wx.cluster.am_register(wx.now, self.app, wx.logs, wx.out);
        // Log message 11 (patched into YarnAllocator by the authors).
        let req = self.spec.requested_executors();
        let t = &crate::schema::SPARK_START_ALLO;
        wx.logs.info(
            LogSource::Driver(self.app),
            wx.ts(),
            t.class,
            t.msg(&[&req]),
        );
        wx.cluster
            .request_containers(wx.now, self.app, req, self.spec.executor_resource, wx.out);
        // User-application initialization starts once the context is up.
        self.start_user_init(wx);
    }

    fn start_user_init(&mut self, wx: &mut Wx) {
        self.user_init_started = true;
        let files = self.spec.user_init.files;
        if files == 0 {
            self.user_init_done = true;
            self.maybe_dispatch(wx);
            return;
        }
        if self.spec.user_init.parallel {
            for i in 0..files {
                self.start_user_file(i, wx);
            }
        } else {
            self.start_user_file(0, wx);
        }
    }

    fn start_user_file(&mut self, idx: u32, wx: &mut Wx) {
        let (_, node) = self.driver.expect("driver up");
        let io = self.spec.user_init.per_file_io_mb;
        if io > 0.0 {
            let t = wx.cluster.spawn_io(wx.now, node, self.app, io, wx.out);
            self.tickets.insert(t, Purpose::UserFileIo { idx });
        } else {
            self.start_user_file_cpu(idx, wx);
        }
    }

    fn start_user_file_cpu(&mut self, idx: u32, wx: &mut Wx) {
        let (_, node) = self.driver.expect("driver up");
        let work = self.spec.user_init.per_file_cpu_ms.sample(&mut self.rng);
        let t = wx
            .cluster
            .spawn_cpu(wx.now, node, self.app, work, 1.0, wx.out);
        let _ = idx;
        self.tickets.insert(t, Purpose::UserFileCpu);
    }

    fn on_user_file_done(&mut self, wx: &mut Wx) {
        self.user_files_done += 1;
        let files = self.spec.user_init.files;
        if self.user_files_done >= files {
            self.user_init_done = true;
            self.maybe_dispatch(wx);
        } else if !self.spec.user_init.parallel {
            self.start_user_file(self.user_files_done, wx);
        }
    }

    fn on_granted(&mut self, containers: Vec<(ContainerId, NodeId)>, wx: &mut Wx) {
        if self.finished_at.is_some() {
            return;
        }
        let mut extras = Vec::new();
        for (cid, node) in containers {
            if self.launched < self.spec.num_executors {
                self.launched += 1;
                let spec = LaunchSpec {
                    kind: InstanceKind::SparkExecutor,
                    localization: localization(
                        "spark-libs.jar",
                        self.spec.executor_localization_mb,
                        self.spec.extra_files_mb,
                    ),
                    runtime: self.spec.runtime,
                    launch_cpu_ms: self.spec.worker_launch_cpu_ms.sample(&mut self.rng),
                    launch_threads: 1.0,
                    launch_io_mb: self.spec.launch_io_mb,
                };
                wx.cluster.launch_container(wx.now, cid, spec, wx.out);
                self.executors.insert(
                    cid,
                    Exec {
                        node,
                        registered: false,
                        free_slots: self.spec.task_slots_per_executor,
                        tasks_run: 0,
                    },
                );
                if self.launched == self.spec.num_executors && !self.end_allo_logged {
                    self.end_allo_logged = true;
                    // Log message 12.
                    let t = &crate::schema::SPARK_END_ALLO;
                    wx.logs.info(
                        LogSource::Driver(self.app),
                        wx.ts(),
                        t.class,
                        t.msg(&[&self.spec.num_executors]),
                    );
                }
            } else {
                // SPARK-21562: over-requested containers are never used.
                extras.push(cid);
            }
        }
        if !extras.is_empty() {
            wx.cluster.release_containers(wx.now, &extras, wx.logs);
        }
    }

    fn on_executor_started(&mut self, cid: ContainerId, node: NodeId, wx: &mut Wx) {
        // The executor may already have been reclaimed by a fault between
        // launch and process start.
        if !self.executors.contains_key(&cid) {
            return;
        }
        debug_assert_eq!(self.executors[&cid].node, node);
        // Log message 13: executor's first log line (its own log file).
        let t = &crate::schema::SPARK_EXECUTOR_STARTED;
        wx.logs.info(
            LogSource::Executor(cid),
            wx.ts(),
            t.class,
            t.msg(&[&self.app, &node]),
        );
        // Executor-side setup (RPC env, BlockManager, classloading) burns
        // IO then CPU on the executor's node before the registration RPC
        // goes out.
        let io = self.spec.executor_setup_io_mb;
        let work = self.spec.executor_setup_cpu_ms.sample(&mut self.rng);
        if io > 0.0 {
            let t = wx.cluster.spawn_io(wx.now, node, self.app, io, wx.out);
            self.tickets.insert(t, Purpose::ExecutorSetupIo { cid });
        } else if work > 0.0 {
            let t = wx
                .cluster
                .spawn_cpu(wx.now, node, self.app, work, 1.0, wx.out);
            self.tickets.insert(t, Purpose::ExecutorSetup { cid });
        } else {
            let d = self.spec.exec_register_rpc_ms.sample_ms(&mut self.rng);
            wx.later.push((
                wx.now + d,
                RunEvent::ExecutorRegistered { app: self.app, cid },
            ));
        }
    }

    /// Task scheduling gate (paper Fig 10 + §IV-B): user init finished AND
    /// ≥ `min_registered_ratio` of executors registered.
    fn gate_open(&self) -> bool {
        self.user_init_done && self.registered >= self.spec.min_registered()
    }

    fn current_stage(&self) -> Option<&StageSpec> {
        self.spec.stages.get(self.stage_idx)
    }

    fn maybe_dispatch(&mut self, wx: &mut Wx) {
        if self.finished_at.is_some() || !self.gate_open() {
            return;
        }
        // One-time driver overhead between gate opening and the first
        // dispatch (DAG build, closure serialization, task broadcast).
        match self.dispatch_overhead {
            OverheadState::NotStarted => {
                let (_, node) = self.driver.expect("driver up");
                let work = self.spec.first_dispatch_overhead_ms.sample(&mut self.rng);
                self.dispatch_overhead = OverheadState::Running;
                let t = wx
                    .cluster
                    .spawn_cpu(wx.now, node, self.app, work, 1.0, wx.out);
                self.tickets.insert(t, Purpose::DispatchOverhead);
                return;
            }
            OverheadState::Running => return,
            OverheadState::Done => {}
        }
        loop {
            let Some(stage) = self.current_stage() else {
                self.finish(wx);
                return;
            };
            let (stage_tasks, io_mb) = (stage.tasks, stage.task_io_mb);
            let cpu_dist = stage.task_cpu_ms.clone();
            if self.stage_dispatched >= stage_tasks {
                return; // all dispatched; waiting on completions
            }
            // Round-robin over registered executors with free slots.
            let cids: Vec<ContainerId> = self.executors.keys().copied().collect();
            if cids.is_empty() {
                return;
            }
            let mut dispatched_any = false;
            for off in 0..cids.len() {
                if self.stage_dispatched >= stage_tasks {
                    break;
                }
                let cid = cids[(self.dispatch_cursor + off) % cids.len()];
                let Some(e) = self.executors.get_mut(&cid) else {
                    continue;
                };
                if !e.registered || e.free_slots == 0 {
                    continue;
                }
                e.free_slots -= 1;
                let warm = if e.tasks_run < self.spec.warmup_tasks {
                    self.spec.warmup_factor
                } else {
                    1.0
                };
                e.tasks_run += 1;
                let node = e.node;
                let tid = self.next_tid;
                self.next_tid += 1;
                self.stage_dispatched += 1;
                self.dispatch_cursor = (self.dispatch_cursor + off + 1) % cids.len();
                // Log message 14 (first occurrence per executor is what
                // SDchecker uses; Spark logs every assignment).
                let t = &crate::schema::SPARK_TASK_ASSIGNED;
                wx.logs.info(
                    LogSource::Executor(cid),
                    wx.ts(),
                    t.class,
                    t.msg(&[&tid, &self.stage_idx, &tid]),
                );
                let cpu_ms = cpu_dist.sample(&mut self.rng) * warm;
                if io_mb > 0.0 {
                    let t = wx.cluster.spawn_io(wx.now, node, self.app, io_mb, wx.out);
                    self.tickets.insert(t, Purpose::TaskIo { cid, cpu_ms });
                } else {
                    let t = wx.cluster.spawn_cpu(
                        wx.now,
                        node,
                        self.app,
                        cpu_ms,
                        self.spec.task_threads,
                        wx.out,
                    );
                    self.tickets.insert(t, Purpose::TaskCpu { cid });
                }
                dispatched_any = true;
            }
            if !dispatched_any {
                return; // no free slots; completions will re-trigger
            }
        }
    }

    fn on_task_cpu_done(&mut self, cid: ContainerId, wx: &mut Wx) {
        if let Some(e) = self.executors.get_mut(&cid) {
            e.free_slots += 1;
        }
        self.stage_completed += 1;
        let stage_tasks = self.current_stage().map(|s| s.tasks).unwrap_or(0);
        if self.stage_completed >= stage_tasks {
            self.stage_idx += 1;
            self.stage_dispatched = 0;
            self.stage_completed = 0;
        }
        self.maybe_dispatch(wx);
    }

    fn on_work_done(&mut self, ticket: Ticket, wx: &mut Wx) {
        let Some(p) = self.tickets.remove(&ticket) else {
            return; // work outlived the app (teardown)
        };
        if self.finished_at.is_some() {
            return;
        }
        match p {
            Purpose::DriverInit => self.on_driver_registered(wx),
            Purpose::UserFileIo { idx } => self.start_user_file_cpu(idx, wx),
            Purpose::UserFileCpu => self.on_user_file_done(wx),
            Purpose::ExecutorSetupIo { cid } => {
                let Some(node) = self.executors.get(&cid).map(|e| e.node) else {
                    return;
                };
                let work = self.spec.executor_setup_cpu_ms.sample(&mut self.rng);
                let t = wx
                    .cluster
                    .spawn_cpu(wx.now, node, self.app, work, 1.0, wx.out);
                self.tickets.insert(t, Purpose::ExecutorSetup { cid });
            }
            Purpose::ExecutorSetup { cid } => {
                let d = self.spec.exec_register_rpc_ms.sample_ms(&mut self.rng);
                wx.later.push((
                    wx.now + d,
                    RunEvent::ExecutorRegistered { app: self.app, cid },
                ));
            }
            Purpose::DispatchOverhead => {
                self.dispatch_overhead = OverheadState::Done;
                self.maybe_dispatch(wx);
            }
            Purpose::TaskIo { cid, cpu_ms } => {
                let Some(node) = self.executors.get(&cid).map(|e| e.node) else {
                    return;
                };
                let t = wx.cluster.spawn_cpu(
                    wx.now,
                    node,
                    self.app,
                    cpu_ms,
                    self.spec.task_threads,
                    wx.out,
                );
                self.tickets.insert(t, Purpose::TaskCpu { cid });
            }
            Purpose::TaskCpu { cid } => self.on_task_cpu_done(cid, wx),
        }
    }

    fn finish(&mut self, wx: &mut Wx) {
        if self.finished_at.is_some() {
            return;
        }
        self.finished_at = Some(wx.now);
        let t = &crate::schema::SPARK_APP_SUCCEEDED;
        wx.logs.info(
            LogSource::Driver(self.app),
            wx.ts(),
            t.class,
            t.msg(&[&self.spec.label]),
        );
        wx.cluster
            .finish_application(wx.now, self.app, wx.logs, wx.out);
    }
}

// ======================================================================
// MapReduce
// ======================================================================

/// MapReduce AM protocol state: one container per task, map stage then
/// reduce stage.
pub struct MrRun {
    spec: JobSpec,
    app: ApplicationId,
    submit_at: Millis,
    rng: SimRng,
    master: Option<(ContainerId, NodeId)>,
    /// Node per launched task container.
    task_nodes: HashMap<ContainerId, NodeId>,
    /// Outstanding IO streams per task (replicated writes).
    task_io_pending: HashMap<ContainerId, u32>,
    stage_idx: usize,
    stage_launched: u32,
    stage_completed: u32,
    tickets: HashMap<Ticket, MrPurpose>,
    /// Terminally FAILED (attempts exhausted).
    failed: bool,
    pub(crate) finished_at: Option<Millis>,
}

impl MrRun {
    fn new(spec: JobSpec, app: ApplicationId, submit_at: Millis, rng: SimRng) -> MrRun {
        MrRun {
            spec,
            app,
            submit_at,
            rng,
            master: None,
            task_nodes: HashMap::new(),
            task_io_pending: HashMap::new(),
            stage_idx: 0,
            stage_launched: 0,
            stage_completed: 0,
            tickets: HashMap::new(),
            failed: false,
            finished_at: None,
        }
    }

    /// The submission context for this job.
    pub fn submission(spec: &JobSpec, rng: &mut SimRng) -> yarnsim::AppSubmission {
        yarnsim::AppSubmission {
            name: spec.label.clone(),
            am_resource: spec.am_resource,
            am_launch: LaunchSpec {
                kind: InstanceKind::MrMaster,
                localization: localization(
                    "job.jar",
                    spec.driver_localization_mb,
                    spec.extra_files_mb,
                ),
                runtime: spec.runtime,
                launch_cpu_ms: spec.am_launch_cpu_ms.sample(rng),
                launch_threads: 1.0,
                launch_io_mb: spec.launch_io_mb,
            },
            am_heartbeat_ms: spec.am_heartbeat_ms,
        }
    }

    fn task_kind(&self) -> InstanceKind {
        if self.stage_idx == 0 {
            InstanceKind::MrMap
        } else {
            InstanceKind::MrReduce
        }
    }

    fn on_notice(&mut self, n: AppNotice, wx: &mut Wx) {
        match n {
            AppNotice::ProcessStarted {
                container,
                node,
                kind,
                ..
            } => match kind {
                InstanceKind::MrMaster => self.on_master_started(container, node, wx),
                InstanceKind::MrMap | InstanceKind::MrReduce => {
                    self.on_task_started(container, node, wx)
                }
                other => panic!("unexpected instance kind {other:?} in MR app"),
            },
            AppNotice::ContainersGranted { containers, .. } => self.on_granted(containers, wx),
            AppNotice::WorkDone { ticket, .. } => self.on_work_done(ticket, wx),
            AppNotice::ProcessFailed { container, .. } => self.on_process_failed(container, wx),
            AppNotice::AttemptRetry { .. } => self.on_attempt_retry(),
            AppNotice::AppFailed { .. } => self.on_app_failed(wx),
        }
    }

    /// A task container died: drop its bookkeeping and re-request one
    /// container so the stage can still complete.
    fn on_process_failed(&mut self, cid: ContainerId, wx: &mut Wx) {
        if self.finished_at.is_some() {
            return;
        }
        if self.task_nodes.remove(&cid).is_none() {
            return;
        }
        self.task_io_pending.remove(&cid);
        self.tickets.retain(|_, p| {
            !matches!(p,
                MrPurpose::TaskIo { cid: c, .. } | MrPurpose::TaskCpu { cid: c } if *c == cid)
        });
        self.stage_launched = self.stage_launched.saturating_sub(1);
        wx.cluster
            .request_containers(wx.now, self.app, 1, self.spec.executor_resource, wx.out);
    }

    /// The RM restarted our AM: reset protocol state and replay the job
    /// from the master launch.
    fn on_attempt_retry(&mut self) {
        if self.finished_at.is_some() {
            return;
        }
        self.master = None;
        self.task_nodes.clear();
        self.task_io_pending.clear();
        self.stage_idx = 0;
        self.stage_launched = 0;
        self.stage_completed = 0;
        self.tickets.clear();
    }

    /// Attempts exhausted: the application is terminally FAILED.
    fn on_app_failed(&mut self, wx: &mut Wx) {
        if self.finished_at.is_some() {
            return;
        }
        self.failed = true;
        self.finished_at = Some(wx.now);
        if self.master.is_some() {
            let t = &crate::schema::MR_JOB_FAILED;
            wx.logs.info(
                LogSource::Driver(self.app),
                wx.ts(),
                t.class,
                t.msg(&[&self.spec.label]),
            );
        }
    }

    fn on_master_started(&mut self, cid: ContainerId, node: NodeId, wx: &mut Wx) {
        self.master = Some((cid, node));
        let t = &crate::schema::MR_AM_START;
        wx.logs.info(
            LogSource::Driver(self.app),
            wx.ts(),
            t.class,
            t.msg(&[&self.app]),
        );
        let work = self.spec.driver_init_cpu_ms.sample(&mut self.rng);
        let t = wx.cluster.spawn_cpu(
            wx.now,
            node,
            self.app,
            work,
            self.spec.driver_init_threads,
            wx.out,
        );
        self.tickets.insert(t, MrPurpose::MasterInit);
    }

    fn request_stage(&mut self, wx: &mut Wx) {
        let Some(stage) = self.spec.stages.get(self.stage_idx) else {
            self.finish(wx);
            return;
        };
        if stage.tasks == 0 {
            self.stage_idx += 1;
            self.stage_launched = 0;
            self.stage_completed = 0;
            self.request_stage(wx);
            return;
        }
        wx.cluster.request_containers(
            wx.now,
            self.app,
            stage.tasks,
            self.spec.executor_resource,
            wx.out,
        );
    }

    fn on_granted(&mut self, containers: Vec<(ContainerId, NodeId)>, wx: &mut Wx) {
        if self.finished_at.is_some() {
            return;
        }
        let kind = self.task_kind();
        for (cid, node) in containers {
            self.stage_launched += 1;
            let spec = LaunchSpec {
                kind,
                localization: localization(
                    "job.jar",
                    self.spec.executor_localization_mb,
                    self.spec.extra_files_mb,
                ),
                runtime: self.spec.runtime,
                launch_cpu_ms: self.spec.worker_launch_cpu_ms.sample(&mut self.rng),
                launch_threads: 1.0,
                launch_io_mb: self.spec.launch_io_mb,
            };
            wx.cluster.launch_container(wx.now, cid, spec, wx.out);
            self.task_nodes.insert(cid, node);
        }
    }

    fn on_task_started(&mut self, cid: ContainerId, node: NodeId, wx: &mut Wx) {
        let t = &crate::schema::MR_TASK_STARTED;
        wx.logs.info(
            LogSource::Executor(cid),
            wx.ts(),
            t.class,
            t.msg(&[&self.app, &node]),
        );
        let stage = &self.spec.stages[self.stage_idx];
        let cpu_ms = stage.task_cpu_ms.sample(&mut self.rng);
        if stage.task_io_mb > 0.0 {
            // Replicated transfers put one full-size stream on this node
            // and one on each of `replicas-1` other nodes (the HDFS write
            // pipeline); the task proceeds when the whole pipeline
            // finishes.
            let replicas = self.spec.task_io_replicas.max(1);
            let n_nodes = wx.cluster.node_count() as u32;
            self.task_io_pending.insert(cid, replicas);
            for r in 0..replicas {
                let target = if r == 0 || n_nodes <= 1 {
                    node
                } else {
                    logmodel::NodeId(
                        (node.0 + 1 + self.rng.below((n_nodes - 1) as u64) as u32) % n_nodes,
                    )
                };
                let t = wx
                    .cluster
                    .spawn_io(wx.now, target, self.app, stage.task_io_mb, wx.out);
                self.tickets.insert(t, MrPurpose::TaskIo { cid, cpu_ms });
            }
        } else {
            let t = wx.cluster.spawn_cpu(
                wx.now,
                node,
                self.app,
                cpu_ms,
                self.spec.task_threads,
                wx.out,
            );
            self.tickets.insert(t, MrPurpose::TaskCpu { cid });
        }
    }

    fn on_work_done(&mut self, ticket: Ticket, wx: &mut Wx) {
        let Some(p) = self.tickets.remove(&ticket) else {
            return;
        };
        if self.finished_at.is_some() {
            return;
        }
        match p {
            MrPurpose::MasterInit => {
                let t = &crate::schema::MR_AM_REGISTERED;
                wx.logs
                    .info(LogSource::Driver(self.app), wx.ts(), t.class, t.msg(&[]));
                wx.cluster.am_register(wx.now, self.app, wx.logs, wx.out);
                self.request_stage(wx);
            }
            MrPurpose::TaskIo { cid, cpu_ms } => {
                // The task may have been reclaimed by a fault in between;
                // its replica streams then complete into the void.
                let Some(pending) = self.task_io_pending.get_mut(&cid) else {
                    return;
                };
                *pending -= 1;
                if *pending > 0 {
                    return;
                }
                self.task_io_pending.remove(&cid);
                let Some(&node) = self.task_nodes.get(&cid) else {
                    return;
                };
                let t = wx.cluster.spawn_cpu(
                    wx.now,
                    node,
                    self.app,
                    cpu_ms,
                    self.spec.task_threads,
                    wx.out,
                );
                self.tickets.insert(t, MrPurpose::TaskCpu { cid });
            }
            MrPurpose::TaskCpu { cid } => {
                wx.cluster.finish_container(wx.now, cid, wx.logs, wx.out);
                self.stage_completed += 1;
                let stage_tasks = self.spec.stages[self.stage_idx].tasks;
                if self.stage_completed >= stage_tasks {
                    self.stage_idx += 1;
                    self.stage_launched = 0;
                    self.stage_completed = 0;
                    self.request_stage(wx);
                }
            }
        }
    }

    fn finish(&mut self, wx: &mut Wx) {
        if self.finished_at.is_some() {
            return;
        }
        self.finished_at = Some(wx.now);
        let t = &crate::schema::MR_JOB_SUCCEEDED;
        wx.logs.info(
            LogSource::Driver(self.app),
            wx.ts(),
            t.class,
            t.msg(&[&self.spec.label]),
        );
        wx.cluster
            .finish_application(wx.now, self.app, wx.logs, wx.out);
    }
}
