//! Job specifications: everything that distinguishes one submitted
//! application from another, expressed as data.
//!
//! A [`JobSpec`] fully describes an application's behaviour — framework
//! protocol (Spark vs MapReduce), container shapes, localization payloads,
//! initialization work, and the stage/task execution graph — so the driver
//! logic in [`crate::run`] stays generic and the workload catalogue
//! (`workloads` crate, `profiles` module) is pure configuration.

use simkit::Dist;
use yarnsim::{ContainerRuntime, ResourceReq};

/// Coarse application family, used for reporting/grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// TPC-H query on Spark-SQL (the paper's primary workload).
    SparkSql,
    /// Spark wordcount (Fig 11-(a) comparison point).
    SparkWordcount,
    /// MapReduce wordcount (cluster-load generator, Fig 7-(c)/Table II).
    MapReduce,
    /// dfsIO HDFS write interference (Fig 12).
    DfsIo,
    /// HiBench Kmeans CPU interference (Fig 13).
    Kmeans,
}

impl JobKind {
    /// Short tag for reports.
    pub fn tag(self) -> &'static str {
        match self {
            JobKind::SparkSql => "spark-sql",
            JobKind::SparkWordcount => "spark-wc",
            JobKind::MapReduce => "mr-wc",
            JobKind::DfsIo => "dfsio",
            JobKind::Kmeans => "kmeans",
        }
    }
}

/// Which application-master protocol the job speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framework {
    /// Spark-on-YARN: driver = AM, long-lived executors, 80 % registered
    /// gate, `START_ALLO`/`END_ALLO` patch logs.
    Spark,
    /// MapReduce-on-YARN: AM = MRAppMaster, one container per task.
    MapReduce,
}

/// User-application initialization at the driver (paper §IV-D): opening
/// input files, building RDDs, creating broadcast variables. Runs *after*
/// the driver registers and lies on the critical path to the first task.
#[derive(Debug, Clone)]
pub struct UserInit {
    /// Files opened / RDD+broadcast pairs created (TPC-H: 8 tables;
    /// wordcount: 1).
    pub files: u32,
    /// CPU cost per file at the driver (broadcast creation is expensive —
    /// §IV-D "Code optimization").
    pub per_file_cpu_ms: Dist,
    /// HDFS metadata/footer read per file, MB on the driver's IO channel.
    pub per_file_io_mb: f64,
    /// `true` models the paper's optimized TPC-H (Scala `Future`s): all
    /// per-file chains run concurrently instead of sequentially.
    pub parallel: bool,
}

impl UserInit {
    /// No user initialization (interference jobs).
    pub fn none() -> UserInit {
        UserInit {
            files: 0,
            per_file_cpu_ms: Dist::constant(0.0),
            per_file_io_mb: 0.0,
            parallel: false,
        }
    }
}

/// One stage of the task graph executed once the first task is scheduled.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// Task count.
    pub tasks: u32,
    /// CPU work per task.
    pub task_cpu_ms: Dist,
    /// Input read per task (MB from the executor node's IO channel).
    pub task_io_mb: f64,
}

/// A complete application description.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Display label (e.g. `"tpch-q07"`).
    pub label: String,
    /// Family tag.
    pub kind: JobKind,
    /// AM protocol.
    pub framework: Framework,
    /// Executors requested (Spark) / irrelevant for MR (containers are
    /// per-task).
    pub num_executors: u32,
    /// Executor/task container shape.
    pub executor_resource: ResourceReq,
    /// AM (driver/master) container shape.
    pub am_resource: ResourceReq,
    /// Container runtime for every container of this job.
    pub runtime: ContainerRuntime,
    /// AM→RM heartbeat interval (acquisition quantum).
    pub am_heartbeat_ms: u64,

    /// Localization payload of the AM container, MB (Spark jars, conf).
    pub driver_localization_mb: f64,
    /// Localization payload of each worker container, MB.
    pub executor_localization_mb: f64,
    /// Additional `--files` payload localized by *both* driver and
    /// executors (Fig 8's sweep).
    pub extra_files_mb: f64,

    /// AM process launch work (launch script + JVM start), cpu-ms.
    pub am_launch_cpu_ms: Dist,
    /// Worker process launch work, cpu-ms.
    pub worker_launch_cpu_ms: Dist,
    /// Disk reads during process start (JVM classloading from the
    /// localized jars), MB — same for AM and workers.
    pub launch_io_mb: f64,
    /// Driver/master initialization between first log and RM registration
    /// (SparkContext + RM client setup), cpu-ms.
    pub driver_init_cpu_ms: Dist,
    /// Parallelism of driver init work.
    pub driver_init_threads: f64,
    /// Executor→driver registration RPC latency, ms.
    pub exec_register_rpc_ms: Dist,
    /// Executor-side setup between first log and driver registration
    /// (BlockManager registration, RPC env, classloading), cpu-ms on the
    /// executor's node.
    pub executor_setup_cpu_ms: Dist,
    /// Disk reads during executor setup (loading application classes from
    /// the localized jars), MB.
    pub executor_setup_io_mb: f64,
    /// Driver-side overhead between the scheduling gate opening and the
    /// first task dispatch (DAG construction, closure serialization, task
    /// binary broadcast), cpu-ms on the driver's node.
    pub first_dispatch_overhead_ms: Dist,

    /// User-code initialization at the driver.
    pub user_init: UserInit,
    /// Stages run after the gate opens.
    pub stages: Vec<StageSpec>,

    /// Spark's `minRegisteredResourcesRatio` for YARN (default 0.8): task
    /// scheduling will not start before this fraction of executors
    /// registered.
    pub min_registered_ratio: f64,
    /// Concurrent task slots per executor (= executor cores for Spark,
    /// 1 for MR).
    pub task_slots_per_executor: u32,
    /// CPU threads each running task occupies (Kmeans oversubscription
    /// uses > executor vcores; YARN does not enforce CPU isolation).
    pub task_threads: f64,
    /// IO streams per task transfer: 1 for reads, the HDFS replication
    /// factor for pipeline writes (each replica is a full-size stream on
    /// a distinct node — how dfsIO overwhelms "both disks and the
    /// network", §IV-E).
    pub task_io_replicas: u32,

    /// JVM warm-up tax: the first `warmup_tasks` tasks on each executor
    /// cost `warmup_factor ×` their sampled CPU (paper §V-B, ref. \[27\]).
    pub warmup_factor: f64,
    /// How many initial tasks per executor pay the warm-up tax.
    pub warmup_tasks: u32,

    /// SPARK-21562 emulation: extra containers requested beyond the real
    /// demand; they are granted and then never used (released). 0 = off.
    pub overalloc_extra: u32,
}

impl JobSpec {
    /// Total tasks across all stages.
    pub fn total_tasks(&self) -> u32 {
        self.stages.iter().map(|s| s.tasks).sum()
    }

    /// Gate threshold: executors that must register before task
    /// scheduling starts.
    pub fn min_registered(&self) -> u32 {
        ((self.num_executors as f64 * self.min_registered_ratio).ceil() as u32)
            .clamp(1, self.num_executors.max(1))
    }

    /// Containers the driver asks YARN for (needed + bug extras).
    pub fn requested_executors(&self) -> u32 {
        self.num_executors + self.overalloc_extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn min_registered_is_eighty_percent_ceil() {
        let mut s = profiles::spark_sql_default(2048.0, 4);
        assert_eq!(s.min_registered(), 4); // ceil(0.8*4)=4
        s.num_executors = 10;
        assert_eq!(s.min_registered(), 8);
        s.num_executors = 1;
        assert_eq!(s.min_registered(), 1);
        s.num_executors = 16;
        assert_eq!(s.min_registered(), 13);
    }

    #[test]
    fn requested_includes_bug_extras() {
        let mut s = profiles::spark_sql_default(2048.0, 4);
        assert_eq!(s.requested_executors(), 4);
        s.overalloc_extra = 2;
        assert_eq!(s.requested_executors(), 6);
    }

    #[test]
    fn total_tasks_sums_stages() {
        let s = profiles::spark_sql_default(2048.0, 4);
        assert_eq!(
            s.total_tasks(),
            s.stages.iter().map(|st| st.tasks).sum::<u32>()
        );
        assert!(s.total_tasks() > 0);
    }

    #[test]
    fn kind_tags_are_stable() {
        assert_eq!(JobKind::SparkSql.tag(), "spark-sql");
        assert_eq!(JobKind::DfsIo.tag(), "dfsio");
    }
}
