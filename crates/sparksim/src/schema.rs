//! The application side of the emitter↔parser contract: every log
//! message shape the Spark and MapReduce application models can write.
//!
//! The emit sites in [`run`](crate::run) render through these templates;
//! together with `yarnsim::schema` this is the complete vocabulary of a
//! simulated corpus, and `sdlint` cross-checks it against `sdchecker`'s
//! pattern table.

use logmodel::schema::{Disposition, Family, MsgTemplate};

/// Spark driver banner (§III-B message 9; also carries the workload
/// label mined by `extract_app_names`). Capture: app label.
pub const SPARK_AM_START: MsgTemplate = MsgTemplate {
    name: "spark_am_start",
    class: "ApplicationMaster",
    family: Family::Driver,
    template: "Starting ApplicationMaster for {}",
    disposition: Disposition::Event,
    file: "crates/sparksim/src/run.rs",
};

/// Spark AM registration with the RM (message 10). Capture: attempt id.
pub const SPARK_AM_REGISTERED: MsgTemplate = MsgTemplate {
    name: "spark_am_registered",
    class: "ApplicationMaster",
    family: Family::Driver,
    template: "Registered with ResourceManager as {}",
    disposition: Disposition::Event,
    file: "crates/sparksim/src/run.rs",
};

/// Allocation-start marker patched into `YarnAllocator` by the paper's
/// authors (message 11). Capture: executor count.
pub const SPARK_START_ALLO: MsgTemplate = MsgTemplate {
    name: "spark_start_allo",
    class: "YarnAllocator",
    family: Family::Driver,
    template: "START_ALLO Requesting {} executor containers",
    disposition: Disposition::Event,
    file: "crates/sparksim/src/run.rs",
};

/// Allocation-end marker (message 12). Capture: executor count.
pub const SPARK_END_ALLO: MsgTemplate = MsgTemplate {
    name: "spark_end_allo",
    class: "YarnAllocator",
    family: Family::Driver,
    template: "END_ALLO All {} requested executor containers allocated",
    disposition: Disposition::Event,
    file: "crates/sparksim/src/run.rs",
};

/// Executor's first log line (message 13) — consumed positionally.
/// Captures: app id, node id.
pub const SPARK_EXECUTOR_STARTED: MsgTemplate = MsgTemplate {
    name: "spark_executor_started",
    class: "CoarseGrainedExecutorBackend",
    family: Family::Executor,
    template: "Started executor for {} on {}",
    disposition: Disposition::Positional,
    file: "crates/sparksim/src/run.rs",
};

/// Task assignment (message 14). Captures: task id, stage index, TID
/// (the task id again — Spark prints it twice).
pub const SPARK_TASK_ASSIGNED: MsgTemplate = MsgTemplate {
    name: "spark_task_assigned",
    class: "Executor",
    family: Family::Executor,
    template: "Got assigned task {} in stage {}.0 (TID {})",
    disposition: Disposition::Event,
    file: "crates/sparksim/src/run.rs",
};

/// Clean Spark application end. Capture: app label.
pub const SPARK_APP_SUCCEEDED: MsgTemplate = MsgTemplate {
    name: "spark_app_succeeded",
    class: "ApplicationMaster",
    family: Family::Driver,
    template: "Final app status: SUCCEEDED for {}",
    disposition: Disposition::Noise,
    file: "crates/sparksim/src/run.rs",
};

/// Failed Spark application end (AM retries exhausted). Capture: label.
pub const SPARK_APP_FAILED: MsgTemplate = MsgTemplate {
    name: "spark_app_failed",
    class: "ApplicationMaster",
    family: Family::Driver,
    template: "Final app status: FAILED for {}",
    disposition: Disposition::Noise,
    file: "crates/sparksim/src/run.rs",
};

/// MapReduce driver banner — consumed positionally. Capture: app id.
pub const MR_AM_START: MsgTemplate = MsgTemplate {
    name: "mr_am_start",
    class: "MRAppMaster",
    family: Family::Driver,
    template: "Created MRAppMaster for application {}",
    disposition: Disposition::Positional,
    file: "crates/sparksim/src/run.rs",
};

/// MapReduce AM registration (no attempt id — MR v2 logs the bare
/// phrase). Zero captures.
pub const MR_AM_REGISTERED: MsgTemplate = MsgTemplate {
    name: "mr_am_registered",
    class: "MRAppMaster",
    family: Family::Driver,
    template: "Registered with ResourceManager",
    disposition: Disposition::Event,
    file: "crates/sparksim/src/run.rs",
};

/// MR task container's first log line — consumed positionally.
/// Captures: app id, node id.
pub const MR_TASK_STARTED: MsgTemplate = MsgTemplate {
    name: "mr_task_started",
    class: "YarnChild",
    family: Family::Executor,
    template: "Starting task for {} on {}",
    disposition: Disposition::Positional,
    file: "crates/sparksim/src/run.rs",
};

/// Clean MapReduce job end. Capture: job label.
pub const MR_JOB_SUCCEEDED: MsgTemplate = MsgTemplate {
    name: "mr_job_succeeded",
    class: "MRAppMaster",
    family: Family::Driver,
    template: "Job {} completed successfully",
    disposition: Disposition::Noise,
    file: "crates/sparksim/src/run.rs",
};

/// Failed MapReduce job end. Capture: job label.
pub const MR_JOB_FAILED: MsgTemplate = MsgTemplate {
    name: "mr_job_failed",
    class: "MRAppMaster",
    family: Family::Driver,
    template: "Job {} failed with state FAILED",
    disposition: Disposition::Noise,
    file: "crates/sparksim/src/run.rs",
};

/// Every message shape the application models can write, in one table.
pub const EMITTED: [MsgTemplate; 13] = [
    SPARK_AM_START,
    SPARK_AM_REGISTERED,
    SPARK_START_ALLO,
    SPARK_END_ALLO,
    SPARK_EXECUTOR_STARTED,
    SPARK_TASK_ASSIGNED,
    SPARK_APP_SUCCEEDED,
    SPARK_APP_FAILED,
    MR_AM_START,
    MR_AM_REGISTERED,
    MR_TASK_STARTED,
    MR_JOB_SUCCEEDED,
    MR_JOB_FAILED,
];

/// The emitted-template table (the application half; `yarnsim::schema`
/// holds the cluster half).
pub fn emitted_templates() -> &'static [MsgTemplate] {
    &EMITTED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_well_formed() {
        for t in emitted_templates() {
            assert!(!t.name.is_empty());
            assert!(!t.template.contains("{}{}"), "{}", t.name);
        }
        let mut names: Vec<&str> = EMITTED.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EMITTED.len());
    }

    #[test]
    fn templates_render_the_historical_phrasings() {
        assert_eq!(
            SPARK_START_ALLO.msg(&[&8]),
            "START_ALLO Requesting 8 executor containers"
        );
        assert_eq!(
            SPARK_TASK_ASSIGNED.msg(&[&3, &0, &3]),
            "Got assigned task 3 in stage 0.0 (TID 3)"
        );
        assert_eq!(MR_AM_REGISTERED.holes(), 0);
        assert_eq!(MR_AM_REGISTERED.msg(&[]), "Registered with ResourceManager");
    }
}
