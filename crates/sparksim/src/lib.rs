//! # sparksim — the application layer on top of the simulated cluster
//!
//! Models the in-application side of two-level scheduling: Spark drivers
//! (SparkContext init, AM registration, executor allocation with the 80 %
//! registered gate, sequential/parallel user initialization, stage/task
//! scheduling with JVM warm-up) and MapReduce masters (one container per
//! task), plus the interference generators the paper uses (dfsIO writers,
//! Kmeans CPU hogs) — all expressed as data ([`job::JobSpec`]) interpreted
//! by a generic protocol driver ([`run::Run`]).
//!
//! The [`model::World`] combines cluster and applications into a single
//! `simkit` model; [`model::simulate`] is the one-call entry point used by
//! the experiment harness.

pub mod job;
pub mod model;
pub mod profiles;
pub mod run;
pub mod schema;

pub use job::{Framework, JobKind, JobSpec, StageSpec, UserInit};
pub use model::{simulate, Ev, World};
pub use run::{JobSummary, Run, RunEvent};
