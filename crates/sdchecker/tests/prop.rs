//! Property-based tests for SDchecker's parsing and statistics layers.
//!
//! The properties run as seeded randomized loops over `simkit::SimRng`
//! (the workspace is dependency-free, so there is no proptest): every case
//! is deterministic per seed, and failures print the case number so a run
//! can be replayed by fixing the loop index.

use sdchecker::{Cdf, Pat, Summary};
use simkit::SimRng;

const CASES: u64 = 256;

fn alpha(rng: &mut SimRng, len_lo: u64, len_hi: u64) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ ";
    let len = rng.range(len_lo, len_hi);
    (0..len)
        .map(|_| ALPHABET[rng.index(ALPHABET.len())] as char)
        .collect()
}

fn digits(rng: &mut SimRng, len_lo: u64, len_hi: u64) -> String {
    const ALPHABET: &[u8] = b"0123456789_";
    let len = rng.range(len_lo, len_hi);
    (0..len)
        .map(|_| ALPHABET[rng.index(ALPHABET.len())] as char)
        .collect()
}

/// A pattern built as literal/hole/literal/hole/... always matches the
/// string assembled from the same pieces and recovers the captures.
#[test]
fn pattern_recovers_captures() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x5D00 + case);
        // Captures are digits/underscores and literals are letters/spaces,
        // so a capture can never swallow a literal boundary.
        let ncaps = rng.range(1, 4) as usize;
        let caps: Vec<String> = (0..ncaps).map(|_| digits(&mut rng, 1, 13)).collect();
        let lits: Vec<String> = (0..=ncaps).map(|_| alpha(&mut rng, 1, 11)).collect();
        let mut pattern = String::new();
        let mut text = String::new();
        for (i, lit) in lits.iter().enumerate() {
            pattern.push_str(lit);
            text.push_str(lit);
            if i < caps.len() {
                pattern.push_str("{}");
                text.push_str(&caps[i]);
            }
        }
        let pat = Pat::new(&pattern).unwrap();
        let got = pat.match_str(&text);
        assert_eq!(
            got,
            Some(caps.iter().map(String::as_str).collect::<Vec<_>>()),
            "case {case}: pattern {pattern:?} text {text:?}"
        );
    }
}

/// Summary statistics are order-invariant and internally consistent.
#[test]
fn summary_is_consistent() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x5D01 + case);
        let n = rng.range(1, 200) as usize;
        let mut values: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 1e7)).collect();
        let s1 = Summary::from(&values).unwrap();
        values.reverse();
        let s2 = Summary::from(&values).unwrap();
        assert_eq!(s1, s2, "case {case}");
        assert!(s1.min <= s1.p50 && s1.p50 <= s1.p90, "case {case}");
        assert!(
            s1.p90 <= s1.p95 && s1.p95 <= s1.p99 && s1.p99 <= s1.max,
            "case {case}"
        );
        assert!(s1.min <= s1.mean && s1.mean <= s1.max, "case {case}");
        assert!(s1.std_dev >= 0.0, "case {case}");
    }
}

/// CDF: `at` is a nondecreasing step function from 0 to 1, and
/// quantile/at are approximate inverses.
#[test]
fn cdf_monotone_and_bounded() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x5D02 + case);
        let n = rng.range(1, 100) as usize;
        let values: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 1e6)).collect();
        let cdf = Cdf::from(&values);
        assert_eq!(cdf.at(-1.0), 0.0, "case {case}");
        assert_eq!(cdf.at(1e9), 1.0, "case {case}");
        let mut prev = 0.0;
        for x in [0.0, 1.0, 10.0, 100.0, 1e3, 1e5, 1e6] {
            let y = cdf.at(x);
            assert!(y >= prev, "case {case}: at({x}) regressed");
            prev = y;
        }
        // Quantiles are within the sample range and monotone.
        let q25 = cdf.quantile(0.25).unwrap();
        let q75 = cdf.quantile(0.75).unwrap();
        assert!(q25 <= q75, "case {case}");
        let (min, max) = values
            .iter()
            .fold((f64::MAX, f64::MIN), |(a, b), v| (a.min(*v), b.max(*v)));
        assert!(q25 >= min && q75 <= max, "case {case}");
    }
}

/// CDF points are monotone in both coordinates and end at fraction 1.
#[test]
fn cdf_points_monotone() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x5D03 + case);
        let n = rng.range(1, 400) as usize;
        let values: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 1e6)).collect();
        let cap = rng.range(5, 50) as usize;
        let cdf = Cdf::from(&values);
        let pts = cdf.points(cap);
        assert!(!pts.is_empty(), "case {case}");
        assert!(pts.len() <= cap.max(values.len().min(cap)), "case {case}");
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0, "case {case}");
            assert!(w[0].1 < w[1].1, "case {case}");
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12, "case {case}");
    }
}
