//! Property-based tests for SDchecker's parsing and statistics layers.

use proptest::prelude::*;
use sdchecker::{Cdf, Pat, Summary};

proptest! {
    /// A pattern built as literal/hole/literal/hole/... always matches the
    /// string assembled from the same pieces and recovers the captures.
    #[test]
    fn pattern_recovers_captures(
        lits in prop::collection::vec("[a-zA-Z ]{1,10}", 2..5),
        caps in prop::collection::vec("[0-9_]{1,12}", 1..4),
    ) {
        // Interleave: lit cap lit cap ... lit (needs lits.len() = caps.len()+1)
        prop_assume!(lits.len() == caps.len() + 1);
        // Captures are digits/underscores and literals are letters/spaces,
        // so a capture can never swallow a literal boundary.
        let mut pattern = String::new();
        let mut text = String::new();
        for (i, lit) in lits.iter().enumerate() {
            pattern.push_str(lit);
            text.push_str(lit);
            if i < caps.len() {
                pattern.push_str("{}");
                text.push_str(&caps[i]);
            }
        }
        let pat = Pat::new(&pattern);
        let got = pat.match_str(&text);
        prop_assert_eq!(got, Some(caps.iter().map(String::as_str).collect::<Vec<_>>()));
    }

    /// Summary statistics are order-invariant and internally consistent.
    #[test]
    fn summary_is_consistent(mut values in prop::collection::vec(0.0f64..1e7, 1..200)) {
        let s1 = Summary::from(&values).unwrap();
        values.reverse();
        let s2 = Summary::from(&values).unwrap();
        prop_assert_eq!(s1.clone(), s2);
        prop_assert!(s1.min <= s1.p50 && s1.p50 <= s1.p90);
        prop_assert!(s1.p90 <= s1.p95 && s1.p95 <= s1.p99 && s1.p99 <= s1.max);
        prop_assert!(s1.min <= s1.mean && s1.mean <= s1.max);
        prop_assert!(s1.std_dev >= 0.0);
    }

    /// CDF: `at` is a nondecreasing step function from 0 to 1, and
    /// quantile/at are approximate inverses.
    #[test]
    fn cdf_monotone_and_bounded(values in prop::collection::vec(0.0f64..1e6, 1..100)) {
        let cdf = Cdf::from(&values);
        let lo = cdf.at(-1.0);
        let hi = cdf.at(1e9);
        prop_assert_eq!(lo, 0.0);
        prop_assert_eq!(hi, 1.0);
        let mut prev = 0.0;
        for x in [0.0, 1.0, 10.0, 100.0, 1e3, 1e5, 1e6] {
            let y = cdf.at(x);
            prop_assert!(y >= prev);
            prev = y;
        }
        // Quantiles are within the sample range and monotone.
        let q25 = cdf.quantile(0.25).unwrap();
        let q75 = cdf.quantile(0.75).unwrap();
        prop_assert!(q25 <= q75);
        let (min, max) = values.iter().fold((f64::MAX, f64::MIN), |(a, b), v| (a.min(*v), b.max(*v)));
        prop_assert!(q25 >= min && q75 <= max);
    }

    /// CDF points are monotone in both coordinates and end at fraction 1.
    #[test]
    fn cdf_points_monotone(values in prop::collection::vec(0.0f64..1e6, 1..400), cap in 5usize..50) {
        let cdf = Cdf::from(&values);
        let pts = cdf.points(cap);
        prop_assert!(!pts.is_empty());
        prop_assert!(pts.len() <= cap.max(values.len().min(cap)));
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 < w[1].1);
        }
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
