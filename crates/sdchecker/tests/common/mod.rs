//! Shared corpus builders for the robustness integration tests: a mixed
//! fleet with one clean app, one failed app (AM retried, then attempts
//! exhausted), and one app whose capture simply stops — plus the
//! out-of-band damage a real log collection accumulates (schema drift,
//! corrupt ids, node-loss notices).

use logmodel::{ApplicationId, Epoch, LogSource, LogStore, NodeId, TsMs};

/// Populate `s` with the mixed fleet. Returns the three application ids
/// in (clean, failed, truncated) order.
pub fn populate_faulty_fleet(s: &mut LogStore) -> (ApplicationId, ApplicationId, ApplicationId) {
    let epoch = Epoch::default_run();
    let cts = epoch.unix_ms;
    let rm = LogSource::ResourceManager;

    // App 1: a clean, complete run with known delays (total 10.9 s).
    let a1 = ApplicationId::new(cts, 1);
    {
        let a = a1;
        let am = a.attempt(1).container(1);
        let ex = a.attempt(1).container(2);
        let nm = LogSource::NodeManager(NodeId(1));
        s.info(
            rm,
            TsMs(100),
            "RMAppImpl",
            format!("{a} State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"),
        );
        s.info(
            rm,
            TsMs(120),
            "RMAppImpl",
            format!("{a} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"),
        );
        s.info(
            rm,
            TsMs(150),
            "RMContainerImpl",
            format!("{am} Container Transitioned from NEW to ALLOCATED"),
        );
        s.info(
            rm,
            TsMs(151),
            "RMContainerImpl",
            format!("{am} Container Transitioned from ALLOCATED to ACQUIRED"),
        );
        s.info(
            nm,
            TsMs(160),
            "ContainerImpl",
            format!("Container {am} transitioned from NEW to LOCALIZING"),
        );
        s.info(
            nm,
            TsMs(700),
            "ContainerImpl",
            format!("Container {am} transitioned from LOCALIZING to SCHEDULED"),
        );
        s.info(
            nm,
            TsMs(705),
            "ContainerImpl",
            format!("Container {am} transitioned from SCHEDULED to RUNNING"),
        );
        let drv = LogSource::Driver(a);
        s.info(
            drv,
            TsMs(1400),
            "ApplicationMaster",
            "Starting ApplicationMaster for tpch-q01",
        );
        s.info(
            drv,
            TsMs(4400),
            "ApplicationMaster",
            "Registered with ResourceManager as attempt",
        );
        s.info(
            rm,
            TsMs(4400),
            "RMAppImpl",
            format!("{a} State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"),
        );
        s.info(
            drv,
            TsMs(4401),
            "YarnAllocator",
            "START_ALLO Requesting 1 executor containers",
        );
        s.info(
            rm,
            TsMs(4500),
            "RMContainerImpl",
            format!("{ex} Container Transitioned from NEW to ALLOCATED"),
        );
        s.info(
            rm,
            TsMs(5400),
            "RMContainerImpl",
            format!("{ex} Container Transitioned from ALLOCATED to ACQUIRED"),
        );
        s.info(
            drv,
            TsMs(5400),
            "YarnAllocator",
            "END_ALLO All 1 requested executor containers allocated",
        );
        s.info(
            nm,
            TsMs(5420),
            "ContainerImpl",
            format!("Container {ex} transitioned from NEW to LOCALIZING"),
        );
        s.info(
            nm,
            TsMs(5920),
            "ContainerImpl",
            format!("Container {ex} transitioned from LOCALIZING to SCHEDULED"),
        );
        s.info(
            nm,
            TsMs(5925),
            "ContainerImpl",
            format!("Container {ex} transitioned from SCHEDULED to RUNNING"),
        );
        let exl = LogSource::Executor(ex);
        s.info(
            exl,
            TsMs(6625),
            "CoarseGrainedExecutorBackend",
            "Started executor",
        );
        s.info(
            exl,
            TsMs(11_000),
            "Executor",
            "Got assigned task 0 in stage 0.0 (TID 0)",
        );
        s.info(
            rm,
            TsMs(40_100),
            "RMAppImpl",
            format!(
                "{a} State change from RUNNING to FINAL_SAVING on event = ATTEMPT_UNREGISTERED"
            ),
        );
    }

    // App 2: attempt 1 dies in localization, attempt 2's AM exits with a
    // failure, and with attempts exhausted the app lands in FAILED. The
    // dead attempt-1 container's observed span is the app's wasted delay.
    let a2 = ApplicationId::new(cts, 2);
    {
        let a = a2;
        let b = 60_000;
        let am1 = a.attempt(1).container(1);
        let am2 = a.attempt(2).container(1);
        let nm = LogSource::NodeManager(NodeId(2));
        s.info(
            rm,
            TsMs(b + 100),
            "RMAppImpl",
            format!("{a} State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"),
        );
        s.info(
            rm,
            TsMs(b + 120),
            "RMAppImpl",
            format!("{a} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"),
        );
        s.info(
            rm,
            TsMs(b + 150),
            "RMContainerImpl",
            format!("{am1} Container Transitioned from NEW to ALLOCATED"),
        );
        s.info(
            rm,
            TsMs(b + 151),
            "RMContainerImpl",
            format!("{am1} Container Transitioned from ALLOCATED to ACQUIRED"),
        );
        s.info(
            nm,
            TsMs(b + 160),
            "ContainerImpl",
            format!("Container {am1} transitioned from NEW to LOCALIZING"),
        );
        s.info(
            nm,
            TsMs(b + 400),
            "ContainerImpl",
            format!("Container {am1} transitioned from LOCALIZING to LOCALIZATION_FAILED"),
        );
        s.info(
            rm,
            TsMs(b + 420),
            "RMContainerImpl",
            format!("{am1} Container Transitioned from ACQUIRED to KILLED"),
        );
        s.info(
            rm,
            TsMs(b + 450),
            "RMAppAttemptImpl",
            format!(
                "{} State change from LAUNCHED to FAILED on event = CONTAINER_FINISHED",
                a.attempt(1)
            ),
        );
        s.info(
            rm,
            TsMs(b + 500),
            "RMContainerImpl",
            format!("{am2} Container Transitioned from NEW to ALLOCATED"),
        );
        s.info(
            rm,
            TsMs(b + 501),
            "RMContainerImpl",
            format!("{am2} Container Transitioned from ALLOCATED to ACQUIRED"),
        );
        s.info(
            nm,
            TsMs(b + 510),
            "ContainerImpl",
            format!("Container {am2} transitioned from NEW to LOCALIZING"),
        );
        s.info(
            nm,
            TsMs(b + 900),
            "ContainerImpl",
            format!("Container {am2} transitioned from LOCALIZING to SCHEDULED"),
        );
        s.info(
            nm,
            TsMs(b + 905),
            "ContainerImpl",
            format!("Container {am2} transitioned from SCHEDULED to RUNNING"),
        );
        s.info(
            LogSource::Driver(a),
            TsMs(b + 1500),
            "ApplicationMaster",
            "Starting ApplicationMaster for tpch-q05",
        );
        s.info(
            nm,
            TsMs(b + 2000),
            "ContainerImpl",
            format!("Container {am2} transitioned from RUNNING to EXITED_WITH_FAILURE"),
        );
        s.info(
            rm,
            TsMs(b + 2050),
            "RMAppAttemptImpl",
            format!(
                "{} State change from LAUNCHED to FAILED on event = CONTAINER_FINISHED",
                a.attempt(2)
            ),
        );
        s.info(
            rm,
            TsMs(b + 2060),
            "RMAppImpl",
            format!("{a} State change from ACCEPTED to FINAL_SAVING on event = ATTEMPT_FAILED"),
        );
        s.info(
            rm,
            TsMs(b + 2100),
            "RMAppImpl",
            format!("{a} State change from FINAL_SAVING to FAILED on event = APP_UPDATE_SAVED"),
        );
    }

    // App 3: in flight when the collection stops — no terminal evidence.
    let a3 = ApplicationId::new(cts, 3);
    {
        let a = a3;
        let b = 120_000;
        let am = a.attempt(1).container(1);
        let nm = LogSource::NodeManager(NodeId(3));
        s.info(
            rm,
            TsMs(b + 100),
            "RMAppImpl",
            format!("{a} State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"),
        );
        s.info(
            rm,
            TsMs(b + 120),
            "RMAppImpl",
            format!("{a} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"),
        );
        s.info(
            rm,
            TsMs(b + 150),
            "RMContainerImpl",
            format!("{am} Container Transitioned from NEW to ALLOCATED"),
        );
        s.info(
            rm,
            TsMs(b + 151),
            "RMContainerImpl",
            format!("{am} Container Transitioned from ALLOCATED to ACQUIRED"),
        );
        s.info(
            nm,
            TsMs(b + 160),
            "ContainerImpl",
            format!("Container {am} transitioned from NEW to LOCALIZING"),
        );
        s.info(
            nm,
            TsMs(b + 700),
            "ContainerImpl",
            format!("Container {am} transitioned from LOCALIZING to SCHEDULED"),
        );
        s.info(
            nm,
            TsMs(b + 705),
            "ContainerImpl",
            format!("Container {am} transitioned from SCHEDULED to RUNNING"),
        );
        s.info(
            LogSource::Driver(a),
            TsMs(b + 1400),
            "ApplicationMaster",
            "Starting ApplicationMaster for tpch-q09 and this trailing line will be cut mid-sentence",
        );
    }

    // Out-of-band cluster noise: a lost node (recognized, ignored), a
    // state outside the extraction alphabet (schema drift → unmatched),
    // and a transition-shaped line whose app id does not parse (log
    // damage → anomalous).
    s.info(
        rm,
        TsMs(150_000),
        "RMNodeImpl",
        format!("Deactivating Node {} as it is now LOST", NodeId(3)),
    );
    s.info(
        rm,
        TsMs(151_000),
        "RMAppImpl",
        format!("{a1} State change from ACCEPTED to ZOMBIE on event = KILL"),
    );
    s.info(
        rm,
        TsMs(152_000),
        "RMAppImpl",
        format!(
            "application_{cts}_00xx State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"
        ),
    );

    (a1, a2, a3)
}
