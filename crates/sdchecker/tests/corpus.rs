//! Golden tests over the checked-in damaged corpus at `tests/corpus/`:
//! a mixed fleet (clean app, failed app with a retried AM, truncated app)
//! whose files additionally carry hand-placed damage — a driver log cut
//! mid-line and a garbage line in the ResourceManager log. SDchecker must
//! produce the exact partial report pinned in `tests/golden/` — no panic,
//! every application accounted for.
//!
//! Refresh the corpus and goldens together after an intentional change:
//! `UPDATE_GOLDEN=1 cargo test -p sdchecker --test corpus`.

mod common;

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use logmodel::{Epoch, LogStore};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sdchecker"))
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn golden(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}"))
}

/// Regenerate `tests/corpus/` deterministically: write the mixed fleet,
/// then apply the hand-placed damage. Only runs under `UPDATE_GOLDEN=1`;
/// normal runs read the checked-in files.
fn regenerate_corpus(dir: &PathBuf) {
    let _ = fs::remove_dir_all(dir);
    let mut s = LogStore::new(Epoch::default_run());
    let (_a1, _a2, a3) = common::populate_faulty_fleet(&mut s);
    s.write_dir(dir).unwrap();
    // The truncated app's driver log is cut mid-line (collection died).
    let drv = dir.join(format!("apps/{a3}/driver.log"));
    let bytes = fs::read(&drv).unwrap();
    fs::write(&drv, &bytes[..bytes.len() - 30]).unwrap();
    // A stretch of the RM log was overwritten with garbage (bit rot).
    let rm = dir.join("resourcemanager.log");
    let mut rm_bytes = fs::read(&rm).unwrap();
    rm_bytes.extend_from_slice(b"#### corrupted sector: not a log line at all ####\n");
    fs::write(&rm, rm_bytes).unwrap();
}

#[test]
fn damaged_corpus_produces_golden_partial_report() {
    let dir = corpus_dir();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        regenerate_corpus(&dir);
    }
    assert!(
        dir.join("epoch.txt").exists(),
        "checked-in corpus missing; regenerate with UPDATE_GOLDEN=1"
    );

    let tmp = std::env::temp_dir().join(format!("sdchecker_corpus_{}", std::process::id()));
    let _ = fs::remove_dir_all(&tmp);
    fs::create_dir_all(&tmp).unwrap();
    let report = tmp.join("report.json");
    let out = bin()
        .arg(&dir)
        .args(["--threads", "1"])
        .args(["--report-json", report.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "sdchecker must survive the damaged corpus; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let json = fs::read_to_string(&report).unwrap();

    // Structural checks before the byte comparison, so failures explain
    // themselves while goldens are being regenerated.
    let doc = obs::json::parse(&json).expect("report must be valid JSON");
    let apps = doc.get("applications").unwrap().as_arr().unwrap().to_vec();
    assert_eq!(apps.len(), 3, "all three applications accounted for");
    let fleet = doc.get("fleet").unwrap();
    assert_eq!(fleet.get("applications").unwrap().as_f64(), Some(3.0));
    let failures = doc
        .get("failures")
        .expect("hard failure evidence must create the failures section");
    assert_eq!(failures.get("failed").unwrap().as_f64(), Some(1.0));
    assert_eq!(failures.get("killed").unwrap().as_f64(), Some(0.0));
    assert_eq!(failures.get("retried_apps").unwrap().as_f64(), Some(1.0));
    assert_eq!(failures.get("anomalous_lines").unwrap().as_f64(), Some(1.0));
    assert!(text.contains("Failures: 1 failed, 0 killed, 1 retried AMs"));
    assert!(
        text.contains("anomalous"),
        "coverage summary must show the anomalous column: {text}"
    );

    for (name, got) in [("corpus_report.txt", &text), ("corpus_report.json", &json)] {
        let path = golden(name);
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(&path, got).unwrap();
        }
        let want = fs::read_to_string(&path).expect("golden file missing; see test doc");
        assert_eq!(got, &want, "{name} drifted from tests/golden/{name}");
    }
    fs::remove_dir_all(&tmp).unwrap();
}
