//! Property: a checkpoint is a **lossless** snapshot of the whole
//! streaming pipeline at *every* poll boundary. For random append
//! schedules we run the same scenario twice — once uninterrupted, once
//! round-tripping tailer + analyzer + alert engine through
//! `sdchecker::checkpoint` save/load at every single poll boundary
//! (simulating a crash-and-restore between every pair of polls) — and
//! require byte-identical wide events, retirement sequence, alert
//! transitions, and final report.

mod common;

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use logmodel::{Epoch, LogStore};
use sdchecker::checkpoint::{self, CfgFingerprint, CheckpointStore, SaveInputs};
use sdchecker::{
    default_rules, AlertEngine, DirTailer, IncrementalAnalyzer, IncrementalConfig, Outcome,
    Transition,
};
use simkit::SimRng;

const ALERT_EVAL_MS: u64 = 1_000;
const SLO_MS: u64 = 1;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sdckpt_prop_{name}_{}", std::process::id()))
}

fn cfg() -> IncrementalConfig {
    IncrementalConfig {
        settle_ms: 1_000,
        idle_timeout_ms: 0,
        exemplar_slots: 3,
    }
}

fn fingerprint() -> CfgFingerprint {
    let c = cfg();
    CfgFingerprint {
        settle_ms: c.settle_ms,
        idle_timeout_ms: c.idle_timeout_ms,
        exemplar_slots: c.exemplar_slots as u64,
        alerts: true,
        slo_ms: SLO_MS,
        eval_interval_ms: ALERT_EVAL_MS,
    }
}

/// Everything a run produces that a crash must not change.
#[derive(Debug, PartialEq)]
struct Outputs {
    retired: Vec<String>,
    wide: Vec<String>,
    transitions: Vec<Transition>,
    report: String,
    exemplar_index: String,
}

/// Stream the faulty-fleet corpus into `dir` in seeded random chunks,
/// polling at random boundaries. With `interrupt`, every poll boundary
/// ends in a checkpoint save followed by a full restore into *fresh*
/// objects that replace the live ones — the code path a SIGKILL and
/// restart would take.
fn run(seed: u64, dir: &Path, interrupt: bool) -> Outputs {
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir).unwrap();
    let mut logs = LogStore::new(Epoch::default_run());
    common::populate_faulty_fleet(&mut logs);
    fs::write(dir.join("epoch.txt"), format!("{}\n", logs.epoch().unix_ms)).unwrap();

    // Full byte blob per source; the RM log loses its final newline so
    // held-back partial bytes are part of the checkpointed state.
    let mut blobs: Vec<(PathBuf, Vec<u8>, usize)> = logs
        .sources()
        .map(|src| {
            let mut bytes = logs.render_source(src).into_bytes();
            if src == logmodel::LogSource::ResourceManager {
                assert_eq!(bytes.pop(), Some(b'\n'));
            }
            (dir.join(src.rel_path()), bytes, 0)
        })
        .collect();
    for (path, _, _) in &blobs {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, b"").unwrap();
    }

    let store = CheckpointStore::open(&dir.join("ckpt")).unwrap();
    let fp = fingerprint();
    let mut rng = SimRng::new(0xC4A5 + seed);
    let mut tailer = DirTailer::new(dir).unwrap();
    let mut analyzer = IncrementalAnalyzer::new(cfg());
    let mut engine = AlertEngine::new(default_rules(SLO_MS), ALERT_EVAL_MS);
    let mut out = Outputs {
        retired: Vec::new(),
        wide: Vec::new(),
        transitions: Vec::new(),
        report: String::new(),
        exemplar_index: String::new(),
    };
    let mut wide_bytes: u64 = 0;
    let mut writes: u64 = 0;

    let boundary = |tailer: &mut DirTailer,
                    analyzer: &mut IncrementalAnalyzer,
                    engine: &mut AlertEngine,
                    out: &mut Outputs,
                    wide_bytes: &mut u64,
                    writes: &mut u64| {
        for (src, rec) in tailer.poll().unwrap() {
            if analyzer.ingest(src, &rec) == Outcome::Anomalous {
                engine.observe_anomalous(rec.ts);
            }
        }
        for r in analyzer.drain_ready() {
            engine.observe_retirement(r.retire_ms, &r.delays);
            *wide_bytes += r.wide_event.len() as u64 + 1;
            out.retired.push(r.app.to_string());
            out.wide.push(r.wide_event);
        }
        if let Some(w) = analyzer.watermark() {
            out.transitions.extend(engine.advance(w));
        }
        if interrupt {
            *writes += 1;
            checkpoint::save(
                &store,
                &SaveInputs {
                    tailer,
                    analyzer,
                    engine: Some(engine),
                    fingerprint: &fp,
                    wide_bytes: *wide_bytes,
                    writes_total: *writes,
                    recoveries: 0,
                },
            )
            .unwrap();
            let mut fresh = AlertEngine::new(default_rules(SLO_MS), ALERT_EVAL_MS);
            let (restored, warnings) = checkpoint::load(&store, dir, &fp, Some(&mut fresh));
            assert!(warnings.is_empty(), "{warnings:?}");
            let r = restored.unwrap();
            assert_eq!(r.wide_bytes, *wide_bytes);
            *tailer = r.tailer;
            *analyzer = r.analyzer;
            *engine = fresh;
        }
    };

    loop {
        let pending: Vec<usize> = blobs
            .iter()
            .enumerate()
            .filter(|(_, (_, bytes, pos))| pos < &bytes.len())
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            break;
        }
        let pick = pending[rng.below(pending.len() as u64) as usize];
        let (path, bytes, pos) = &mut blobs[pick];
        let n = (1 + rng.below(19) as usize).min(bytes.len() - *pos);
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&bytes[*pos..*pos + n]).unwrap();
        *pos += n;
        if rng.below(4) == 0 {
            boundary(
                &mut tailer,
                &mut analyzer,
                &mut engine,
                &mut out,
                &mut wide_bytes,
                &mut writes,
            );
        }
    }
    boundary(
        &mut tailer,
        &mut analyzer,
        &mut engine,
        &mut out,
        &mut wide_bytes,
        &mut writes,
    );

    // Shutdown drain, exactly as the daemon does it.
    for (src, rec) in tailer.flush_partial() {
        if analyzer.ingest(src, &rec) == Outcome::Anomalous {
            engine.observe_anomalous(rec.ts);
        }
    }
    for r in analyzer.finish() {
        engine.observe_retirement(r.retire_ms, &r.delays);
        out.retired.push(r.app.to_string());
        out.wide.push(r.wide_event);
    }
    let end = analyzer.watermark().map_or(0, |w| w.0) + ALERT_EVAL_MS;
    engine.set_live_lag(0);
    out.transitions.extend(engine.advance(logmodel::TsMs(end)));
    out.transitions
        .extend(engine.close_out(logmodel::TsMs(end)));
    out.report = analyzer.live_report_json(Some((&tailer.lag(), &tailer.stats())));
    out.exemplar_index = analyzer.exemplars().index_json();
    out
}

#[test]
fn checkpoint_round_trip_is_lossless_at_every_poll_boundary() {
    for seed in 0u64..5 {
        let base = tmp(&format!("rt_{seed}_base"));
        let intr = tmp(&format!("rt_{seed}_intr"));
        let baseline = run(seed, &base, false);
        let resumed = run(seed, &intr, true);
        assert!(
            !baseline.retired.is_empty(),
            "seed {seed}: scenario must retire apps mid-run"
        );
        assert_eq!(
            baseline, resumed,
            "seed {seed}: a checkpoint round-trip changed the outputs"
        );
        let _ = fs::remove_dir_all(&base);
        let _ = fs::remove_dir_all(&intr);
    }
}
