//! End-to-end tests of the `sdchecker` CLI binary over a hand-assembled
//! log corpus (the tool's real-world entry point).

use std::path::PathBuf;
use std::process::Command;

use logmodel::{ApplicationId, Epoch, LogSource, LogStore, NodeId, TsMs};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sdchecker"))
}

/// A complete single-app corpus with known delays.
fn write_corpus(dir: &std::path::Path) -> ApplicationId {
    let mut s = LogStore::new(Epoch::default_run());
    let a = populate_app1(&mut s);
    s.write_dir(dir).unwrap();
    a
}

fn populate_app1(s: &mut LogStore) -> ApplicationId {
    let epoch = Epoch::default_run();
    let a = ApplicationId::new(epoch.unix_ms, 1);
    let am = a.attempt(1).container(1);
    let ex = a.attempt(1).container(2);
    let rm = LogSource::ResourceManager;
    let nm = LogSource::NodeManager(NodeId(2));
    s.info(
        rm,
        TsMs(100),
        "RMAppImpl",
        format!("{a} State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"),
    );
    s.info(
        rm,
        TsMs(120),
        "RMAppImpl",
        format!("{a} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"),
    );
    s.info(
        rm,
        TsMs(150),
        "RMContainerImpl",
        format!("{am} Container Transitioned from NEW to ALLOCATED"),
    );
    s.info(
        rm,
        TsMs(151),
        "RMContainerImpl",
        format!("{am} Container Transitioned from ALLOCATED to ACQUIRED"),
    );
    s.info(
        nm,
        TsMs(160),
        "ContainerImpl",
        format!("Container {am} transitioned from NEW to LOCALIZING"),
    );
    s.info(
        nm,
        TsMs(700),
        "ContainerImpl",
        format!("Container {am} transitioned from LOCALIZING to SCHEDULED"),
    );
    s.info(
        nm,
        TsMs(705),
        "ContainerImpl",
        format!("Container {am} transitioned from SCHEDULED to RUNNING"),
    );
    s.info(
        LogSource::Driver(a),
        TsMs(1400),
        "ApplicationMaster",
        "Starting ApplicationMaster",
    );
    s.info(
        LogSource::Driver(a),
        TsMs(4400),
        "ApplicationMaster",
        "Registered with ResourceManager",
    );
    s.info(
        rm,
        TsMs(4400),
        "RMAppImpl",
        format!("{a} State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"),
    );
    s.info(
        LogSource::Driver(a),
        TsMs(4401),
        "YarnAllocator",
        "START_ALLO Requesting 1 executor containers",
    );
    s.info(
        rm,
        TsMs(4500),
        "RMContainerImpl",
        format!("{ex} Container Transitioned from NEW to ALLOCATED"),
    );
    s.info(
        rm,
        TsMs(5400),
        "RMContainerImpl",
        format!("{ex} Container Transitioned from ALLOCATED to ACQUIRED"),
    );
    s.info(
        LogSource::Driver(a),
        TsMs(5400),
        "YarnAllocator",
        "END_ALLO All requested executor containers allocated",
    );
    s.info(
        nm,
        TsMs(5420),
        "ContainerImpl",
        format!("Container {ex} transitioned from NEW to LOCALIZING"),
    );
    s.info(
        nm,
        TsMs(5920),
        "ContainerImpl",
        format!("Container {ex} transitioned from LOCALIZING to SCHEDULED"),
    );
    s.info(
        nm,
        TsMs(5925),
        "ContainerImpl",
        format!("Container {ex} transitioned from SCHEDULED to RUNNING"),
    );
    s.info(
        LogSource::Executor(ex),
        TsMs(6625),
        "CoarseGrainedExecutorBackend",
        "Started executor",
    );
    s.info(
        LogSource::Executor(ex),
        TsMs(11_000),
        "Executor",
        "Got assigned task 0 in stage 0.0 (TID 0)",
    );
    s.info(
        rm,
        TsMs(40_100),
        "RMAppImpl",
        format!("{a} State change from RUNNING to FINAL_SAVING on event = ATTEMPT_UNREGISTERED"),
    );
    a
}

/// `write_corpus` plus a second, time-shifted application and one
/// schema-drift line (an RM app state outside the known alphabet), so
/// parse-coverage metrics exercise all three statuses.
fn write_two_app_corpus(dir: &std::path::Path) -> ApplicationId {
    let epoch = Epoch::default_run();
    let mut s = LogStore::new(epoch);
    let first = populate_app1(&mut s);
    let a = ApplicationId::new(epoch.unix_ms, 2);
    let am = a.attempt(1).container(1);
    let rm = LogSource::ResourceManager;
    let nm = LogSource::NodeManager(NodeId(3));
    s.info(
        rm,
        TsMs(50_100),
        "RMAppImpl",
        format!("{a} State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"),
    );
    s.info(
        rm,
        TsMs(50_120),
        "RMAppImpl",
        format!("{a} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"),
    );
    s.info(
        rm,
        TsMs(50_150),
        "RMContainerImpl",
        format!("{am} Container Transitioned from NEW to ALLOCATED"),
    );
    s.info(
        rm,
        TsMs(50_151),
        "RMContainerImpl",
        format!("{am} Container Transitioned from ALLOCATED to ACQUIRED"),
    );
    s.info(
        nm,
        TsMs(50_160),
        "ContainerImpl",
        format!("Container {am} transitioned from NEW to LOCALIZING"),
    );
    s.info(
        nm,
        TsMs(50_700),
        "ContainerImpl",
        format!("Container {am} transitioned from LOCALIZING to SCHEDULED"),
    );
    s.info(
        nm,
        TsMs(50_705),
        "ContainerImpl",
        format!("Container {am} transitioned from SCHEDULED to RUNNING"),
    );
    s.info(
        LogSource::Driver(a),
        TsMs(51_400),
        "ApplicationMaster",
        "Starting ApplicationMaster",
    );
    // Schema drift: a state SDchecker's extraction rules don't know.
    // (KILLED is a recognized terminal state now, so an invented one.)
    s.info(
        rm,
        TsMs(90_000),
        "RMAppImpl",
        format!("{a} State change from ACCEPTED to ZOMBIE on event = KILL"),
    );
    s.write_dir(dir).unwrap();
    first
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sdchecker_clitest_{name}_{}", std::process::id()))
}

#[test]
fn prints_report_for_a_corpus() {
    let dir = tmp("report");
    let _ = std::fs::remove_dir_all(&dir);
    write_corpus(&dir);
    let out = bin().arg(&dir).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SDchecker analysis"), "{stdout}");
    assert!(stdout.contains("applications: 1 (1 with complete scheduling-delay evidence)"));
    assert!(stdout.contains("total sched delay"));
    // total = 11000 - 100 = 10.9 s.
    assert!(stdout.contains("10.900"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn writes_csv_and_dot() {
    let dir = tmp("csvdot");
    let _ = std::fs::remove_dir_all(&dir);
    let app = write_corpus(&dir);
    let csv = dir.join("out.csv");
    let dot = dir.join("graph.dot");
    let out = bin()
        .arg(&dir)
        .args(["--csv", csv.to_str().unwrap()])
        .args(["--dot", &app.to_string(), dot.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("app,total_ms"));
    assert!(csv_text.contains("10900"), "{csv_text}");
    let dot_text = std::fs::read_to_string(&dot).unwrap();
    assert!(dot_text.starts_with("digraph"));
    assert!(dot_text.contains("TaskAssigned"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn threads_flag_is_byte_identical() {
    let dir = tmp("threads");
    let _ = std::fs::remove_dir_all(&dir);
    let app = write_corpus(&dir);
    let mut outputs = Vec::new();
    for threads in ["1", "4"] {
        let csv = dir.join(format!("out_{threads}.csv"));
        let out = bin()
            .arg(&dir)
            .args(["--threads", threads])
            .args(["--csv", csv.to_str().unwrap()])
            .args([
                "--dot",
                &app.to_string(),
                dir.join(format!("g_{threads}.dot")).to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push((
            out.stdout,
            std::fs::read(&csv).unwrap(),
            std::fs::read(dir.join(format!("g_{threads}.dot"))).unwrap(),
        ));
    }
    assert_eq!(
        outputs[0].0, outputs[1].0,
        "stdout differs between --threads 1 and 4"
    );
    assert_eq!(
        outputs[0].1, outputs[1].1,
        "csv differs between --threads 1 and 4"
    );
    assert_eq!(
        outputs[0].2, outputs[1].2,
        "dot differs between --threads 1 and 4"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Golden-file test: on a fixed two-app corpus at `--threads 1`, the
/// metrics JSON must be byte-for-byte stable. Refresh the committed file
/// with `UPDATE_GOLDEN=1 cargo test -p sdchecker --test cli` after an
/// intentional metric change.
#[test]
fn metrics_json_matches_golden() {
    let dir = tmp("golden");
    let _ = std::fs::remove_dir_all(&dir);
    write_two_app_corpus(&dir);
    let metrics = dir.join("metrics.json");
    let out = bin()
        .arg(&dir)
        .args(["--threads", "1", "--quiet"])
        .args(["--metrics-out", metrics.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = std::fs::read_to_string(&metrics).unwrap();

    // Structural checks first, so the test still explains itself when the
    // golden file is being regenerated.
    let doc = obs::json::parse(&got).expect("metrics must be valid JSON");
    let counters = doc.get("counters").unwrap();
    let counter = |key: &str| {
        counters
            .get(key)
            .unwrap_or_else(|| panic!("missing counter {key} in {got}"))
            .as_f64()
            .unwrap()
    };
    assert_eq!(counter("analyze_apps_total"), 2.0);
    // One schema-drift line in the RM log (ACCEPTED -> ZOMBIE).
    assert_eq!(
        counter("parse_lines_total{source=\"resourcemanager\",status=\"unmatched\"}"),
        1.0
    );
    assert_eq!(counter("extract_events_total{kind=\"AppSubmitted\"}"), 2.0);
    // sdchecker runs never touch the simulator, so no sim metrics (and in
    // particular no wall-clock-derived gauges) may leak into the export.
    assert!(!got.contains("sim_"), "{got}");

    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &got).unwrap();
    }
    let want = std::fs::read_to_string(&golden).expect("golden file missing; see test doc");
    assert_eq!(
        got, want,
        "metrics JSON drifted from tests/golden/metrics.json"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Golden-file test: the canonical `wide-events-v1` JSONL over the fixed
/// two-app corpus is byte-for-byte stable — the external contract of the
/// wide-event emitter. Refresh with `UPDATE_GOLDEN=1 cargo test -p
/// sdchecker --test cli` after an intentional change, and bump
/// `WIDE_EVENTS_SCHEMA` if the line shape changed.
#[test]
fn wide_events_jsonl_matches_golden() {
    let dir = tmp("wide_golden");
    let _ = std::fs::remove_dir_all(&dir);
    write_two_app_corpus(&dir);
    let events = dir.join("events.jsonl");
    let out = bin()
        .arg(&dir)
        .args(["--threads", "1", "--quiet"])
        .args(["--wide-events-out", events.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = std::fs::read_to_string(&events).unwrap();

    // Structural checks first: one line per application, each a complete
    // JSON object carrying the schema tag and every component key.
    assert_eq!(got.lines().count(), 2);
    for line in got.lines() {
        let doc = obs::json::parse(line).expect("each wide-event line must be valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("wide-events-v1"));
        assert!(doc.get("app").is_some(), "{line}");
        assert!(doc.get("retire_ms").is_some(), "{line}");
        let components = doc.get("components").unwrap();
        for key in ["total", "am", "out_app", "alloc", "job_runtime"] {
            assert!(components.get(key).is_some(), "missing {key} in {line}");
        }
        assert!(doc.get("blame").is_some(), "{line}");
    }

    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/wide_events.jsonl");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &got).unwrap();
    }
    let want = std::fs::read_to_string(&golden).expect("golden file missing; see test doc");
    assert_eq!(
        got, want,
        "wide events drifted from tests/golden/wide_events.jsonl"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Counter totals are pure functions of the corpus: the exported metrics
/// file must be byte-identical no matter how many worker threads ran.
/// (The `analyze_threads_requested`/`_effective` gauges record the thread
/// configuration itself, so those lines are stripped before comparing.)
#[test]
fn metrics_are_identical_across_thread_counts() {
    let dir = tmp("mthreads");
    let _ = std::fs::remove_dir_all(&dir);
    write_two_app_corpus(&dir);
    let strip_thread_gauges = |bytes: Vec<u8>| -> Vec<u8> {
        let text = String::from_utf8(bytes).unwrap();
        text.lines()
            .filter(|l| !l.contains("analyze_threads_"))
            .collect::<Vec<_>>()
            .join("\n")
            .into_bytes()
    };
    let mut files = Vec::new();
    for threads in ["1", "2", "4", "8"] {
        let metrics = dir.join(format!("metrics_{threads}.json"));
        let out = bin()
            .arg(&dir)
            .args(["--threads", threads, "--quiet"])
            .args(["--metrics-out", metrics.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        files.push((
            threads,
            strip_thread_gauges(std::fs::read(&metrics).unwrap()),
        ));
    }
    for (threads, bytes) in &files[1..] {
        assert_eq!(
            &files[0].1, bytes,
            "metrics differ between --threads 1 and --threads {threads}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The Chrome trace must be valid JSON with complete (`"X"`) events that
/// nest properly within each thread lane, plus thread-name metadata.
#[test]
fn chrome_trace_is_structurally_valid() {
    let dir = tmp("trace");
    let _ = std::fs::remove_dir_all(&dir);
    write_two_app_corpus(&dir);
    let trace = dir.join("trace.json");
    let out = bin()
        .arg(&dir)
        .args(["--threads", "1", "--quiet"])
        .args(["--trace-out", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = obs::json::parse(&text).expect("trace must be valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap().to_vec();

    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("M")
                && e.get("name").and_then(|n| n.as_str()) == Some("thread_name")
        }),
        "no thread_name metadata event"
    );

    // Collect complete events as (tid, name, start, end).
    let mut spans: Vec<(u64, String, u64, u64)> = Vec::new();
    for e in &events {
        if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let tid = e.get("tid").unwrap().as_f64().unwrap() as u64;
        let name = e.get("name").unwrap().as_str().unwrap().to_string();
        let ts = e.get("ts").unwrap().as_f64().unwrap() as u64;
        let dur = e.get("dur").unwrap().as_f64().unwrap() as u64;
        spans.push((tid, name, ts, ts + dur));
    }
    for stage in ["ingest", "extract", "analyze", "graph_build", "decompose"] {
        assert!(
            spans.iter().any(|(_, n, _, _)| n == stage),
            "missing {stage} span; have: {:?}",
            spans.iter().map(|(_, n, _, _)| n).collect::<Vec<_>>()
        );
    }
    // Within a thread lane, any two spans must be nested or disjoint —
    // partially overlapping intervals would render as a corrupt flame.
    for (i, a) in spans.iter().enumerate() {
        for b in &spans[i + 1..] {
            if a.0 != b.0 {
                continue;
            }
            let disjoint = a.3 <= b.2 || b.3 <= a.2;
            let nested = (a.2 <= b.2 && b.3 <= a.3) || (b.2 <= a.2 && a.3 <= b.3);
            assert!(
                disjoint || nested,
                "spans {:?} and {:?} partially overlap on tid {}",
                a,
                b,
                a.0
            );
        }
    }
    // The extract stage must sit inside the analyze span on its thread.
    let analyze = spans.iter().find(|(_, n, _, _)| n == "analyze").unwrap();
    let extract = spans.iter().find(|(_, n, _, _)| n == "extract").unwrap();
    assert_eq!(analyze.0, extract.0, "analyze/extract on different threads");
    assert!(
        analyze.2 <= extract.2 && extract.3 <= analyze.3,
        "extract span not nested inside analyze"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `.prom`/`.txt` metrics paths switch the export to Prometheus text.
#[test]
fn prom_extension_selects_prometheus_text() {
    let dir = tmp("prom");
    let _ = std::fs::remove_dir_all(&dir);
    write_corpus(&dir);
    let metrics = dir.join("metrics.prom");
    let out = bin()
        .arg(&dir)
        .args(["--threads", "1", "--quiet"])
        .args(["--metrics-out", metrics.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("# TYPE analyze_apps_total counter"), "{text}");
    assert!(text.contains("analyze_apps_total 1"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Every report ends with the per-source parse-coverage summary, and
/// unmatched scheduling-relevant lines raise a drift warning.
#[test]
fn report_includes_parse_coverage_and_drift_warning() {
    let dir = tmp("coverage");
    let _ = std::fs::remove_dir_all(&dir);
    write_two_app_corpus(&dir);
    let out = bin().arg(&dir).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Parse coverage (matched/unmatched/ignored):"),
        "{stdout}"
    );
    assert!(
        stdout.contains("coverage warning: resourcemanager"),
        "{stdout}"
    );

    // The clean single-app corpus must not warn.
    let clean = tmp("coverage_clean");
    let _ = std::fs::remove_dir_all(&clean);
    write_corpus(&clean);
    let out = bin().arg(&clean).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Parse coverage"), "{stdout}");
    assert!(!stdout.contains("coverage warning"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&clean).unwrap();
}

/// `--quiet` silences the informational stderr lines but not the report.
#[test]
fn quiet_suppresses_info_lines() {
    let dir = tmp("quiet");
    let _ = std::fs::remove_dir_all(&dir);
    write_corpus(&dir);
    let csv = dir.join("out.csv");
    let loud = bin()
        .arg(&dir)
        .args(["--csv", csv.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(loud.status.success());
    assert!(String::from_utf8_lossy(&loud.stderr).contains("wrote per-application CSV"));

    let quiet = bin()
        .arg(&dir)
        .args(["--csv", csv.to_str().unwrap(), "--quiet"])
        .output()
        .unwrap();
    assert!(quiet.status.success());
    assert!(
        quiet.stderr.is_empty(),
        "--quiet left stderr output: {}",
        String::from_utf8_lossy(&quiet.stderr)
    );
    assert_eq!(loud.stdout, quiet.stdout, "--quiet must not change stdout");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn help_exits_zero() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: sdchecker"));
}

#[test]
fn rejects_bad_usage() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["dir", "--bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["dir", "--dot", "not-an-app-id", "x.dot"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["dir", "--threads", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["dir", "--threads", "many"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // A flag where the log directory should be.
    let out = bin().args(["--quiet"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Observability flags with missing values.
    let out = bin().args(["dir", "--trace-out"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["dir", "--metrics-out"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["dir", "--app-trace-out"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["dir", "--report-json"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// Golden-file test: on the fixed two-app corpus, `--report-json` must be
/// byte-for-byte stable (it is consumed by scripts and diffed in CI).
/// Refresh with `UPDATE_GOLDEN=1 cargo test -p sdchecker --test cli` after
/// an intentional schema change.
#[test]
fn report_json_matches_golden() {
    let dir = tmp("report_json");
    let _ = std::fs::remove_dir_all(&dir);
    write_two_app_corpus(&dir);
    let report = dir.join("report.json");
    let out = bin()
        .arg(&dir)
        .args(["--threads", "1", "--quiet"])
        .args(["--report-json", report.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = std::fs::read_to_string(&report).unwrap();

    // Structural checks first, so failures explain themselves even while
    // the golden file is being regenerated.
    let doc = obs::json::parse(&got).expect("report must be valid JSON");
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("sdchecker-report-v1")
    );
    let apps = doc.get("applications").unwrap().as_arr().unwrap().to_vec();
    assert_eq!(apps.len(), 2);
    // App 1 is complete: known end-to-end delay, and the critical path's
    // segment durations must sum to it exactly.
    let complete = apps
        .iter()
        .find(|a| {
            a.get("critical_path")
                .and_then(|c| c.get("segments"))
                .is_some()
        })
        .expect("one app with a critical path");
    let delays = complete.get("delays").unwrap();
    assert_eq!(delays.get("total_ms").unwrap().as_f64(), Some(10_900.0));
    let crit = complete.get("critical_path").unwrap();
    assert_eq!(crit.get("total_ms").unwrap().as_f64(), Some(10_900.0));
    let segs = crit.get("segments").unwrap().as_arr().unwrap();
    let sum: f64 = segs
        .iter()
        .map(|s| s.get("dur_ms").unwrap().as_f64().unwrap())
        .sum();
    assert_eq!(sum, 10_900.0, "critical path must tile the total delay");
    // Fleet sketches cover the same population.
    let fleet = doc.get("fleet").unwrap();
    assert_eq!(fleet.get("applications").unwrap().as_f64(), Some(2.0));
    let total = fleet
        .get("app_components_ms")
        .unwrap()
        .get("total")
        .unwrap();
    assert_eq!(total.get("count").unwrap().as_f64(), Some(1.0));

    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &got).unwrap();
    }
    let want = std::fs::read_to_string(&golden).expect("golden file missing; see test doc");
    assert_eq!(
        got, want,
        "report JSON drifted from tests/golden/report.json"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The app-time trace must be valid JSON whose complete events nest
/// properly within every (pid, tid) lane, carry sim-time timestamps, and
/// include per-process metadata naming each application.
#[test]
fn app_trace_is_structurally_valid() {
    let dir = tmp("apptrace");
    let _ = std::fs::remove_dir_all(&dir);
    write_two_app_corpus(&dir);
    let trace = dir.join("apptrace.json");
    let out = bin()
        .arg(&dir)
        .args(["--threads", "1", "--quiet"])
        .args(["--app-trace-out", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = obs::json::parse(&text).expect("app trace must be valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap().to_vec();

    // One process per application, named after it.
    let process_names: Vec<String> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_string))
        .collect();
    assert_eq!(process_names.len(), 2, "{process_names:?}");
    assert!(process_names.iter().all(|n| n.contains("application_")));

    // Collect complete events as (pid, tid, name, start, end).
    let mut spans: Vec<(u64, u64, String, u64, u64)> = Vec::new();
    for e in &events {
        if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let pid = e.get("pid").unwrap().as_f64().unwrap() as u64;
        let tid = e.get("tid").unwrap().as_f64().unwrap() as u64;
        let name = e.get("name").unwrap().as_str().unwrap().to_string();
        let ts = e.get("ts").unwrap().as_f64().unwrap() as u64;
        let dur = e.get("dur").unwrap().as_f64().unwrap() as u64;
        spans.push((pid, tid, name, ts, ts + dur));
    }
    // App 1 submitted at 100 ms log time → 100_000 µs in the trace.
    let total = spans
        .iter()
        .find(|(_, _, n, _, _)| n == "total_scheduling_delay")
        .expect("total_scheduling_delay slice");
    assert_eq!(total.3, 100_000, "trace must use log time, not wall time");
    assert_eq!(total.4 - total.3, 10_900_000);

    // Within each (pid, tid) lane, slices must be nested or disjoint.
    for (i, a) in spans.iter().enumerate() {
        for b in &spans[i + 1..] {
            if (a.0, a.1) != (b.0, b.1) {
                continue;
            }
            let disjoint = a.4 <= b.3 || b.4 <= a.3;
            let nested = (a.3 <= b.3 && b.4 <= a.4) || (b.3 <= a.3 && a.4 <= b.4);
            assert!(
                disjoint || nested,
                "slices {a:?} and {b:?} partially overlap in lane ({}, {})",
                a.0,
                a.1
            );
        }
    }

    // The critical-path lane (tid 3 in every process) tiles the full
    // delay and is linked by flow arrows.
    let crit: Vec<_> = spans
        .iter()
        .filter(|(pid, tid, _, _, _)| *pid == 1 && *tid == 3)
        .collect();
    assert!(!crit.is_empty(), "no critical-path slices");
    let crit_sum: u64 = crit.iter().map(|(_, _, _, s, e)| e - s).sum();
    assert_eq!(crit_sum, 10_900_000, "critical lane must tile the delay");
    let flow_starts = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s"))
        .count();
    let flow_ends = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("f"))
        .count();
    assert_eq!(flow_starts, flow_ends);
    assert!(flow_starts > 0, "critical path must be linked by flows");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fails_cleanly_on_missing_dir() {
    let out = bin()
        .arg("/nonexistent/definitely/missing")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed to read logs"));
}
