//! End-to-end tests of the `sdchecker` CLI binary over a hand-assembled
//! log corpus (the tool's real-world entry point).

use std::path::PathBuf;
use std::process::Command;

use logmodel::{ApplicationId, Epoch, LogSource, LogStore, NodeId, TsMs};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sdchecker"))
}

/// A complete single-app corpus with known delays.
fn write_corpus(dir: &std::path::Path) -> ApplicationId {
    let epoch = Epoch::default_run();
    let mut s = LogStore::new(epoch);
    let a = ApplicationId::new(epoch.unix_ms, 1);
    let am = a.attempt(1).container(1);
    let ex = a.attempt(1).container(2);
    let rm = LogSource::ResourceManager;
    let nm = LogSource::NodeManager(NodeId(2));
    s.info(
        rm,
        TsMs(100),
        "RMAppImpl",
        format!("{a} State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"),
    );
    s.info(
        rm,
        TsMs(120),
        "RMAppImpl",
        format!("{a} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"),
    );
    s.info(
        rm,
        TsMs(150),
        "RMContainerImpl",
        format!("{am} Container Transitioned from NEW to ALLOCATED"),
    );
    s.info(
        rm,
        TsMs(151),
        "RMContainerImpl",
        format!("{am} Container Transitioned from ALLOCATED to ACQUIRED"),
    );
    s.info(
        nm,
        TsMs(160),
        "ContainerImpl",
        format!("Container {am} transitioned from NEW to LOCALIZING"),
    );
    s.info(
        nm,
        TsMs(700),
        "ContainerImpl",
        format!("Container {am} transitioned from LOCALIZING to SCHEDULED"),
    );
    s.info(
        nm,
        TsMs(705),
        "ContainerImpl",
        format!("Container {am} transitioned from SCHEDULED to RUNNING"),
    );
    s.info(
        LogSource::Driver(a),
        TsMs(1400),
        "ApplicationMaster",
        "Starting ApplicationMaster",
    );
    s.info(
        LogSource::Driver(a),
        TsMs(4400),
        "ApplicationMaster",
        "Registered with ResourceManager",
    );
    s.info(
        rm,
        TsMs(4400),
        "RMAppImpl",
        format!("{a} State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"),
    );
    s.info(
        LogSource::Driver(a),
        TsMs(4401),
        "YarnAllocator",
        "START_ALLO Requesting 1 executor containers",
    );
    s.info(
        rm,
        TsMs(4500),
        "RMContainerImpl",
        format!("{ex} Container Transitioned from NEW to ALLOCATED"),
    );
    s.info(
        rm,
        TsMs(5400),
        "RMContainerImpl",
        format!("{ex} Container Transitioned from ALLOCATED to ACQUIRED"),
    );
    s.info(
        LogSource::Driver(a),
        TsMs(5400),
        "YarnAllocator",
        "END_ALLO All requested executor containers allocated",
    );
    s.info(
        nm,
        TsMs(5420),
        "ContainerImpl",
        format!("Container {ex} transitioned from NEW to LOCALIZING"),
    );
    s.info(
        nm,
        TsMs(5920),
        "ContainerImpl",
        format!("Container {ex} transitioned from LOCALIZING to SCHEDULED"),
    );
    s.info(
        nm,
        TsMs(5925),
        "ContainerImpl",
        format!("Container {ex} transitioned from SCHEDULED to RUNNING"),
    );
    s.info(
        LogSource::Executor(ex),
        TsMs(6625),
        "CoarseGrainedExecutorBackend",
        "Started executor",
    );
    s.info(
        LogSource::Executor(ex),
        TsMs(11_000),
        "Executor",
        "Got assigned task 0 in stage 0.0 (TID 0)",
    );
    s.info(
        rm,
        TsMs(40_100),
        "RMAppImpl",
        format!("{a} State change from RUNNING to FINAL_SAVING on event = ATTEMPT_UNREGISTERED"),
    );
    s.write_dir(dir).unwrap();
    a
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sdchecker_clitest_{name}_{}", std::process::id()))
}

#[test]
fn prints_report_for_a_corpus() {
    let dir = tmp("report");
    let _ = std::fs::remove_dir_all(&dir);
    write_corpus(&dir);
    let out = bin().arg(&dir).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SDchecker analysis"), "{stdout}");
    assert!(stdout.contains("applications: 1 (1 with complete scheduling-delay evidence)"));
    assert!(stdout.contains("total sched delay"));
    // total = 11000 - 100 = 10.9 s.
    assert!(stdout.contains("10.900"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn writes_csv_and_dot() {
    let dir = tmp("csvdot");
    let _ = std::fs::remove_dir_all(&dir);
    let app = write_corpus(&dir);
    let csv = dir.join("out.csv");
    let dot = dir.join("graph.dot");
    let out = bin()
        .arg(&dir)
        .args(["--csv", csv.to_str().unwrap()])
        .args(["--dot", &app.to_string(), dot.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("app,total_ms"));
    assert!(csv_text.contains("10900"), "{csv_text}");
    let dot_text = std::fs::read_to_string(&dot).unwrap();
    assert!(dot_text.starts_with("digraph"));
    assert!(dot_text.contains("TaskAssigned"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn threads_flag_is_byte_identical() {
    let dir = tmp("threads");
    let _ = std::fs::remove_dir_all(&dir);
    let app = write_corpus(&dir);
    let mut outputs = Vec::new();
    for threads in ["1", "4"] {
        let csv = dir.join(format!("out_{threads}.csv"));
        let out = bin()
            .arg(&dir)
            .args(["--threads", threads])
            .args(["--csv", csv.to_str().unwrap()])
            .args([
                "--dot",
                &app.to_string(),
                dir.join(format!("g_{threads}.dot")).to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push((
            out.stdout,
            std::fs::read(&csv).unwrap(),
            std::fs::read(dir.join(format!("g_{threads}.dot"))).unwrap(),
        ));
    }
    assert_eq!(
        outputs[0].0, outputs[1].0,
        "stdout differs between --threads 1 and 4"
    );
    assert_eq!(
        outputs[0].1, outputs[1].1,
        "csv differs between --threads 1 and 4"
    );
    assert_eq!(
        outputs[0].2, outputs[1].2,
        "dot differs between --threads 1 and 4"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rejects_bad_usage() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["dir", "--bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["dir", "--dot", "not-an-app-id", "x.dot"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["dir", "--threads", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["dir", "--threads", "many"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn fails_cleanly_on_missing_dir() {
    let out = bin()
        .arg("/nonexistent/definitely/missing")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed to read logs"));
}
