//! Crash-only acceptance: SIGKILL the real `sdcheckerd` binary at random
//! points of a live streaming run — including mid-checkpoint and with
//! scripted checkpoint corruption — restart it, and require the final
//! report, the wide-events JSONL and the alert transition log to come out
//! **byte-identical** to a run that was never killed.
//!
//! The corpus is streamed in global timestamp order (the arrival order a
//! real cluster produces), so with a settle window every retirement, wide
//! line and alert tick is a pure function of the corpus — only the
//! report's `"polls"` count depends on wall-clock cadence and is
//! normalized before comparison.

mod common;

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use logmodel::{Epoch, LogStore};
use simkit::SimRng;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sdcheckerd"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sdcheckerd_chaos_{name}_{}", std::process::id()))
}

/// Kill the daemon if a test panics before shutting it down.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// One blocking HTTP/1.1 GET. Returns (status, body).
fn http_get(addr: &str, path: &str) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("no header/body separator");
    let head = String::from_utf8_lossy(&raw[..split]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("no status code")
        .parse()
        .unwrap();
    (status, raw[split + 4..].to_vec())
}

/// Poll `f` until it returns `Some`, failing after ~10 s.
fn wait_for<T>(what: &str, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn get_json(addr: &str, path: &str) -> obs::json::Json {
    let (status, body) = http_get(addr, path);
    assert_eq!(status, 200, "{path}");
    obs::json::parse(&String::from_utf8_lossy(&body)).unwrap()
}

/// The directory layout of one daemon run: logs to watch, a checkpoint
/// directory, and the three output files the byte-equality check covers.
struct Layout {
    base: PathBuf,
    logs: PathBuf,
    ckpt: PathBuf,
    port: PathBuf,
    final_json: PathBuf,
    wide: PathBuf,
    alerts: PathBuf,
}

impl Layout {
    fn new(name: &str) -> Layout {
        let base = tmp(name);
        let _ = fs::remove_dir_all(&base);
        let logs = base.join("logs");
        fs::create_dir_all(&logs).unwrap();
        Layout {
            logs,
            ckpt: base.join("ckpt"),
            port: base.join("port.txt"),
            final_json: base.join("final.json"),
            wide: base.join("wide.jsonl"),
            alerts: base.join("alerts.json"),
            base,
        }
    }
}

fn spawn(l: &Layout) -> (Daemon, String) {
    let _ = fs::remove_file(&l.port);
    let child = bin()
        .arg(&l.logs)
        .args(["--listen", "127.0.0.1:0", "--poll-ms", "25", "--quiet"])
        .args(["--port-file", l.port.to_str().unwrap()])
        .args(["--settle-ms", "1000", "--idle-timeout-ms", "0"])
        .args(["--slo-ms", "1"])
        .args(["--checkpoint-dir", l.ckpt.to_str().unwrap()])
        .args(["--checkpoint-interval-ms", "25"])
        .args(["--wide-events-out", l.wide.to_str().unwrap()])
        .args(["--alerts-out", l.alerts.to_str().unwrap()])
        .args(["--final-report", l.final_json.to_str().unwrap()])
        .stdin(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let daemon = Daemon(child);
    let addr = wait_for("port file", || {
        fs::read_to_string(&l.port)
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
    });
    wait_for("readyz", || {
        let (status, _) = http_get(&addr, "/readyz");
        (status == 200).then_some(())
    });
    (daemon, addr)
}

/// The corpus as the cluster would emit it: every rendered line tagged
/// with its target file, merged across sources in global timestamp order
/// (per-source order preserved).
fn merged_lines(l: &Layout) -> Vec<(PathBuf, String)> {
    let mut logs = LogStore::new(Epoch::default_run());
    common::populate_faulty_fleet(&mut logs);
    fs::write(
        l.logs.join("epoch.txt"),
        format!("{}\n", logs.epoch().unix_ms),
    )
    .unwrap();
    struct Stream {
        path: PathBuf,
        lines: Vec<(u64, String)>,
        pos: usize,
    }
    let mut streams: Vec<Stream> = logs
        .sources()
        .map(|src| {
            let path = l.logs.join(src.rel_path());
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(&path, b"").unwrap();
            let lines: Vec<(u64, String)> = logs
                .records(src)
                .iter()
                .zip(logs.render_source(src).lines())
                .map(|(rec, line)| (rec.ts.0, line.to_string()))
                .collect();
            assert_eq!(lines.len(), logs.records(src).len());
            Stream {
                path,
                lines,
                pos: 0,
            }
        })
        .collect();
    let mut merged = Vec::new();
    loop {
        let next = streams
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.lines.get(s.pos).map(|(ts, _)| (*ts, i)))
            .min();
        let Some((_, i)) = next else { break };
        let s = &mut streams[i];
        merged.push((s.path.clone(), s.lines[s.pos].1.clone()));
        s.pos += 1;
    }
    merged
}

fn append(path: &Path, bytes: &[u8]) {
    let mut f = fs::OpenOptions::new().append(true).open(path).unwrap();
    f.write_all(bytes).unwrap();
}

/// What to do to the checkpoint directory while the daemon is dead.
#[derive(Clone, Copy, PartialEq)]
enum Corruption {
    /// Leave the files exactly as the SIGKILL left them.
    None,
    /// Torn write: chop the current generation mid-file.
    Torn,
    /// Stale garbage where the current generation should be.
    Garbage,
}

fn kill_and_restart(
    l: &Layout,
    daemon: &mut Daemon,
    addr: &mut String,
    rng: &mut SimRng,
    corruption: Corruption,
    restarts_so_far: u64,
) {
    // Make sure a previous generation exists before we sabotage the
    // current one, then kill at a random offset into the poll/checkpoint
    // cadence so some kills land mid-write.
    wait_for("two checkpoint generations", || {
        let doc = get_json(addr, "/checkpointz");
        (doc.get("writes_total").unwrap().as_f64().unwrap() >= 2.0).then_some(())
    });
    std::thread::sleep(Duration::from_millis(rng.below(40)));
    daemon.0.kill().unwrap();
    daemon.0.wait().unwrap();

    let current = l.ckpt.join("checkpoint-v1");
    match corruption {
        Corruption::None => {}
        Corruption::Torn => {
            // The SIGKILL may itself have landed between the two renames
            // of the write protocol, leaving no current generation at all
            // — that is the same fall-back-to-previous scenario this
            // branch seeds, so only truncate when the file exists.
            if let Ok(bytes) = fs::read(&current) {
                fs::write(&current, &bytes[..bytes.len() * 3 / 5]).unwrap();
            }
        }
        Corruption::Garbage => {
            fs::write(&current, b"not a checkpoint at all\n").unwrap();
        }
    }

    let (fresh, fresh_addr) = spawn(l);
    *daemon = fresh;
    *addr = fresh_addr;
    let doc = get_json(addr, "/checkpointz");
    assert_eq!(doc.get("resumed"), Some(&obs::json::Json::Bool(true)));
    assert_eq!(
        doc.get("recoveries_total").unwrap().as_f64(),
        Some((restarts_so_far + 1) as f64),
        "every restart must count"
    );
    if corruption != Corruption::None {
        // The damaged current generation must have been skipped (with a
        // warning, not a panic) in favor of the previous one.
        assert_eq!(
            doc.get("generation").unwrap().as_str(),
            Some("previous"),
            "damaged current generation must fall back"
        );
    }
}

/// Stream the corpus into the watch directory in seeded bursts,
/// SIGKILL-ing and restarting the daemon at the pre-drawn kill points.
/// Returns the three output files after a clean SIGTERM.
fn run(l: &Layout, seed: u64, corruption: Corruption) -> (String, String, String) {
    let lines = merged_lines(l);
    let mut rng = SimRng::new(0xDEADu64.wrapping_add(seed));
    // Two kill points somewhere in the middle three-fifths of the stream.
    let kills: Vec<usize> = if corruption == Corruption::None && seed == u64::MAX {
        Vec::new() // baseline: never killed
    } else {
        let lo = lines.len() / 5;
        let hi = lines.len() * 4 / 5;
        let a = lo + rng.below((hi - lo) as u64) as usize;
        let b = lo + rng.below((hi - lo) as u64) as usize;
        let mut v = vec![a.min(b), a.max(b).max(a.min(b) + 1)];
        v.dedup();
        v
    };

    let (mut daemon, mut addr) = spawn(l);
    let mut restarts = 0u64;
    for (i, (path, line)) in lines.iter().enumerate() {
        if kills.contains(&i) {
            // Only the first kill of a corruption run damages the store;
            // the second exercises the repaired current generation.
            let c = if restarts == 0 {
                corruption
            } else {
                Corruption::None
            };
            kill_and_restart(l, &mut daemon, &mut addr, &mut rng, c, restarts);
            restarts += 1;
        }
        if rng.below(6) == 0 && line.len() > 2 {
            // Occasionally deliver a line torn in half so held-back
            // partial bytes are part of the checkpointed state.
            let cut = 1 + rng.below(line.len() as u64 - 1) as usize;
            append(path, line.as_bytes()[..cut].as_ref());
            std::thread::sleep(Duration::from_millis(5));
            append(path, line.as_bytes()[cut..].as_ref());
            append(path, b"\n");
        } else {
            append(path, format!("{line}\n").as_bytes());
        }
        if rng.below(3) == 0 {
            std::thread::sleep(Duration::from_millis(rng.below(12)));
        }
    }
    assert_eq!(restarts as usize, kills.len());

    // Quiesce: two apps retire on log-time evidence, the truncated third
    // stays in flight until the SIGTERM drain.
    wait_for("stream fully consumed", || {
        let doc = get_json(&addr, "/healthz");
        let n = |k: &str| doc.get(k).unwrap().as_f64().unwrap();
        (n("retired") == 2.0 && n("in_flight") == 1.0 && n("lag_bytes") == 0.0).then_some(())
    });
    if restarts > 0 {
        let (_, body) = http_get(&addr, "/metrics");
        let text = String::from_utf8_lossy(&body).into_owned();
        let line = text
            .lines()
            .find(|ln| ln.starts_with("sd_checkpoint_recoveries_total "))
            .expect("recoveries counter exported");
        assert_eq!(line, format!("sd_checkpoint_recoveries_total {restarts}"));
    }

    let pid = daemon.0.id().to_string();
    Command::new("kill").args(["-TERM", &pid]).status().unwrap();
    let status = daemon.0.wait().unwrap();
    assert!(status.success(), "clean shutdown after {restarts} restarts");

    (
        fs::read_to_string(&l.final_json).unwrap(),
        fs::read_to_string(&l.wide).unwrap(),
        fs::read_to_string(&l.alerts).unwrap(),
    )
}

/// Blank out the one wall-clock-cadence field in the report: the tail
/// section's poll count.
fn normalize_polls(report: &str) -> String {
    let key = "\"polls\": ";
    let Some(at) = report.find(key) else {
        panic!("report has no polls field");
    };
    let digits = report[at + key.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .count();
    assert!(digits > 0);
    let mut out = report[..at + key.len()].to_string();
    out.push('N');
    out.push_str(&report[at + key.len() + digits..]);
    out
}

#[test]
fn killed_and_restarted_run_matches_uninterrupted_run_byte_for_byte() {
    let gold_layout = Layout::new("gold");
    let (gold_report, gold_wide, gold_alerts) = run(&gold_layout, u64::MAX, Corruption::None);
    let gold_report = normalize_polls(&gold_report);

    // Exactly-once retirement in the gold run itself: three apps, three
    // wide lines, no duplicates.
    let lines: Vec<&str> = gold_wide.lines().collect();
    assert_eq!(lines.len(), 3);
    let mut dedup = lines.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), 3, "duplicate wide events");

    for seed in 0u64..5 {
        let corruption = match seed {
            1 => Corruption::Torn,
            3 => Corruption::Garbage,
            _ => Corruption::None,
        };
        let l = Layout::new(&format!("seed{seed}"));
        let (report, wide, alerts) = run(&l, seed, corruption);
        assert_eq!(
            normalize_polls(&report),
            gold_report,
            "seed {seed}: final report differs from the never-killed run"
        );
        assert_eq!(
            wide, gold_wide,
            "seed {seed}: wide events lost, duplicated or reordered"
        );
        assert_eq!(
            alerts, gold_alerts,
            "seed {seed}: alert transition log differs"
        );
        let _ = fs::remove_dir_all(&l.base);
    }
    let _ = fs::remove_dir_all(&gold_layout.base);
}

#[test]
fn resume_flag_requires_a_checkpoint_dir() {
    let out = bin()
        .arg(std::env::temp_dir())
        .args(["--resume"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--resume requires --checkpoint-dir"), "{err}");
}
