//! Seeded property tests for the declarative pattern table: for every
//! shape-based rule in [`sdchecker::schema`], rendering captures into
//! the template and matching the result back out recovers exactly the
//! same captures — including leading/trailing-capture and empty-capture
//! edges. Deterministic (in-repo RNG, fixed seeds), no external deps.

use sdchecker::pattern::Pat;
use sdchecker::schema::{patterns, MatchKind};
use simkit::SimRng;

const CASES: u64 = 200;

/// Capture-safe alphabet: none of these characters can extend a literal
/// segment of any table template, so non-greedy matching cannot stop
/// early or late.
fn capture(rng: &mut SimRng, allow_empty: bool) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    let lo = u64::from(!allow_empty);
    let len = rng.range(lo, 13);
    (0..len)
        .map(|_| ALPHABET[rng.index(ALPHABET.len())] as char)
        .collect()
}

/// Every template in the table round-trips `render ⇒ match ⇒ captures`
/// under random capture values.
#[test]
fn table_templates_round_trip() {
    for spec in patterns() {
        let MatchKind::Template(template) = spec.kind else {
            continue;
        };
        let pat = Pat::new(template).expect("table template must compile");
        for case in 0..CASES {
            let mut rng = SimRng::new(0xA11C_0000 + case).fork_named(spec.name);
            let caps: Vec<String> = (0..pat.captures())
                .map(|_| capture(&mut rng, false))
                .collect();
            let refs: Vec<&str> = caps.iter().map(String::as_str).collect();
            let text = pat.render(&refs).expect("arity matches by construction");
            let got = pat.match_str(&text);
            assert_eq!(
                got,
                Some(refs.clone()),
                "rule {} case {case}: {text:?}",
                spec.name
            );
        }
    }
}

/// Empty captures round-trip too: a hole filled with `""` still matches
/// and recovers the empty string (relevant to leading/trailing holes,
/// where the anchor is the text boundary itself).
#[test]
fn table_templates_round_trip_empty_captures() {
    for spec in patterns() {
        let MatchKind::Template(template) = spec.kind else {
            continue;
        };
        let pat = Pat::new(template).expect("table template must compile");
        for case in 0..CASES {
            let mut rng = SimRng::new(0xA11C_1000 + case).fork_named(spec.name);
            // Each capture is independently empty with probability 1/2.
            let caps: Vec<String> = (0..pat.captures())
                .map(|_| {
                    if rng.range(0, 2) == 0 {
                        String::new()
                    } else {
                        capture(&mut rng, false)
                    }
                })
                .collect();
            let refs: Vec<&str> = caps.iter().map(String::as_str).collect();
            let text = pat.render(&refs).expect("arity matches by construction");
            let got = pat.match_str(&text);
            assert_eq!(
                got,
                Some(refs.clone()),
                "rule {} case {case}: {text:?}",
                spec.name
            );
        }
    }
}

/// The leading/trailing edge in isolation: synthetic patterns with holes
/// hugging both ends behave identically to interior holes.
#[test]
fn leading_and_trailing_capture_round_trip() {
    let edge_patterns = ["{} tail", "head {}", "{} mid {}", "{}", "{} a {} b {}"];
    for (pi, pattern) in edge_patterns.iter().enumerate() {
        let pat = Pat::new(pattern).unwrap();
        for case in 0..CASES {
            let mut rng = SimRng::new(0xA11C_2000 + case + ((pi as u64) << 8));
            let caps: Vec<String> = (0..pat.captures())
                .map(|_| capture(&mut rng, true))
                .collect();
            let refs: Vec<&str> = caps.iter().map(String::as_str).collect();
            let text = pat.render(&refs).expect("arity matches by construction");
            assert_eq!(
                pat.match_str(&text),
                Some(refs.clone()),
                "pattern {pattern:?} case {case}: {text:?}"
            );
        }
    }
}

/// Sanity: the table's prefix rules fire on their own prefix text and
/// match what the emitters actually write.
#[test]
fn prefix_rules_fire_on_their_prefixes() {
    for spec in patterns() {
        let MatchKind::Prefix(prefix) = spec.kind else {
            continue;
        };
        assert!(
            spec.matches(spec.family, spec.class.unwrap_or("AnyClass"), prefix),
            "rule {} must match its own prefix",
            spec.name
        );
    }
}
