//! The parallel pipeline's central property: for arbitrary generated log
//! corpora, analysis with `threads ∈ {2, 4, 8}` produces exactly the
//! `threads = 1` result — events order, graphs, delays, unused containers,
//! and app names. Randomized as seeded loops over `simkit::SimRng`.

use logmodel::{ApplicationId, Epoch, LogSource, LogStore, NodeId, TsMs};
use sdchecker::{analyze_store, analyze_store_with, Analysis, Parallelism};
use simkit::SimRng;

/// Generate a random but plausible corpus: `napps` applications spread
/// over `nnodes` NodeManagers, each with a random container count, random
/// (and frequently colliding) timestamps, banner lines, and noise records.
fn random_corpus(rng: &mut SimRng) -> LogStore {
    let epoch = Epoch::default_run();
    let mut s = LogStore::new(epoch);
    let cts = epoch.unix_ms;
    let napps = rng.range(1, 13) as u32;
    let nnodes = rng.range(1, 9) as u32;
    let rm = LogSource::ResourceManager;
    for seq in 1..=napps {
        let a = ApplicationId::new(cts, seq);
        // Coarse timestamps so ties across apps and streams are common —
        // the case the k-way merge tie-break must get right.
        let base = rng.below(50) * 100;
        let t = |rng: &mut SimRng, lo: u64, hi: u64| TsMs(base + rng.range(lo, hi) / 10 * 10);
        s.info(
            rm,
            t(rng, 1, 200),
            "RMAppImpl",
            format!("{a} State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"),
        );
        if rng.chance(0.9) {
            s.info(
                rm,
                t(rng, 100, 400),
                "RMAppImpl",
                format!("{a} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"),
            );
        }
        if rng.chance(0.3) {
            s.info(
                rm,
                t(rng, 1, 500),
                "CapacityScheduler",
                "Re-sorting assigned queue",
            );
        }
        let ncontainers = rng.range(1, 7);
        for c in 1..=ncontainers {
            let cid = a.attempt(1).container(c);
            let node = NodeId(rng.below(nnodes as u64) as u32 + 1);
            let nm = LogSource::NodeManager(node);
            s.info(
                rm,
                t(rng, 200, 900),
                "RMContainerImpl",
                format!("{cid} Container Transitioned from NEW to ALLOCATED"),
            );
            if rng.chance(0.85) {
                s.info(
                    rm,
                    t(rng, 300, 1200),
                    "RMContainerImpl",
                    format!("{cid} Container Transitioned from ALLOCATED to ACQUIRED"),
                );
                s.info(
                    nm,
                    t(rng, 400, 1400),
                    "ContainerImpl",
                    format!("Container {cid} transitioned from NEW to LOCALIZING"),
                );
                s.info(
                    nm,
                    t(rng, 500, 2200),
                    "ContainerImpl",
                    format!("Container {cid} transitioned from LOCALIZING to SCHEDULED"),
                );
                s.info(
                    nm,
                    t(rng, 600, 2600),
                    "ContainerImpl",
                    format!("Container {cid} transitioned from SCHEDULED to RUNNING"),
                );
                if c > 1 && rng.chance(0.8) {
                    let exl = LogSource::Executor(cid);
                    s.info(
                        exl,
                        t(rng, 700, 3000),
                        "CoarseGrainedExecutorBackend",
                        "Started executor",
                    );
                    if rng.chance(0.8) {
                        s.info(
                            exl,
                            t(rng, 800, 4000),
                            "Executor",
                            format!("Got assigned task 0 in stage 0.0 (TID {c})"),
                        );
                    }
                }
            }
        }
        if rng.chance(0.9) {
            let drv = LogSource::Driver(a);
            if rng.chance(0.7) {
                s.info(
                    drv,
                    t(rng, 300, 1500),
                    "ApplicationMaster",
                    format!("Starting ApplicationMaster for tpch-q{seq:02}"),
                );
            }
            s.info(
                drv,
                t(rng, 400, 2000),
                "ApplicationMaster",
                "Registered with ResourceManager as attempt",
            );
            s.info(
                rm,
                t(rng, 400, 2000),
                "RMAppImpl",
                format!("{a} State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"),
            );
            s.info(
                drv,
                t(rng, 450, 2100),
                "YarnAllocator",
                format!("START_ALLO Requesting {ncontainers} executor containers"),
            );
            if rng.chance(0.8) {
                s.info(
                    drv,
                    t(rng, 500, 3000),
                    "YarnAllocator",
                    "END_ALLO All requested executor containers allocated",
                );
            }
        }
        if rng.chance(0.7) {
            s.info(
                rm,
                t(rng, 3000, 9000),
                "RMAppImpl",
                format!(
                    "{a} State change from RUNNING to FINAL_SAVING on event = ATTEMPT_UNREGISTERED"
                ),
            );
        }
    }
    s
}

/// Every observable field of the two analyses must agree. Graphs, delays,
/// and unused containers compare via their (complete) `Debug` renderings,
/// which cover every nested field and ordering.
fn assert_same(seq: &Analysis, par: &Analysis, label: &str) {
    assert_eq!(seq.events, par.events, "{label}: events (order) diverged");
    assert_eq!(
        format!("{:?}", seq.graphs),
        format!("{:?}", par.graphs),
        "{label}: graphs diverged"
    );
    assert_eq!(
        format!("{:?}", seq.delays),
        format!("{:?}", par.delays),
        "{label}: delays diverged"
    );
    assert_eq!(
        format!("{:?}", seq.unused_containers),
        format!("{:?}", par.unused_containers),
        "{label}: unused containers diverged"
    );
    assert_eq!(seq.app_names, par.app_names, "{label}: app names diverged");
    assert_eq!(seq.watermark, par.watermark, "{label}: watermark diverged");
    assert_eq!(
        sdchecker::wide_events_for_analysis(seq),
        sdchecker::wide_events_for_analysis(par),
        "{label}: wide events diverged"
    );
}

#[test]
fn parallel_analysis_equals_sequential() {
    for case in 0..48u64 {
        let mut rng = SimRng::new(0xFA11E1 ^ case);
        let store = random_corpus(&mut rng);
        let seq = analyze_store(&store);
        for threads in [2, 4, 8] {
            let par = analyze_store_with(&store, Parallelism::new(threads));
            assert_same(&seq, &par, &format!("case {case}, threads {threads}"));
        }
    }
}

#[test]
fn parallel_dir_analysis_equals_sequential() {
    let mut rng = SimRng::new(0x0D1B);
    let store = random_corpus(&mut rng);
    let dir = std::env::temp_dir().join(format!("sdchecker_pareq_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    store.write_dir(&dir).unwrap();
    let seq = sdchecker::analyze_dir(&dir).unwrap();
    for threads in [2, 4, 8] {
        let par = sdchecker::analyze_dir_with(&dir, Parallelism::new(threads)).unwrap();
        assert_same(&seq, &par, &format!("dir, threads {threads}"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
