//! Property test for incremental ingestion: a corpus streamed through
//! [`DirTailer`] in *randomized append chunkings* — including splits
//! mid-line and mid-UTF-8-sequence — must reproduce batch ingestion
//! record for record, and the incremental analyzer must retire every
//! application with exactly the delays batch analysis computes.
//!
//! This is the contract that makes `sdcheckerd` trustworthy: no append
//! pattern a log writer can produce may change the analysis.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

use logmodel::{ApplicationId, Epoch, LogRecord, LogSource, LogStore, NodeId, Parallelism, TsMs};
use sdchecker::{
    analyze_dir_with, analyze_store_with, report_json, wide_events_for_analysis, AlertEngine,
    AlertRule, DirTailer, IncrementalAnalyzer, IncrementalConfig, RuleKind,
};
use simkit::SimRng;

/// One complete application lifecycle (submission through unregister),
/// time-shifted by `base` ms. `name` adds the Spark AM banner the
/// app-name miner looks for.
fn populate_app(s: &mut LogStore, num: u32, node: u32, base: u64, name: Option<&str>) {
    let epoch = Epoch::default_run();
    let a = ApplicationId::new(epoch.unix_ms, num);
    let am = a.attempt(1).container(1);
    let ex = a.attempt(1).container(2);
    let rm = LogSource::ResourceManager;
    let nm = LogSource::NodeManager(NodeId(node));
    let t = |off: u64| TsMs(base + off);
    s.info(
        rm,
        t(100),
        "RMAppImpl",
        format!("{a} State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"),
    );
    s.info(
        rm,
        t(120),
        "RMAppImpl",
        format!("{a} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"),
    );
    s.info(
        rm,
        t(150),
        "RMContainerImpl",
        format!("{am} Container Transitioned from NEW to ALLOCATED"),
    );
    s.info(
        rm,
        t(151),
        "RMContainerImpl",
        format!("{am} Container Transitioned from ALLOCATED to ACQUIRED"),
    );
    s.info(
        nm,
        t(160),
        "ContainerImpl",
        format!("Container {am} transitioned from NEW to LOCALIZING"),
    );
    s.info(
        nm,
        t(700),
        "ContainerImpl",
        format!("Container {am} transitioned from LOCALIZING to SCHEDULED"),
    );
    s.info(
        nm,
        t(705),
        "ContainerImpl",
        format!("Container {am} transitioned from SCHEDULED to RUNNING"),
    );
    s.info(
        LogSource::Driver(a),
        t(1400),
        "ApplicationMaster",
        "Starting ApplicationMaster",
    );
    if let Some(n) = name {
        s.info(
            LogSource::Driver(a),
            t(1401),
            "ApplicationMaster",
            format!("Starting ApplicationMaster for {n}"),
        );
    }
    s.info(
        LogSource::Driver(a),
        t(4400),
        "ApplicationMaster",
        "Registered with ResourceManager",
    );
    s.info(
        rm,
        t(4400),
        "RMAppImpl",
        format!("{a} State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"),
    );
    s.info(
        LogSource::Driver(a),
        t(4401),
        "YarnAllocator",
        "START_ALLO Requesting 1 executor containers",
    );
    s.info(
        rm,
        t(4500),
        "RMContainerImpl",
        format!("{ex} Container Transitioned from NEW to ALLOCATED"),
    );
    s.info(
        rm,
        t(5400),
        "RMContainerImpl",
        format!("{ex} Container Transitioned from ALLOCATED to ACQUIRED"),
    );
    s.info(
        LogSource::Driver(a),
        t(5400),
        "YarnAllocator",
        "END_ALLO All requested executor containers allocated",
    );
    s.info(
        nm,
        t(5420),
        "ContainerImpl",
        format!("Container {ex} transitioned from NEW to LOCALIZING"),
    );
    s.info(
        nm,
        t(5920),
        "ContainerImpl",
        format!("Container {ex} transitioned from LOCALIZING to SCHEDULED"),
    );
    s.info(
        nm,
        t(5925),
        "ContainerImpl",
        format!("Container {ex} transitioned from SCHEDULED to RUNNING"),
    );
    s.info(
        LogSource::Executor(ex),
        t(6625),
        "CoarseGrainedExecutorBackend",
        "Started executor",
    );
    s.info(
        LogSource::Executor(ex),
        t(11_000),
        "Executor",
        "Got assigned task 0 in stage 0.0 (TID 0)",
    );
    s.info(
        rm,
        t(40_100),
        "RMAppImpl",
        format!("{a} State change from RUNNING to FINAL_SAVING on event = ATTEMPT_UNREGISTERED"),
    );
}

/// Two complete applications; the second carries a multi-byte UTF-8
/// application name so random byte-level chunking is guaranteed to land
/// inside encoded sequences.
fn corpus() -> LogStore {
    let mut s = LogStore::new(Epoch::default_run());
    populate_app(&mut s, 1, 2, 0, None);
    populate_app(
        &mut s,
        2,
        3,
        50_000,
        Some("TPC-H r\u{00e9}sum\u{e9} \u{2713} replay"),
    );
    s
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sdchecker_inctest_{name}_{}", std::process::id()))
}

#[test]
fn tailed_ingest_matches_batch_for_any_append_chunking() {
    let logs = corpus();

    // Batch gold: write the finished corpus, analyze it, pin the report.
    let batch_dir = tmp("batch");
    let _ = fs::remove_dir_all(&batch_dir);
    logs.write_dir(&batch_dir).unwrap();
    let batch = analyze_dir_with(&batch_dir, Parallelism::ONE).unwrap();
    let gold = report_json(&batch);
    let mut exemplar_gold: Option<String> = None;
    let mut alerts_gold: Option<Vec<String>> = None;

    for trial in 0u64..5 {
        let mut rng = SimRng::new(0xD1CE + trial);
        let dir = tmp(&format!("stream_{trial}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("epoch.txt"), format!("{}\n", logs.epoch().unix_ms)).unwrap();

        // Full byte blob per source file; the RM log (sorted last) loses
        // its final newline so `flush_partial` gets exercised.
        let mut blobs: Vec<(PathBuf, Vec<u8>, usize)> = logs
            .sources()
            .map(|src| {
                let mut bytes = logs.render_source(src).into_bytes();
                if src == LogSource::ResourceManager {
                    assert_eq!(bytes.pop(), Some(b'\n'));
                }
                (dir.join(src.rel_path()), bytes, 0)
            })
            .collect();
        for (path, _, _) in &blobs {
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(path, b"").unwrap();
        }

        let mut tailer = DirTailer::new(&dir).unwrap();
        // Huge settle window: arrival order is adversarial here (a whole
        // file can land before another starts), so apps must only retire
        // at finish(), once all evidence is in.
        let mut inc = IncrementalAnalyzer::new(IncrementalConfig {
            settle_ms: u64::MAX,
            idle_timeout_ms: 0,
            exemplar_slots: 3,
        });
        let mut rebuilt = LogStore::new(*logs.epoch());
        let feed = |recs: Vec<(LogSource, LogRecord)>,
                    rebuilt: &mut LogStore,
                    inc: &mut IncrementalAnalyzer| {
            for (src, rec) in recs {
                inc.ingest(src, &rec);
                rebuilt.push(src, rec);
            }
        };

        // Append 1..=19-byte chunks to randomly chosen files, polling
        // the tailer at random points in between.
        loop {
            let pending: Vec<usize> = blobs
                .iter()
                .enumerate()
                .filter(|(_, (_, bytes, pos))| pos < &bytes.len())
                .map(|(i, _)| i)
                .collect();
            if pending.is_empty() {
                break;
            }
            let pick = pending[rng.below(pending.len() as u64) as usize];
            let (path, bytes, pos) = &mut blobs[pick];
            let n = (1 + rng.below(19) as usize).min(bytes.len() - *pos);
            let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&bytes[*pos..*pos + n]).unwrap();
            *pos += n;
            if rng.below(4) == 0 {
                feed(tailer.poll().unwrap(), &mut rebuilt, &mut inc);
                assert!(inc.drain_ready().is_empty(), "nothing may retire early");
            }
        }
        feed(tailer.poll().unwrap(), &mut rebuilt, &mut inc);
        feed(tailer.flush_partial(), &mut rebuilt, &mut inc);

        // (a) No append pattern may lose, duplicate, or garble a line:
        // the rebuilt store's report is byte-identical to batch.
        let stats = tailer.stats();
        assert_eq!(
            stats.parsed_lines as usize,
            logs.total_records(),
            "trial {trial}"
        );
        assert_eq!(stats.skipped_lines, 0, "trial {trial}");
        let re = analyze_store_with(&rebuilt, Parallelism::ONE);
        assert_eq!(
            report_json(&re),
            gold,
            "trial {trial}: report diverged from batch"
        );

        // (b) Incremental retirement reproduces the batch decomposition.
        let mut retired = inc.finish();
        retired.sort_by_key(|r| r.app);
        assert_eq!(inc.in_flight(), 0);
        assert_eq!(inc.late_events(), 0);
        assert_eq!(
            format!(
                "{:?}",
                retired.iter().map(|r| &r.delays).collect::<Vec<_>>()
            ),
            format!("{:?}", batch.delays.iter().collect::<Vec<_>>()),
            "trial {trial}: delays diverged from batch"
        );
        for r in &retired {
            assert!(!r.forced, "trial {trial}: {} was force-retired", r.app);
            assert_eq!(
                r.name.as_ref(),
                batch.app_names.get(&r.app),
                "trial {trial}"
            );
        }
        assert_eq!(inc.coverage(), &batch.coverage, "trial {trial}");

        // (c) The wide-event lines are byte-identical to what batch
        // analysis emits over the finished corpus — same canonical
        // line, same order, same retire watermark.
        let mut wide = String::new();
        for r in &retired {
            wide.push_str(&r.wide_event);
            wide.push('\n');
        }
        assert_eq!(
            wide,
            wide_events_for_analysis(&batch),
            "trial {trial}: wide events diverged from batch"
        );

        // (d) The tail-exemplar reservoir is chunking-invariant: same
        // promoted set, same rankings, same rendered index every trial.
        let index = inc.exemplars().index_json();
        assert!(inc.exemplars().promoted_apps() > 0, "trial {trial}");
        match &exemplar_gold {
            None => exemplar_gold = Some(index),
            Some(gold) => assert_eq!(
                &index, gold,
                "trial {trial}: exemplar index diverged across chunkings"
            ),
        }

        // (e) Alert transitions are chunking-invariant: replay this
        // trial's retirements through a fresh engine, run the daemon's
        // shutdown sequence, and pin the transition log.
        let mut engine = AlertEngine::new(
            vec![AlertRule {
                name: "total_p99_test".into(),
                for_ms: 0,
                kind: RuleKind::ComponentQuantile {
                    component: "total",
                    q: 0.99,
                    threshold_ms: 1_000,
                    window_ms: 60_000,
                    min_count: 1,
                },
            }],
            1_000,
        );
        let watermark = retired.iter().map(|r| r.retire_ms).max().unwrap();
        for r in &retired {
            engine.observe_retirement(r.retire_ms, &r.delays);
        }
        let end = TsMs(watermark.0 + 1_000);
        let mut transitions = engine.advance(end);
        transitions.extend(engine.close_out(end));
        let log: Vec<String> = transitions
            .iter()
            .map(|t| format!("{} {} at {}", t.rule, t.verb(), t.at.0))
            .collect();
        assert!(
            log.iter().any(|l| l.contains("firing")),
            "trial {trial}: slow apps must trip the test rule, got {log:?}"
        );
        assert!(
            log.last().is_some_and(|l| l.contains("resolved")),
            "trial {trial}: close_out must resolve, got {log:?}"
        );
        match &alerts_gold {
            None => alerts_gold = Some(log),
            Some(gold) => assert_eq!(
                &log, gold,
                "trial {trial}: alert transitions diverged across chunkings"
            ),
        }

        fs::remove_dir_all(&dir).unwrap();
    }
    fs::remove_dir_all(&batch_dir).unwrap();
}

/// A copytruncate rotation (file shrinks, tailer resets and re-reads)
/// combined with 3-byte appends that split every multi-byte UTF-8
/// sequence in the app name must leave the exemplar reservoir's retained
/// events intact: each promoted app's on-demand trace is byte-identical
/// to the trace batch analysis builds from the finished corpus.
#[test]
fn copytruncate_and_mid_utf8_chunks_keep_exemplar_traces_batch_identical() {
    let logs = corpus();
    let batch_dir = tmp("trace_batch");
    let _ = fs::remove_dir_all(&batch_dir);
    logs.write_dir(&batch_dir).unwrap();
    let batch = analyze_dir_with(&batch_dir, Parallelism::ONE).unwrap();

    let dir = tmp("trace_stream");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("epoch.txt"), format!("{}\n", logs.epoch().unix_ms)).unwrap();

    // Lay out every source in full, except: the RM log starts as its
    // first ~60 % (cut at a line boundary) so the later rewrite is a
    // genuine shrink, and the UTF-8-named app's driver log starts empty
    // and is drip-fed below.
    let rm_path = dir.join(LogSource::ResourceManager.rel_path());
    let rm_bytes = logs.render_source(LogSource::ResourceManager).into_bytes();
    let cut = rm_bytes[..rm_bytes.len() * 3 / 5]
        .iter()
        .rposition(|&b| b == b'\n')
        .unwrap()
        + 1;
    let utf8_driver = logs
        .sources()
        .find(|s| matches!(s, LogSource::Driver(a) if a.seq == 2))
        .unwrap();
    let drv_path = dir.join(utf8_driver.rel_path());
    let drv_bytes = logs.render_source(utf8_driver).into_bytes();
    for src in logs.sources() {
        let path = dir.join(src.rel_path());
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        if src == LogSource::ResourceManager {
            fs::write(&path, &rm_bytes[..cut]).unwrap();
        } else if src == utf8_driver {
            fs::write(&path, b"").unwrap();
        } else {
            fs::write(&path, logs.render_source(src)).unwrap();
        }
    }

    let mut tailer = DirTailer::new(&dir).unwrap();
    let mut inc = IncrementalAnalyzer::new(IncrementalConfig {
        settle_ms: u64::MAX,
        idle_timeout_ms: 0,
        exemplar_slots: 3,
    });
    let ingest = |recs: Vec<(LogSource, LogRecord)>, inc: &mut IncrementalAnalyzer| {
        for (src, rec) in recs {
            inc.ingest(src, &rec);
        }
    };
    ingest(tailer.poll().unwrap(), &mut inc);

    // Copytruncate: the consumed prefix vanishes and only the remainder
    // is left — a shorter file, so the tailer must reset to offset 0.
    fs::write(&rm_path, &rm_bytes[cut..]).unwrap();
    ingest(tailer.poll().unwrap(), &mut inc);
    assert_eq!(tailer.stats().resets, 1);

    // Drip the driver log three bytes at a time: the 2-byte 'é' and the
    // 3-byte '✓' in the app name are guaranteed to straddle appends.
    for chunk in drv_bytes.chunks(3) {
        let mut f = fs::OpenOptions::new().append(true).open(&drv_path).unwrap();
        f.write_all(chunk).unwrap();
        ingest(tailer.poll().unwrap(), &mut inc);
    }
    ingest(tailer.flush_partial(), &mut inc);
    assert!(inc.drain_ready().is_empty());

    let mut retired = inc.finish();
    retired.sort_by_key(|r| r.app);
    assert_eq!(retired.len(), 2);
    assert_eq!(tailer.stats().skipped_lines, 0);
    assert_eq!(inc.exemplars().promoted_apps(), 2);

    for r in &retired {
        let got = inc
            .exemplars()
            .trace_json(r.app)
            .expect("fleet of 2 with k = 3: every app is promoted");
        let g = batch.graphs.get(&r.app).unwrap();
        let mut t = obs::export::TraceEvents::new();
        sdchecker::app_trace_into(
            &mut t,
            g,
            r.app.seq as u64,
            batch.app_names.get(&r.app).map(|s| s.as_str()),
        );
        assert_eq!(got, t.finish(), "exemplar trace diverged for {}", r.app);
    }
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&batch_dir).unwrap();
}
