//! Seeded corruption fuzzing of the `sdchecker` binary: damage a corpus
//! with `logmodel::corrupt_dir` under fixed seeds and assert the
//! robustness contract — the analyzer exits cleanly on every seed, emits
//! valid JSON, and accounts for each application it can still see exactly
//! once. Fixed seeds keep runs reproducible (CI runs this exact set); a
//! failure replays from its seed bit-for-bit.

mod common;

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use logmodel::{corrupt_dir, CorruptConfig, Epoch, LogStore};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sdchecker"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sdchecker_fuzz_{name}_{}", std::process::id()))
}

/// Write a fresh mixed-fleet corpus (clean + failed + truncated apps).
fn write_fleet(dir: &PathBuf) {
    let _ = fs::remove_dir_all(dir);
    let mut s = LogStore::new(Epoch::default_run());
    common::populate_faulty_fleet(&mut s);
    s.write_dir(dir).unwrap();
}

/// Run the binary over `dir` and enforce the contract: clean exit, valid
/// JSON report, unique app ids, fleet count consistent with the app list,
/// and failure counters that never exceed the population.
fn check_contract(dir: &PathBuf, label: &str) {
    let report = dir.join("report.json");
    let out = bin()
        .arg(dir)
        .args(["--threads", "2", "--quiet"])
        .args(["--report-json", report.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "[{label}] analyzer must exit cleanly on damaged input; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = fs::read_to_string(&report).unwrap();
    let doc = obs::json::parse(&json)
        .unwrap_or_else(|e| panic!("[{label}] report must stay valid JSON: {e:?}"));
    let apps = doc.get("applications").unwrap().as_arr().unwrap().to_vec();
    let mut ids: Vec<String> = apps
        .iter()
        .map(|a| a.get("app").unwrap().as_str().unwrap().to_string())
        .collect();
    let n = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), n, "[{label}] every app accounted exactly once");
    assert_eq!(
        doc.get("fleet")
            .unwrap()
            .get("applications")
            .unwrap()
            .as_f64(),
        Some(n as f64),
        "[{label}] fleet count must match the application list"
    );
    if let Some(failures) = doc.get("failures") {
        let failed = failures.get("failed").unwrap().as_f64().unwrap();
        let killed = failures.get("killed").unwrap().as_f64().unwrap();
        let retried = failures.get("retried_apps").unwrap().as_f64().unwrap();
        assert!(
            failed + killed <= n as f64 && retried <= n as f64,
            "[{label}] failure counters bounded by the population"
        );
        for f in failures.get("apps").unwrap().as_arr().unwrap() {
            let outcome = f.get("outcome").unwrap().as_str().unwrap();
            assert!(
                ["completed", "failed", "killed", "truncated"].contains(&outcome),
                "[{label}] unknown outcome label {outcome}"
            );
        }
    }
}

/// The undamaged fleet itself must satisfy the contract and surface its
/// known failures (baseline for the corruption sweep below).
#[test]
fn pristine_fleet_reports_failures() {
    let dir = tmp("pristine");
    write_fleet(&dir);
    check_contract(&dir, "pristine");
    let json = fs::read_to_string(dir.join("report.json")).unwrap();
    let doc = obs::json::parse(&json).unwrap();
    let failures = doc.get("failures").expect("fleet has a failed app");
    assert_eq!(failures.get("failed").unwrap().as_f64(), Some(1.0));
    assert_eq!(failures.get("retried_apps").unwrap().as_f64(), Some(1.0));
    assert_eq!(failures.get("anomalous_lines").unwrap().as_f64(), Some(1.0));
    fs::remove_dir_all(&dir).unwrap();
}

/// Default damage profile across fixed seeds: no panic, conservation
/// holds on every one.
#[test]
fn corrupted_corpora_never_panic_default_profile() {
    for seed in [7u64, 21, 99, 1234, 31337] {
        let dir = tmp(&format!("d{seed}"));
        write_fleet(&dir);
        let report = corrupt_dir(&dir, seed, &CorruptConfig::default()).unwrap();
        check_contract(&dir, &format!("default seed {seed} ({report:?})"));
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Severe damage profile: most files hit, many lines mangled. The
/// analyzer may lose applications entirely but must never crash or
/// double-count what remains.
#[test]
fn corrupted_corpora_never_panic_severe_profile() {
    for seed in [3u64, 58, 777, 9001, 123_456_789] {
        let dir = tmp(&format!("s{seed}"));
        write_fleet(&dir);
        let report = corrupt_dir(&dir, seed, &CorruptConfig::severe()).unwrap();
        assert!(
            report.files_damaged > 0,
            "severe profile should always land damage"
        );
        check_contract(&dir, &format!("severe seed {seed} ({report:?})"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
