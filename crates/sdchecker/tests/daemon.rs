//! End-to-end tests of the `sdcheckerd` daemon: spawn the real binary on
//! an ephemeral port, talk to it over a raw `TcpStream` (no HTTP client
//! crate — the server is std-only and so is the test), and check the
//! full lifecycle: readiness, live retirement, the Prometheus and JSON
//! surfaces, and a clean SIGTERM shutdown with a flushed final report.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use logmodel::{Epoch, LogStore};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sdcheckerd"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sdcheckerd_test_{name}_{}", std::process::id()))
}

/// Kill the daemon if a test panics before shutting it down.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// One blocking HTTP/1.1 GET. Returns (status, headers, body).
fn http_get(addr: &str, path: &str) -> (u16, String, Vec<u8>) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("no header/body separator");
    let head = String::from_utf8_lossy(&raw[..split]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("no status code")
        .parse()
        .unwrap();
    (status, head, raw[split + 4..].to_vec())
}

/// Poll `f` until it returns `Some`, failing after ~10 s.
fn wait_for<T>(what: &str, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn spawn_daemon(dir: &std::path::Path, extra: &[&str]) -> (Daemon, String) {
    let port_file = dir.join("port.txt");
    let child = bin()
        .arg(dir)
        .args(["--listen", "127.0.0.1:0", "--poll-ms", "50", "--quiet"])
        .args(["--port-file", port_file.to_str().unwrap()])
        .args(extra)
        .stdin(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let daemon = Daemon(child);
    let addr = wait_for("port file", || {
        std::fs::read_to_string(&port_file)
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
    });
    (daemon, addr)
}

#[test]
fn serves_live_endpoints_and_retires_apps() {
    let dir = tmp("endpoints");
    let _ = std::fs::remove_dir_all(&dir);
    let mut logs = LogStore::new(Epoch::default_run());
    common::populate_faulty_fleet(&mut logs);
    logs.write_dir(&dir).unwrap();

    let final_report = dir.join("final.json");
    let (mut daemon, addr) = spawn_daemon(
        &dir,
        &[
            "--settle-ms",
            "0",
            "--idle-timeout-ms",
            "0",
            "--final-report",
            final_report.to_str().unwrap(),
        ],
    );

    // Readiness flips once the first poll lands.
    wait_for("readyz", || {
        let (status, _, _) = http_get(&addr, "/readyz");
        (status == 200).then_some(())
    });

    // The two apps with terminal evidence retire live; the truncated one
    // stays buffered (idle timeout off).
    let health = wait_for("live retirement", || {
        let (status, _, body) = http_get(&addr, "/healthz");
        assert_eq!(status, 200);
        let doc = obs::json::parse(&String::from_utf8_lossy(&body)).unwrap();
        let retired = doc.get("retired").unwrap().as_f64().unwrap();
        (retired == 2.0).then_some(doc)
    });
    let n = |k: &str| health.get(k).unwrap().as_f64().unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(n("in_flight"), 1.0, "truncated app must stay buffered");
    assert!(n("records") > 0.0);
    assert!(n("polls") > 0.0);
    assert!(n("sources") > 0.0);
    assert_eq!(n("lag_bytes"), 0.0, "fully caught up");

    // Prometheus surface: conformant content type, HELP/TYPE per family.
    let (status, head, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/plain; version=0.0.4; charset=utf-8"),
        "{head}"
    );
    let text = String::from_utf8(body).unwrap();
    for family in [
        "sdcheckerd_polls_total",
        "sdcheckerd_records_total",
        "sdcheckerd_apps_retired_total",
        "sdcheckerd_apps_in_flight",
        "sdcheckerd_tail_lag_bytes",
        "sdcheckerd_uptime_seconds",
    ] {
        assert!(
            text.contains(&format!("# HELP {family} ")),
            "{family}: {text}"
        );
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "{family}: {text}"
        );
    }
    assert!(text.contains("sdcheckerd_apps_retired_total 2"), "{text}");
    assert!(text.contains("parse_lines_total{"), "{text}");

    // Live report: the daemon schema, with fleet and tail sections.
    let (status, _, body) = http_get(&addr, "/report.json");
    assert_eq!(status, 200);
    let doc = obs::json::parse(&String::from_utf8_lossy(&body)).unwrap();
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("sdcheckerd-report-v1")
    );
    let fleet = doc.get("fleet").unwrap();
    assert_eq!(fleet.get("retired").unwrap().as_f64(), Some(2.0));
    assert_eq!(fleet.get("in_flight").unwrap().as_f64(), Some(1.0));
    let tail = doc.get("tail").unwrap();
    assert!(tail.get("parsed_lines").unwrap().as_f64().unwrap() > 0.0);

    let (status, _, body) = http_get(&addr, "/buildinfo");
    assert_eq!(status, 200);
    let doc = obs::json::parse(&String::from_utf8_lossy(&body)).unwrap();
    assert_eq!(doc.get("name").unwrap().as_str(), Some("sdcheckerd"));

    let (status, _, _) = http_get(&addr, "/no-such-endpoint");
    assert_eq!(status, 404);

    // SIGTERM: clean exit, everything in flight force-retired, final
    // report flushed to disk.
    #[cfg(unix)]
    {
        let pid = daemon.0.id().to_string();
        assert!(Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .unwrap()
            .success());
        let status = daemon.0.wait().unwrap();
        assert!(status.success(), "SIGTERM must exit 0, got {status:?}");
        let text = std::fs::read_to_string(&final_report).unwrap();
        let doc = obs::json::parse(&text).expect("final report must be valid JSON");
        let fleet = doc.get("fleet").unwrap();
        assert_eq!(fleet.get("retired").unwrap().as_f64(), Some(3.0));
        assert_eq!(fleet.get("in_flight").unwrap().as_f64(), Some(0.0));
        let outcomes = fleet.get("outcomes").unwrap();
        assert_eq!(outcomes.get("truncated").unwrap().as_f64(), Some(1.0));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serves_alerts_exemplars_and_wide_events() {
    let dir = tmp("tailsurface");
    let _ = std::fs::remove_dir_all(&dir);
    let mut logs = LogStore::new(Epoch::default_run());
    common::populate_faulty_fleet(&mut logs);
    logs.write_dir(&dir).unwrap();

    let wide_out = dir.join("events.jsonl");
    let alerts_out = dir.join("alerts.json");
    let (mut daemon, addr) = spawn_daemon(
        &dir,
        &[
            "--settle-ms",
            "0",
            "--idle-timeout-ms",
            "0",
            "--slo-ms",
            "1",
            "--wide-events-out",
            wide_out.to_str().unwrap(),
            "--alerts-out",
            alerts_out.to_str().unwrap(),
        ],
    );

    // Two apps retire live; their exemplars appear.
    wait_for("live retirement", || {
        let (status, _, body) = http_get(&addr, "/healthz");
        assert_eq!(status, 200);
        let doc = obs::json::parse(&String::from_utf8_lossy(&body)).unwrap();
        (doc.get("retired").unwrap().as_f64() == Some(2.0)).then_some(())
    });

    // /alerts: the rule table with per-rule states.
    let (status, _, body) = http_get(&addr, "/alerts");
    assert_eq!(status, 200);
    let doc = obs::json::parse(&String::from_utf8_lossy(&body)).unwrap();
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("sdcheckerd-alerts-v1")
    );
    let body_text = String::from_utf8(body).unwrap();
    for rule in ["total_p99_slo", "total_burn_rate", "tail_lag"] {
        assert!(body_text.contains(rule), "{body_text}");
    }

    // /exemplars: every retired app of this tiny fleet is promoted, and
    // each promoted app serves an on-demand Perfetto trace.
    let (status, _, body) = http_get(&addr, "/exemplars");
    assert_eq!(status, 200);
    let index = String::from_utf8(body).unwrap();
    let doc = obs::json::parse(&index).unwrap();
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("sdcheckerd-exemplars-v1")
    );
    let app = index
        .split('"')
        .find(|s| s.starts_with("application_"))
        .expect("at least one promoted app in the index")
        .to_string();
    let (status, _, body) = http_get(&addr, &format!("/exemplars/{app}/trace.json"));
    assert_eq!(status, 200);
    let trace = String::from_utf8(body).unwrap();
    assert!(trace.contains("traceEvents"), "{trace}");
    let (status, _, _) = http_get(&addr, "/exemplars/application_0_9999/trace.json");
    assert_eq!(status, 404);

    // Daemon self-metrics and alert gauges on /metrics.
    let (_, _, body) = http_get(&addr, "/metrics");
    let text = String::from_utf8(body).unwrap();
    for family in [
        "process_uptime_seconds",
        "sdcheckerd_poll_duration_ms",
        "sdcheckerd_http_requests_total",
        "sdcheckerd_exemplar_apps",
        "sd_alert_firing",
    ] {
        assert!(text.contains(&format!("# HELP {family} ")), "{family}");
    }
    assert!(
        text.contains("sd_alert_firing{rule=\"total_p99_slo\"}"),
        "{text}"
    );
    assert!(
        text.contains("sdcheckerd_http_requests_total{path=\"/alerts\"}"),
        "{text}"
    );

    // SIGTERM: the wide-events file ends with one line per retired app,
    // and the alerts file records a closed-out engine.
    #[cfg(unix)]
    {
        let pid = daemon.0.id().to_string();
        assert!(Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .unwrap()
            .success());
        let status = daemon.0.wait().unwrap();
        assert!(status.success(), "SIGTERM must exit 0, got {status:?}");
        let wide = std::fs::read_to_string(&wide_out).unwrap();
        assert_eq!(wide.lines().count(), 3, "one wide event per retirement");
        for line in wide.lines() {
            let doc = obs::json::parse(line).unwrap();
            assert_eq!(doc.get("schema").unwrap().as_str(), Some("wide-events-v1"));
        }
        let alerts = std::fs::read_to_string(&alerts_out).unwrap();
        let doc = obs::json::parse(&alerts).unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("sdcheckerd-alerts-v1")
        );
        assert!(
            !alerts.contains("\"state\": \"firing\""),
            "close_out must resolve every rule: {alerts}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn run_for_ms_bounds_the_daemon_lifetime() {
    let dir = tmp("runfor");
    let _ = std::fs::remove_dir_all(&dir);
    let mut logs = LogStore::new(Epoch::default_run());
    common::populate_faulty_fleet(&mut logs);
    logs.write_dir(&dir).unwrap();

    let final_report = dir.join("final.json");
    let (mut daemon, _addr) = spawn_daemon(
        &dir,
        &[
            "--run-for-ms",
            "400",
            "--settle-ms",
            "0",
            "--final-report",
            final_report.to_str().unwrap(),
        ],
    );
    let status = wait_for("self-timed exit", || daemon.0.try_wait().unwrap());
    assert!(status.success());
    let doc = obs::json::parse(&std::fs::read_to_string(&final_report).unwrap()).unwrap();
    assert_eq!(
        doc.get("fleet").unwrap().get("retired").unwrap().as_f64(),
        Some(3.0),
        "finish() must retire the whole fleet"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn help_exits_zero() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: sdcheckerd"));
}

#[test]
fn rejects_bad_usage() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["dir", "--bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["--quiet"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "flag where watch-dir should be");
    let out = bin().args(["dir", "--poll-ms"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing value");
    let out = bin().args(["dir", "--poll-ms", "soon"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["dir", "--poll-ms", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["dir", "--settle-ms", "-3"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_watch_directory_fails_fast() {
    let out = bin()
        .args(["/nonexistent/definitely/missing", "--listen", "127.0.0.1:0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "must fail, not hang");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot tail"), "{err}");
    assert!(err.contains("does not exist"), "{err}");
}
