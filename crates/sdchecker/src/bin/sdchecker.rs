//! The `sdchecker` CLI: offline analysis of a collected log directory.
//!
//! ```text
//! sdchecker <log-dir> [--threads N] [--csv <out.csv>] [--dot <application-id> <out.dot>]
//!           [--timeline <application-id>] [--trace-out <trace.json>]
//!           [--app-trace-out <apptrace.json>] [--report-json <report.json>]
//!           [--metrics-out <metrics.json|.prom>] [--wide-events-out <events.jsonl>]
//!           [--quiet]
//! ```
//!
//! `<log-dir>` must contain `resourcemanager.log`,
//! `nodemanager-nodeNN.log` files and `apps/<applicationId>/…` application
//! logs (the layout `logmodel::LogStore::write_dir` produces, mirroring a
//! cluster log collection).

use std::path::PathBuf;
use std::process::ExitCode;

use logmodel::ApplicationId;
use sdchecker::{analyze_dir_with, full_report, Parallelism, Table};

const USAGE: &str = "usage: sdchecker <log-dir> [--threads N] [--csv <out.csv>] \
[--dot <application-id> <out.dot>] [--timeline <application-id>] \
[--trace-out <trace.json>] [--app-trace-out <apptrace.json>] \
[--report-json <report.json>] [--metrics-out <metrics.json|.prom>] \
[--wide-events-out <events.jsonl>] [--quiet]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some(dir) = args.first() else {
        return usage();
    };
    if dir.starts_with('-') {
        eprintln!("expected <log-dir> as the first argument, got {dir}");
        return usage();
    }
    let mut csv_out: Option<PathBuf> = None;
    let mut dot_req: Option<(ApplicationId, PathBuf)> = None;
    let mut timeline_req: Option<ApplicationId> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut app_trace_out: Option<PathBuf> = None;
    let mut report_json_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut wide_events_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut par = Parallelism::auto();
    let mut requested_threads: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                let Some(n) = args.get(i + 1) else {
                    return usage();
                };
                let Ok(n) = n.parse::<usize>() else {
                    eprintln!("invalid thread count: {n}");
                    return ExitCode::from(2);
                };
                if n == 0 {
                    eprintln!("--threads must be at least 1");
                    return ExitCode::from(2);
                }
                // Oversubscribing the analysis pool only adds scheduling
                // overhead (the benches show a net slowdown), so clamp to
                // hardware parallelism; requested vs effective counts are
                // both recorded in the metrics export.
                requested_threads = Some(n);
                par = Parallelism::clamped(n);
                i += 2;
            }
            "--csv" => {
                let Some(p) = args.get(i + 1) else {
                    return usage();
                };
                csv_out = Some(PathBuf::from(p));
                i += 2;
            }
            "--dot" => {
                let (Some(appid), Some(p)) = (args.get(i + 1), args.get(i + 2)) else {
                    return usage();
                };
                let Ok(app) = appid.parse::<ApplicationId>() else {
                    eprintln!("invalid application id: {appid}");
                    return ExitCode::from(2);
                };
                dot_req = Some((app, PathBuf::from(p)));
                i += 3;
            }
            "--timeline" => {
                let Some(appid) = args.get(i + 1) else {
                    return usage();
                };
                let Ok(app) = appid.parse::<ApplicationId>() else {
                    eprintln!("invalid application id: {appid}");
                    return ExitCode::from(2);
                };
                timeline_req = Some(app);
                i += 2;
            }
            "--trace-out" => {
                let Some(p) = args.get(i + 1) else {
                    return usage();
                };
                trace_out = Some(PathBuf::from(p));
                i += 2;
            }
            "--app-trace-out" => {
                let Some(p) = args.get(i + 1) else {
                    return usage();
                };
                app_trace_out = Some(PathBuf::from(p));
                i += 2;
            }
            "--report-json" => {
                let Some(p) = args.get(i + 1) else {
                    return usage();
                };
                report_json_out = Some(PathBuf::from(p));
                i += 2;
            }
            "--metrics-out" => {
                let Some(p) = args.get(i + 1) else {
                    return usage();
                };
                metrics_out = Some(PathBuf::from(p));
                i += 2;
            }
            "--wide-events-out" => {
                let Some(p) = args.get(i + 1) else {
                    return usage();
                };
                wide_events_out = Some(PathBuf::from(p));
                i += 2;
            }
            "--quiet" => {
                quiet = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }

    if let Some(n) = requested_threads {
        if par.threads() < n && !quiet {
            eprintln!(
                "note: --threads {n} clamped to {} (hardware parallelism)",
                par.threads()
            );
        }
    }

    if trace_out.is_some() || metrics_out.is_some() {
        obs::enable();
        sdchecker::describe_metrics();
        obs::gauge_set(
            "analyze_threads_requested",
            requested_threads.unwrap_or_else(|| par.threads()) as f64,
        );
        obs::gauge_set("analyze_threads_effective", par.threads() as f64);
    }

    let analysis = match analyze_dir_with(&PathBuf::from(dir), par) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("failed to read logs from {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", full_report(&analysis));

    if let Some(path) = csv_out {
        let mut t = Table::new(&[
            "app",
            "total_ms",
            "am_ms",
            "in_app_ms",
            "out_app_ms",
            "driver_ms",
            "executor_ms",
            "alloc_ms",
            "cf_ms",
            "cl_ms",
            "job_runtime_ms",
        ]);
        let opt = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
        for d in &analysis.delays {
            t.row(vec![
                d.app.to_string(),
                opt(d.total_ms),
                opt(d.am_ms),
                opt(d.in_app_ms),
                opt(d.out_app_ms),
                opt(d.driver_ms),
                opt(d.executor_ms),
                opt(d.alloc_ms),
                opt(d.cf_ms),
                opt(d.cl_ms),
                opt(d.job_runtime_ms),
            ]);
        }
        if let Err(e) = std::fs::write(&path, t.to_csv()) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!("wrote per-application CSV to {}", path.display());
        }
    }

    if let Some(app) = timeline_req {
        let Some(g) = analysis.graphs.get(&app) else {
            eprintln!("application {app} not found in logs");
            return ExitCode::FAILURE;
        };
        println!();
        print!("{}", sdchecker::ascii_gantt(g, 100));
    }

    if let Some((app, path)) = dot_req {
        let Some(g) = analysis.graphs.get(&app) else {
            eprintln!("application {app} not found in logs");
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::write(&path, g.to_dot()) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!("wrote scheduling graph to {}", path.display());
        }
    }

    if let Some(path) = &app_trace_out {
        if let Err(e) = std::fs::write(path, sdchecker::corpus_app_trace(&analysis)) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!(
                "wrote app-time scheduling trace to {} (load in ui.perfetto.dev)",
                path.display()
            );
        }
    }

    if let Some(path) = &wide_events_out {
        if let Err(e) = std::fs::write(path, sdchecker::wide_events_for_analysis(&analysis)) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!(
                "wrote {} wide-events-v1 lines to {}",
                analysis.delays.len(),
                path.display()
            );
        }
    }

    if let Some(path) = &report_json_out {
        if let Err(e) = std::fs::write(path, sdchecker::report_json(&analysis)) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!("wrote machine-readable report to {}", path.display());
        }
    }

    if let Err(e) =
        obs::export::write_files(obs::global(), trace_out.as_deref(), metrics_out.as_deref())
    {
        eprintln!("failed to write observability output: {e}");
        return ExitCode::FAILURE;
    }
    if !quiet {
        if let Some(p) = &trace_out {
            eprintln!(
                "wrote Chrome trace to {} (load in chrome://tracing or ui.perfetto.dev)",
                p.display()
            );
        }
        if let Some(p) = &metrics_out {
            eprintln!("wrote metrics to {}", p.display());
        }
    }
    ExitCode::SUCCESS
}
