//! `sdcheckerd` — the always-on SDchecker service.
//!
//! Tails a growing log directory (the layout `logmodel::LogStore::write_dir`
//! produces, which a live collector or `sdsim --stream-to` appends to),
//! analyzes and retires each application the moment its evidence completes,
//! and serves the current state over HTTP:
//!
//! ```text
//! sdcheckerd <watch-dir> [--listen ADDR] [--port-file PATH] [--poll-ms N]
//!            [--settle-ms N] [--idle-timeout-ms N] [--exemplar-slots N]
//!            [--slo-ms N] [--no-alerts] [--alerts-out PATH]
//!            [--wide-events-out PATH] [--final-report PATH]
//!            [--checkpoint-dir PATH] [--checkpoint-interval-ms N]
//!            [--resume|--no-resume] [--fsync-outputs]
//!            [--run-for-ms N] [--quiet]
//! ```
//!
//! Endpoints:
//!
//! * `GET /metrics`     — Prometheus text exposition (format 0.0.4) of the
//!   live counters, gauges, delay-component quantile sketches, daemon
//!   self-metrics, and `sd_alert_firing{rule}` flags.
//! * `GET /report.json` — current fleet report snapshot
//!   (schema `sdcheckerd-report-v1`).
//! * `GET /alerts`      — SLO rule states and the transition log
//!   (schema `sdcheckerd-alerts-v1`).
//! * `GET /exemplars`   — worst-apps-per-component reservoir with full
//!   per-app detail (schema `sdcheckerd-exemplars-v1`).
//! * `GET /exemplars/<app>/trace.json` — on-demand Perfetto trace of one
//!   promoted tail app, rebuilt from its retained events.
//! * `GET /healthz`     — liveness: per-source tail lag, apps
//!   in-flight/retired/truncated, last-progress watchdog.
//! * `GET /checkpointz` — crash-only checkpoint status: directory,
//!   cadence, last-write age/size, restart lineage.
//! * `GET /readyz`      — 200 once the first poll completed, 503 before.
//! * `GET /buildinfo`   — name/version.
//!
//! `--wide-events-out` appends one canonical `wide-events-v1` JSONL line
//! per retirement (see `sdchecker::wide`). The file is deterministic in
//! log time — identical for any poll cadence or append chunking — and
//! each line's `retire_ms` is the app's logical retirement instant.
//! Apps drained at shutdown are stamped with the final watermark, which
//! is exactly the stamp batch `sdchecker --wide-events-out` uses, so a
//! run whose apps all retire at `finish()` is byte-identical to the
//! batch file.
//!
//! On SIGTERM/SIGINT the daemon performs one final poll, flushes held-back
//! partial lines, retires everything in flight, resolves open alerts,
//! writes `--final-report` / `--alerts-out` (if given), and exits 0 — the
//! final report matches what batch `sdchecker` computes over the finished
//! directory.
//!
//! With `--checkpoint-dir` the daemon is **crash-only**: it periodically
//! serializes its full state (tail offsets and partial lines, in-flight
//! apps, fleet aggregates, exemplars, alert lifecycles, the wide-events
//! emission cursor) into an atomically-replaced `checkpoint-v1` file
//! (see `sdchecker::checkpoint`). On restart it restores the newest
//! intact generation and replays only bytes past the checkpointed
//! offsets, so a SIGKILLed run resumed this way produces the same
//! report, wide-events file, and alert log as one that was never
//! killed. A damaged checkpoint degrades to cold-start with a loud
//! warning.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use logmodel::TsMs;
use obs::{GaugeRegistry, HttpServer, Request, Response, PROMETHEUS_CONTENT_TYPE};
use sdchecker::checkpoint::{self, CfgFingerprint, CheckpointStore, SaveInputs};
use sdchecker::{
    default_rules, AlertEngine, DirTailer, IncrementalAnalyzer, IncrementalConfig, Outcome,
    RetiredApp, Transition,
};

const USAGE: &str = "usage: sdcheckerd <watch-dir> [--listen ADDR] [--port-file PATH] \
[--poll-ms N] [--settle-ms N] [--idle-timeout-ms N] [--exemplar-slots N] [--slo-ms N] \
[--no-alerts] [--alerts-out PATH] [--wide-events-out PATH] [--final-report PATH] \
[--checkpoint-dir PATH] [--checkpoint-interval-ms N] [--resume|--no-resume] \
[--fsync-outputs] [--run-for-ms N] [--quiet]";

/// Alert rules are evaluated at this log-time quantum.
const ALERT_EVAL_MS: u64 = 1_000;

/// Per-poll duration histogram bounds, ms.
const POLL_DURATION_BOUNDS: &[u64] = &[1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000];

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(2, on_signal); // SIGINT
        signal(15, on_signal); // SIGTERM
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Health state the poll loop publishes and the HTTP thread reads.
#[derive(Debug, Default, Clone)]
struct Health {
    ready: bool,
    polls: u64,
    records: u64,
    in_flight: u64,
    retired: u64,
    truncated: u64,
    complete: u64,
    late_events: u64,
    sources: u64,
    lag_bytes: u64,
    lag_ms: u64,
    events_buffered: u64,
    watermark_ms: Option<u64>,
    exemplar_apps: u64,
    exemplar_events: u64,
}

/// Checkpoint status the poll loop publishes for `/checkpointz` and the
/// `sd_checkpoint_*` gauges.
#[derive(Debug, Default, Clone)]
struct CkptStatus {
    enabled: bool,
    dir: String,
    interval_ms: u64,
    /// Whether this process restored state from a checkpoint.
    resumed: bool,
    /// Which generation was restored (`current` / `previous`), if any.
    generation: Option<String>,
    writes_total: u64,
    recoveries_total: u64,
    /// Size of the newest checkpoint this lineage knows about, bytes.
    bytes: u64,
}

struct Shared {
    report: Mutex<String>,
    health: Mutex<Health>,
    /// Last wall-clock instant a poll made progress (read records or
    /// retired an app) — the watchdog `/healthz` ages against.
    last_progress: Mutex<Instant>,
    started: Instant,
    /// Rendered `/alerts` document (schema `sdcheckerd-alerts-v1`).
    alerts: Mutex<String>,
    /// Per-rule firing flags for the `sd_alert_firing{rule}` gauges.
    firing: Mutex<BTreeMap<String, bool>>,
    /// Rendered `/exemplars` index (schema `sdcheckerd-exemplars-v1`).
    exemplars: Mutex<String>,
    /// Pre-rendered Perfetto traces of every promoted app, rebuilt when
    /// the reservoir generation changes.
    exemplar_traces: Mutex<BTreeMap<String, String>>,
    /// Crash-only checkpoint status (`/checkpointz`).
    ckpt: Mutex<CkptStatus>,
    /// Wall-clock instant of the last successful checkpoint write.
    ckpt_written: Mutex<Option<Instant>>,
}

impl Shared {
    fn health(&self) -> Health {
        self.health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn ckpt(&self) -> CkptStatus {
        self.ckpt.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn ckpt_age_ms(&self) -> Option<u64> {
        self.ckpt_written
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map(|t| t.elapsed().as_millis() as u64)
    }
}

fn describe_daemon_metrics() {
    obs::describe("sdcheckerd_polls_total", "Tail polls performed");
    obs::describe("sdcheckerd_poll_errors_total", "Tail polls that failed");
    obs::describe("sdcheckerd_records_total", "Log records ingested");
    obs::describe(
        "sdcheckerd_read_bytes_total",
        "Bytes read from tailed log files",
    );
    obs::describe(
        "sdcheckerd_apps_retired_total",
        "Applications retired (analysis complete, evidence dropped)",
    );
    obs::describe(
        "sdcheckerd_apps_forced_total",
        "Applications force-retired by the idle timeout",
    );
    obs::describe(
        "sdcheckerd_late_events_total",
        "Events that arrived after their application retired",
    );
    obs::describe(
        "sdcheckerd_apps_in_flight",
        "Applications currently buffered awaiting retirement",
    );
    obs::describe(
        "sdcheckerd_events_buffered",
        "Events currently buffered across in-flight applications",
    );
    obs::describe(
        "sdcheckerd_tail_sources",
        "Log files currently tracked by the tailer",
    );
    obs::describe(
        "sdcheckerd_tail_lag_bytes",
        "Bytes on disk not yet consumed into records",
    );
    obs::describe(
        "sdcheckerd_tail_lag_ms",
        "Largest per-source log-time lag behind the watermark, in ms",
    );
    obs::describe(
        "sdcheckerd_uptime_seconds",
        "Seconds since the daemon started",
    );
    obs::describe(
        "process_uptime_seconds",
        "Seconds since the daemon process started",
    );
    obs::describe(
        "sdcheckerd_poll_duration_ms",
        "Wall-clock duration of each tail poll (read + ingest + drain), ms",
    );
    obs::describe(
        "sdcheckerd_http_requests_total",
        "HTTP requests served, by (bucketed) path",
    );
    obs::describe(
        "sdcheckerd_exemplar_apps",
        "Retired applications held in memory as tail exemplars",
    );
    obs::describe(
        "sdcheckerd_exemplar_events",
        "Events retained across all promoted tail exemplars",
    );
    obs::describe(
        "sdcheckerd_alert_transitions_total",
        "Alert rule state transitions (pending/firing/resolved)",
    );
    obs::describe(
        "sd_alert_firing",
        "1 while the named alert rule is firing, else 0",
    );
    obs::describe(
        "sd_tail_files_removed_total",
        "Tracked log files that vanished from disk and were dropped",
    );
    obs::describe(
        "sd_checkpoint_writes_total",
        "Checkpoints written by this daemon lineage (survives restarts)",
    );
    obs::describe(
        "sd_checkpoint_recoveries_total",
        "Restarts this daemon lineage has survived via checkpoint restore",
    );
    obs::describe(
        "sd_checkpoint_age_ms",
        "Milliseconds since the last successful checkpoint write",
    );
    obs::describe(
        "sd_checkpoint_bytes",
        "Size of the newest checkpoint, in bytes",
    );
}

/// Bucket request paths to a bounded label set (app ids would blow up
/// series cardinality).
fn metric_path(path: &str) -> &'static str {
    match path {
        "/metrics" => "/metrics",
        "/report.json" => "/report.json",
        "/healthz" => "/healthz",
        "/checkpointz" => "/checkpointz",
        "/readyz" => "/readyz",
        "/buildinfo" => "/buildinfo",
        "/alerts" => "/alerts",
        "/exemplars" => "/exemplars",
        p if p.starts_with("/exemplars/") && p.ends_with("/trace.json") => {
            "/exemplars/{app}/trace.json"
        }
        _ => "other",
    }
}

fn healthz_json(h: &Health, progress_age_ms: u64, uptime_ms: u64) -> String {
    let status = if h.ready { "ok" } else { "starting" };
    format!(
        "{{\"status\": \"{status}\", \"ready\": {}, \"uptime_ms\": {uptime_ms}, \
         \"polls\": {}, \"records\": {}, \"in_flight\": {}, \"retired\": {}, \
         \"truncated\": {}, \"complete\": {}, \"late_events\": {}, \
         \"events_buffered\": {}, \"sources\": {}, \"lag_bytes\": {}, \
         \"lag_ms\": {}, \"watermark_ms\": {}, \"last_progress_ms\": {progress_age_ms}}}\n",
        h.ready,
        h.polls,
        h.records,
        h.in_flight,
        h.retired,
        h.truncated,
        h.complete,
        h.late_events,
        h.events_buffered,
        h.sources,
        h.lag_bytes,
        h.lag_ms,
        h.watermark_ms
            .map(|w| w.to_string())
            .unwrap_or_else(|| "null".into()),
    )
}

fn handle(req: &Request, shared: &Shared, gauges: &GaugeRegistry) -> Response {
    obs::count_labeled(
        "sdcheckerd_http_requests_total",
        &[("path", metric_path(&req.path))],
        1,
    );
    match req.path.as_str() {
        "/metrics" => {
            let mut snap = obs::global().snapshot();
            gauges.sample_into(&mut snap);
            Response::ok(PROMETHEUS_CONTENT_TYPE, obs::prometheus_text(&snap))
        }
        "/report.json" => {
            let report = shared.report.lock().unwrap_or_else(|e| e.into_inner());
            Response::json(report.clone())
        }
        "/alerts" => {
            let alerts = shared.alerts.lock().unwrap_or_else(|e| e.into_inner());
            Response::json(alerts.clone())
        }
        "/exemplars" => {
            let ex = shared.exemplars.lock().unwrap_or_else(|e| e.into_inner());
            Response::json(ex.clone())
        }
        p if p.starts_with("/exemplars/") && p.ends_with("/trace.json") => {
            let app = &p["/exemplars/".len()..p.len() - "/trace.json".len()];
            let traces = shared
                .exemplar_traces
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            match traces.get(app) {
                Some(t) => Response::json(t.clone()),
                None => Response::not_found(),
            }
        }
        "/checkpointz" => {
            let c = shared.ckpt();
            let age = shared.ckpt_age_ms();
            Response::json(format!(
                "{{\"schema\": \"sdcheckerd-checkpoint-v1\", \"enabled\": {}, \
                 \"dir\": {:?}, \"interval_ms\": {}, \"resumed\": {}, \
                 \"generation\": {}, \"writes_total\": {}, \"recoveries_total\": {}, \
                 \"bytes\": {}, \"age_ms\": {}}}\n",
                c.enabled,
                c.dir,
                c.interval_ms,
                c.resumed,
                c.generation
                    .as_ref()
                    .map_or("null".to_string(), |g| format!("{g:?}")),
                c.writes_total,
                c.recoveries_total,
                c.bytes,
                age.map_or("null".to_string(), |a| a.to_string()),
            ))
        }
        "/healthz" => {
            let h = shared.health();
            let age = shared
                .last_progress
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .elapsed()
                .as_millis() as u64;
            let uptime = shared.started.elapsed().as_millis() as u64;
            Response::json(healthz_json(&h, age, uptime))
        }
        "/readyz" => {
            if shared.health().ready {
                Response::json("{\"ready\": true}\n")
            } else {
                Response {
                    status: 503,
                    content_type: "application/json".to_string(),
                    body: b"{\"ready\": false}\n".to_vec(),
                }
            }
        }
        "/buildinfo" => Response::json(format!(
            "{{\"name\": \"sdcheckerd\", \"version\": \"{}\", \
             \"report_schema\": \"sdcheckerd-report-v1\"}}\n",
            env!("CARGO_PKG_VERSION"),
        )),
        _ => Response::not_found(),
    }
}

/// Publish the current pipeline state for the HTTP thread.
fn refresh(
    shared: &Shared,
    tailer: &DirTailer,
    analyzer: &IncrementalAnalyzer,
    polls: u64,
    records: u64,
    ready: bool,
) {
    let lag = tailer.lag();
    let stats = tailer.stats();
    let report = analyzer.live_report_json(Some((&lag, &stats)));
    *shared.report.lock().unwrap_or_else(|e| e.into_inner()) = report;
    let h = Health {
        ready,
        polls,
        records,
        in_flight: analyzer.in_flight() as u64,
        retired: analyzer.retired(),
        truncated: analyzer.truncated(),
        complete: analyzer.complete(),
        late_events: analyzer.late_events(),
        sources: lag.sources,
        lag_bytes: lag.bytes,
        lag_ms: lag.max_ms,
        events_buffered: analyzer.events_buffered() as u64,
        watermark_ms: analyzer.watermark().map(|w| w.0),
        exemplar_apps: analyzer.exemplars().promoted_apps() as u64,
        exemplar_events: analyzer.exemplars().events_retained() as u64,
    };
    *shared.health.lock().unwrap_or_else(|e| e.into_inner()) = h;
}

fn note_retirements(retired: &[RetiredApp], quiet: bool) {
    for r in retired {
        obs::count("sdcheckerd_apps_retired_total", 1);
        if r.forced {
            obs::count("sdcheckerd_apps_forced_total", 1);
        }
        if !quiet {
            let name = r.name.as_deref().unwrap_or("(unnamed)");
            let total = r
                .delays
                .total_ms
                .map(|t| format!("{t} ms total delay"))
                .unwrap_or_else(|| "no complete delay".into());
            eprintln!(
                "retired {} [{name}]: {}, {total}{}",
                r.app,
                r.delays.outcome.label(),
                if r.unused > 0 {
                    format!(", {} unused containers", r.unused)
                } else {
                    String::new()
                },
            );
        }
    }
}

/// The wide-events JSONL output with its crash-safety bookkeeping: the
/// checkpoint records `bytes` as the emission cursor, and a resumed run
/// truncates the file back to that cursor so replayed retirements
/// append exactly the lines the killed run still owed — no duplicates,
/// no torn tails.
struct WideOut {
    w: std::io::BufWriter<std::fs::File>,
    /// Bytes emitted (and flushed by the next checkpoint) so far.
    bytes: u64,
    fsync: bool,
}

impl WideOut {
    fn append(&mut self, line: &str) {
        let _ = self.w.write_all(line.as_bytes());
        let _ = self.w.write_all(b"\n");
        self.bytes += line.len() as u64 + 1;
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
        if self.fsync {
            let _ = self.w.get_ref().sync_all();
        }
    }
}

/// Open the wide-events file. A cold start truncates it; a resumed run
/// opens read-write and cuts it back to the checkpointed emission
/// cursor — dropping both torn tail lines and post-checkpoint lines the
/// replay will re-emit identically — then appends from there.
fn open_wide(
    path: &std::path::Path,
    resume_cursor: Option<u64>,
    fsync: bool,
) -> std::io::Result<WideOut> {
    use std::io::Seek as _;
    let Some(cursor) = resume_cursor else {
        return Ok(WideOut {
            w: std::io::BufWriter::new(std::fs::File::create(path)?),
            bytes: 0,
            fsync,
        });
    };
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)?;
    let len = f.metadata()?.len();
    if len < cursor {
        eprintln!(
            "sdcheckerd: wide-events file {} holds {len} bytes but the checkpoint \
             recorded {cursor}; earlier lines are lost and will not be re-emitted",
            path.display(),
        );
    }
    let cut = cursor.min(len);
    f.set_len(cut)?;
    f.seek(std::io::SeekFrom::End(0))?;
    Ok(WideOut {
        w: std::io::BufWriter::new(f),
        bytes: cut,
        fsync,
    })
}

/// Write `bytes` at `path` atomically (temp file + rename) so a crash
/// mid-write can never leave a torn report or alert log behind.
fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Feed a batch of retirements into the alert engine and the wide-events
/// file (both optional).
fn record_retirements(
    retired: &[RetiredApp],
    engine: &mut Option<AlertEngine>,
    wide_file: &mut Option<WideOut>,
) {
    for r in retired {
        if let Some(e) = engine.as_mut() {
            e.observe_retirement(r.retire_ms, &r.delays);
        }
        if let Some(w) = wide_file.as_mut() {
            w.append(&r.wide_event);
        }
    }
    if !retired.is_empty() {
        if let Some(w) = wide_file.as_mut() {
            w.flush();
        }
    }
}

/// Serialize the full daemon state into the checkpoint store and
/// publish the outcome. A failed save is loud but non-fatal — the
/// previous generation is still on disk.
#[allow(clippy::too_many_arguments)]
fn save_checkpoint(
    store: &CheckpointStore,
    shared: &Shared,
    tailer: &DirTailer,
    analyzer: &IncrementalAnalyzer,
    engine: Option<&AlertEngine>,
    fingerprint: &CfgFingerprint,
    wide_bytes: u64,
    writes_total: &mut u64,
    recoveries: u64,
) {
    let next = *writes_total + 1;
    match checkpoint::save(
        store,
        &SaveInputs {
            tailer,
            analyzer,
            engine,
            fingerprint,
            wide_bytes,
            writes_total: next,
            recoveries,
        },
    ) {
        Ok(bytes) => {
            *writes_total = next;
            obs::count("sd_checkpoint_writes_total", 1);
            {
                let mut c = shared.ckpt.lock().unwrap_or_else(|e| e.into_inner());
                c.writes_total = next;
                c.bytes = bytes;
            }
            *shared
                .ckpt_written
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(Instant::now());
        }
        Err(e) => eprintln!("sdcheckerd: checkpoint save failed: {e}"),
    }
}

/// Log and count alert transitions.
fn note_transitions(transitions: &[Transition], quiet: bool) {
    obs::count(
        "sdcheckerd_alert_transitions_total",
        transitions.len() as u64,
    );
    if quiet {
        return;
    }
    for t in transitions {
        eprintln!(
            "alert {} {} at {} ms (value {:.1})",
            t.rule,
            t.verb(),
            t.at.0,
            t.value,
        );
    }
}

/// Publish the `/alerts` document and per-rule firing flags.
fn publish_alerts(shared: &Shared, engine: &AlertEngine) {
    *shared.alerts.lock().unwrap_or_else(|e| e.into_inner()) = engine.alerts_json();
    let mut map = shared.firing.lock().unwrap_or_else(|e| e.into_inner());
    for (name, f) in engine.firing() {
        map.insert(name.to_string(), f);
    }
}

/// Re-render the `/exemplars` index and per-app traces. Called only when
/// the reservoir generation changes, so steady state does no rebuild work.
fn publish_exemplars(shared: &Shared, analyzer: &IncrementalAnalyzer) {
    let ex = analyzer.exemplars();
    let mut traces = BTreeMap::new();
    for p in ex.iter() {
        if let Some(t) = ex.trace_json(p.app) {
            traces.insert(p.app.to_string(), t);
        }
    }
    *shared.exemplars.lock().unwrap_or_else(|e| e.into_inner()) = ex.index_json();
    *shared
        .exemplar_traces
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = traces;
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some(dir) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if dir.starts_with('-') {
        eprintln!("expected <watch-dir> as the first argument, got {dir}");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let dir = PathBuf::from(dir);
    let mut listen = "127.0.0.1:9464".to_string();
    let mut port_file: Option<PathBuf> = None;
    let mut poll_ms: u64 = 200;
    let mut cfg = IncrementalConfig::default();
    let mut final_report: Option<PathBuf> = None;
    let mut run_for_ms: Option<u64> = None;
    let mut quiet = false;
    let mut slo_ms: u64 = 60_000;
    let mut no_alerts = false;
    let mut alerts_out: Option<PathBuf> = None;
    let mut wide_events_out: Option<PathBuf> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut checkpoint_interval_ms: u64 = 2_000;
    let mut resume_flag: Option<bool> = None;
    let mut fsync_outputs = false;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--quiet" => {
                quiet = true;
                i += 1;
                continue;
            }
            "--no-alerts" => {
                no_alerts = true;
                i += 1;
                continue;
            }
            "--resume" => {
                resume_flag = Some(true);
                i += 1;
                continue;
            }
            "--no-resume" => {
                resume_flag = Some(false);
                i += 1;
                continue;
            }
            "--fsync-outputs" => {
                fsync_outputs = true;
                i += 1;
                continue;
            }
            "--listen"
            | "--port-file"
            | "--poll-ms"
            | "--settle-ms"
            | "--idle-timeout-ms"
            | "--exemplar-slots"
            | "--slo-ms"
            | "--alerts-out"
            | "--wide-events-out"
            | "--final-report"
            | "--run-for-ms"
            | "--checkpoint-dir"
            | "--checkpoint-interval-ms" => {}
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("{flag} requires a value");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        };
        let parse_u64 = |v: &str| -> Option<u64> { v.parse().ok() };
        match flag {
            "--listen" => listen = value.clone(),
            "--port-file" => port_file = Some(PathBuf::from(value)),
            "--final-report" => final_report = Some(PathBuf::from(value)),
            "--poll-ms" => match parse_u64(value) {
                Some(n) if n > 0 => poll_ms = n,
                _ => {
                    eprintln!("invalid --poll-ms value: {value}");
                    return ExitCode::from(2);
                }
            },
            "--settle-ms" => match parse_u64(value) {
                Some(n) => cfg.settle_ms = n,
                None => {
                    eprintln!("invalid --settle-ms value: {value}");
                    return ExitCode::from(2);
                }
            },
            "--idle-timeout-ms" => match parse_u64(value) {
                Some(n) => cfg.idle_timeout_ms = n,
                None => {
                    eprintln!("invalid --idle-timeout-ms value: {value}");
                    return ExitCode::from(2);
                }
            },
            "--exemplar-slots" => match value.parse::<usize>() {
                Ok(n) => cfg.exemplar_slots = n,
                Err(_) => {
                    eprintln!("invalid --exemplar-slots value: {value}");
                    return ExitCode::from(2);
                }
            },
            "--slo-ms" => match parse_u64(value) {
                Some(n) if n > 0 => slo_ms = n,
                _ => {
                    eprintln!("invalid --slo-ms value: {value}");
                    return ExitCode::from(2);
                }
            },
            "--alerts-out" => alerts_out = Some(PathBuf::from(value)),
            "--wide-events-out" => wide_events_out = Some(PathBuf::from(value)),
            "--checkpoint-dir" => checkpoint_dir = Some(PathBuf::from(value)),
            "--checkpoint-interval-ms" => match parse_u64(value) {
                Some(n) if n > 0 => checkpoint_interval_ms = n,
                _ => {
                    eprintln!("invalid --checkpoint-interval-ms value: {value}");
                    return ExitCode::from(2);
                }
            },
            "--run-for-ms" => match parse_u64(value) {
                Some(n) => run_for_ms = Some(n),
                None => {
                    eprintln!("invalid --run-for-ms value: {value}");
                    return ExitCode::from(2);
                }
            },
            _ => {}
        }
        i += 2;
    }
    if resume_flag == Some(true) && checkpoint_dir.is_none() {
        eprintln!("--resume requires --checkpoint-dir");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    obs::enable();
    sdchecker::describe_metrics();
    describe_daemon_metrics();
    install_signal_handlers();

    let mut tailer = match DirTailer::new(&dir) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot tail {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut analyzer = IncrementalAnalyzer::new(cfg);
    let mut engine = if no_alerts {
        None
    } else {
        Some(AlertEngine::new(default_rules(slo_ms), ALERT_EVAL_MS))
    };

    // Crash-only checkpointing: open the store, and (unless --no-resume)
    // restore the newest intact generation before anything is published
    // or written, so every surface reflects the restored state from the
    // first request on.
    let fingerprint = CfgFingerprint {
        settle_ms: cfg.settle_ms,
        idle_timeout_ms: cfg.idle_timeout_ms,
        exemplar_slots: cfg.exemplar_slots as u64,
        alerts: engine.is_some(),
        slo_ms,
        eval_interval_ms: ALERT_EVAL_MS,
    };
    let ckpt_store = match &checkpoint_dir {
        Some(p) => match CheckpointStore::open(p) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cannot open checkpoint dir {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let mut recoveries: u64 = 0;
    let mut ckpt_writes: u64 = 0;
    let mut ckpt_bytes: u64 = 0;
    let mut wide_resume_bytes: Option<u64> = None;
    let mut resumed_generation: Option<&'static str> = None;
    if let Some(store) = &ckpt_store {
        if resume_flag.unwrap_or(true) {
            let (restored, warnings) = checkpoint::load(store, &dir, &fingerprint, engine.as_mut());
            for w in &warnings {
                eprintln!("sdcheckerd: {w}");
            }
            if let Some(r) = restored {
                recoveries = r.recoveries + 1;
                ckpt_writes = r.writes_total;
                ckpt_bytes = r.bytes;
                wide_resume_bytes = Some(r.wide_bytes);
                resumed_generation = Some(r.generation);
                tailer = r.tailer;
                analyzer = r.analyzer;
                if !quiet {
                    eprintln!(
                        "sdcheckerd: resumed from {} checkpoint ({} bytes, {} prior \
                         writes, restart #{recoveries})",
                        r.generation, r.bytes, r.writes_total,
                    );
                }
            }
        }
    }
    if ckpt_store.is_some() {
        obs::count("sd_checkpoint_recoveries_total", recoveries);
        obs::count("sd_checkpoint_writes_total", ckpt_writes);
    }

    let mut wide_file = match &wide_events_out {
        Some(p) => match open_wide(p, wide_resume_bytes, fsync_outputs) {
            Ok(w) => Some(w),
            Err(e) => {
                eprintln!("cannot open wide-events file {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let server = match HttpServer::bind(&listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot listen on {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot resolve listen address: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(p) = &port_file {
        if let Err(e) = std::fs::write(p, format!("{addr}\n")) {
            eprintln!("cannot write port file {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
    }
    if !quiet {
        eprintln!(
            "sdcheckerd: watching {} — listening on http://{addr} \
             (/metrics /report.json /healthz /readyz /buildinfo)",
            dir.display()
        );
    }

    let initial_alerts = engine.as_ref().map_or_else(
        || "{\"schema\": \"sdcheckerd-alerts-v1\", \"rules\": [], \"transitions\": []}\n".into(),
        |e| e.alerts_json(),
    );
    let initial_firing: BTreeMap<String, bool> = engine
        .as_ref()
        .map(|e| e.firing().map(|(n, f)| (n.to_string(), f)).collect())
        .unwrap_or_default();
    let rule_names: Vec<String> = initial_firing.keys().cloned().collect();
    let shared = Arc::new(Shared {
        report: Mutex::new("{\"schema\": \"sdcheckerd-report-v1\"}\n".to_string()),
        health: Mutex::new(Health::default()),
        last_progress: Mutex::new(Instant::now()),
        started: Instant::now(),
        alerts: Mutex::new(initial_alerts),
        firing: Mutex::new(initial_firing),
        exemplars: Mutex::new(analyzer.exemplars().index_json()),
        exemplar_traces: Mutex::new(BTreeMap::new()),
        ckpt: Mutex::new(CkptStatus {
            enabled: ckpt_store.is_some(),
            dir: checkpoint_dir
                .as_ref()
                .map(|p| p.display().to_string())
                .unwrap_or_default(),
            interval_ms: checkpoint_interval_ms,
            resumed: resumed_generation.is_some(),
            generation: resumed_generation.map(str::to_string),
            writes_total: ckpt_writes,
            recoveries_total: recoveries,
            bytes: ckpt_bytes,
        }),
        ckpt_written: Mutex::new(None),
    });
    if resumed_generation.is_some() {
        // The exemplar traces start empty; rebuild them from the
        // restored reservoir so /exemplars/<app>/trace.json works
        // before the next reservoir change.
        publish_exemplars(&shared, &analyzer);
    }
    let gauges = Arc::new(GaugeRegistry::new());
    {
        let s = Arc::clone(&shared);
        gauges.register("sdcheckerd_apps_in_flight", move || {
            s.health().in_flight as f64
        });
        let s = Arc::clone(&shared);
        gauges.register("sdcheckerd_events_buffered", move || {
            s.health().events_buffered as f64
        });
        let s = Arc::clone(&shared);
        gauges.register("sdcheckerd_tail_sources", move || s.health().sources as f64);
        let s = Arc::clone(&shared);
        gauges.register("sdcheckerd_tail_lag_bytes", move || {
            s.health().lag_bytes as f64
        });
        let s = Arc::clone(&shared);
        gauges.register("sdcheckerd_tail_lag_ms", move || s.health().lag_ms as f64);
        let s = Arc::clone(&shared);
        gauges.register("sdcheckerd_uptime_seconds", move || {
            s.started.elapsed().as_secs_f64()
        });
        let s = Arc::clone(&shared);
        gauges.register("process_uptime_seconds", move || {
            s.started.elapsed().as_secs_f64()
        });
        let s = Arc::clone(&shared);
        gauges.register("sdcheckerd_exemplar_apps", move || {
            s.health().exemplar_apps as f64
        });
        let s = Arc::clone(&shared);
        gauges.register("sdcheckerd_exemplar_events", move || {
            s.health().exemplar_events as f64
        });
        if ckpt_store.is_some() {
            let s = Arc::clone(&shared);
            gauges.register("sd_checkpoint_age_ms", move || {
                s.ckpt_age_ms().map_or(0.0, |a| a as f64)
            });
            let s = Arc::clone(&shared);
            gauges.register("sd_checkpoint_bytes", move || s.ckpt().bytes as f64);
        }
        for name in &rule_names {
            let s = Arc::clone(&shared);
            let rule = name.clone();
            gauges.register_labeled("sd_alert_firing", &[("rule", name)], move || {
                let map = s.firing.lock().unwrap_or_else(|e| e.into_inner());
                if map.get(&rule).copied().unwrap_or(false) {
                    1.0
                } else {
                    0.0
                }
            });
        }
    }

    let http_thread = {
        let shared = Arc::clone(&shared);
        let gauges = Arc::clone(&gauges);
        std::thread::spawn(move || server.serve(&SHUTDOWN, |req| handle(req, &shared, &gauges)))
    };

    let deadline = run_for_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut polls: u64 = 0;
    let mut records: u64 = 0;
    // Deltas are measured against the (possibly restored) stats so a
    // resumed run's process-local counters start at zero, not at the
    // whole lineage's totals.
    let mut read_bytes_prev: u64 = tailer.stats().read_bytes;
    let mut removed_prev: u64 = tailer.stats().removed_files;
    let mut late_prev: u64 = analyzer.late_events();
    let mut exemplar_gen: u64 = analyzer.exemplars().generation();
    let ckpt_interval = Duration::from_millis(checkpoint_interval_ms);
    let mut last_ckpt_save: Option<Instant> = None;
    while !SHUTDOWN.load(Ordering::SeqCst) {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                SHUTDOWN.store(true, Ordering::SeqCst);
                break;
            }
        }
        polls += 1;
        obs::count("sdcheckerd_polls_total", 1);
        let poll_started = Instant::now();
        let batch = match tailer.poll() {
            Ok(b) => b,
            Err(e) => {
                obs::count("sdcheckerd_poll_errors_total", 1);
                if !quiet {
                    eprintln!("poll error: {e}");
                }
                Vec::new()
            }
        };
        let n = batch.len() as u64;
        records += n;
        obs::count("sdcheckerd_records_total", n);
        for (src, rec) in &batch {
            if analyzer.ingest(*src, rec) == Outcome::Anomalous {
                if let Some(e) = engine.as_mut() {
                    e.observe_anomalous(rec.ts);
                }
            }
        }
        let stats = tailer.stats();
        obs::count(
            "sdcheckerd_read_bytes_total",
            stats.read_bytes.saturating_sub(read_bytes_prev),
        );
        read_bytes_prev = stats.read_bytes;
        obs::count(
            "sd_tail_files_removed_total",
            stats.removed_files.saturating_sub(removed_prev),
        );
        removed_prev = stats.removed_files;
        let retired = analyzer.drain_ready();
        note_retirements(&retired, quiet);
        record_retirements(&retired, &mut engine, &mut wide_file);
        obs::count(
            "sdcheckerd_late_events_total",
            analyzer.late_events().saturating_sub(late_prev),
        );
        late_prev = analyzer.late_events();
        if n > 0 || !retired.is_empty() {
            *shared
                .last_progress
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Instant::now();
        }
        if let Some(e) = engine.as_mut() {
            e.set_live_lag(tailer.lag().bytes);
            if let Some(w) = analyzer.watermark() {
                let transitions = e.advance(w);
                note_transitions(&transitions, quiet);
            }
            publish_alerts(&shared, e);
        }
        if analyzer.exemplars().generation() != exemplar_gen {
            exemplar_gen = analyzer.exemplars().generation();
            publish_exemplars(&shared, &analyzer);
        }
        refresh(&shared, &tailer, &analyzer, polls, records, true);
        // Crash safety: push every wide line written this tick out of
        // process buffers, then (if due) checkpoint the state that
        // accounts for exactly those bytes.
        if let Some(w) = wide_file.as_mut() {
            w.flush();
        }
        if let Some(store) = &ckpt_store {
            if last_ckpt_save.is_none_or(|t| t.elapsed() >= ckpt_interval) {
                save_checkpoint(
                    store,
                    &shared,
                    &tailer,
                    &analyzer,
                    engine.as_ref(),
                    &fingerprint,
                    wide_file.as_ref().map_or(0, |w| w.bytes),
                    &mut ckpt_writes,
                    recoveries,
                );
                last_ckpt_save = Some(Instant::now());
            }
        }
        obs::observe(
            "sdcheckerd_poll_duration_ms",
            POLL_DURATION_BOUNDS,
            poll_started.elapsed().as_millis() as u64,
        );
        // Sleep in short slices so SIGTERM turns around quickly.
        let mut slept = 0;
        while slept < poll_ms && !SHUTDOWN.load(Ordering::SeqCst) {
            let slice = (poll_ms - slept).min(25);
            std::thread::sleep(Duration::from_millis(slice));
            slept += slice;
        }
    }

    // Drain: one final poll picks up everything flushed before the signal,
    // held-back partial lines become final records (batch parity for a
    // stream whose last line lacks a newline), and every in-flight app
    // retires.
    if let Ok(batch) = tailer.poll() {
        records += batch.len() as u64;
        obs::count("sdcheckerd_records_total", batch.len() as u64);
        for (src, rec) in &batch {
            if analyzer.ingest(*src, rec) == Outcome::Anomalous {
                if let Some(e) = engine.as_mut() {
                    e.observe_anomalous(rec.ts);
                }
            }
        }
    }
    let tail_end = tailer.flush_partial();
    records += tail_end.len() as u64;
    obs::count("sdcheckerd_records_total", tail_end.len() as u64);
    for (src, rec) in &tail_end {
        if analyzer.ingest(*src, rec) == Outcome::Anomalous {
            if let Some(e) = engine.as_mut() {
                e.observe_anomalous(rec.ts);
            }
        }
    }
    let retired = analyzer.finish();
    note_retirements(&retired, quiet);
    record_retirements(&retired, &mut engine, &mut wide_file);
    if let Some(e) = engine.as_mut() {
        // Evaluate one interval past the final watermark so the samples
        // stamped by finish() get a tick, then resolve whatever is left
        // open — the transition log always ends at rest.
        let end = TsMs(
            analyzer
                .watermark()
                .map_or(0, |w| w.0)
                .saturating_add(ALERT_EVAL_MS),
        );
        e.set_live_lag(0);
        let mut transitions = e.advance(end);
        transitions.extend(e.close_out(end));
        note_transitions(&transitions, quiet);
        publish_alerts(&shared, e);
    }
    if analyzer.exemplars().generation() != exemplar_gen {
        publish_exemplars(&shared, &analyzer);
    }
    refresh(&shared, &tailer, &analyzer, polls, records, true);
    if let Some(p) = &alerts_out {
        if let Some(e) = &engine {
            if let Err(err) = write_atomic(p, e.alerts_json().as_bytes()) {
                eprintln!("cannot write alerts file {}: {err}", p.display());
                return ExitCode::FAILURE;
            }
            if !quiet {
                eprintln!("wrote alerts to {}", p.display());
            }
        }
    }
    if let Some(w) = wide_file.as_mut() {
        w.flush();
    }
    if let Some(store) = &ckpt_store {
        // Final checkpoint: the drained, at-rest state. A restart from
        // here has nothing to replay and re-serves the same surfaces.
        save_checkpoint(
            store,
            &shared,
            &tailer,
            &analyzer,
            engine.as_ref(),
            &fingerprint,
            wide_file.as_ref().map_or(0, |w| w.bytes),
            &mut ckpt_writes,
            recoveries,
        );
    }
    if let Some(p) = &final_report {
        let report = shared
            .report
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Err(e) = write_atomic(p, report.as_bytes()) {
            eprintln!("cannot write final report {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!("wrote final report to {}", p.display());
        }
    }
    SHUTDOWN.store(true, Ordering::SeqCst);
    let _ = http_thread.join();
    if !quiet {
        eprintln!(
            "sdcheckerd: {} polls, {} records, {} apps retired ({} truncated), \
             {} in flight at shutdown",
            polls,
            records,
            analyzer.retired(),
            analyzer.truncated(),
            analyzer.in_flight(),
        );
    }
    ExitCode::SUCCESS
}
