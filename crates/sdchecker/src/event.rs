//! Scheduling events: the semantic layer SDchecker extracts from raw log
//! lines, corresponding to Table I of the paper (plus the terminal states
//! needed for job-runtime and bug analysis).

use logmodel::{ApplicationId, ContainerId, LogSource, NodeId, TsMs};

/// The identified scheduling-event kinds. Numbers in the doc comments are
/// the paper's Table-I log-message numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// 1 — `RMAppImpl` reached SUBMITTED: the app registered with the RM.
    /// The start of the total scheduling delay.
    AppSubmitted,
    /// 2 — `RMAppImpl` reached ACCEPTED: the app will be scheduled.
    AppAccepted,
    /// 3 — `RMAppImpl` reached RUNNING on `ATTEMPT_REGISTERED`: the
    /// AppMaster registered. End of the AM delay.
    AttemptRegistered,
    /// `RMAppImpl` reached FINAL_SAVING: the AM unregistered — the job is
    /// functionally complete (used for job runtime).
    AppUnregistered,
    /// `RMAppImpl` reached FINISHED.
    AppFinished,
    /// `RMAppImpl` reached FAILED: every AM attempt failed. Terminal.
    AppFailed,
    /// `RMAppImpl` reached KILLED: the app was killed. Terminal.
    AppKilled,

    /// 4 — `RMContainerImpl` reached ALLOCATED.
    ContainerAllocated,
    /// 5 — `RMContainerImpl` reached ACQUIRED.
    ContainerAcquired,
    /// `RMContainerImpl` reached RUNNING (RM's view).
    ContainerRmRunning,
    /// `RMContainerImpl` reached COMPLETED.
    ContainerCompleted,

    /// 6 — `ContainerImpl` (NM) reached LOCALIZING.
    ContainerLocalizing,
    /// 7 — `ContainerImpl` (NM) reached SCHEDULED.
    ContainerScheduled,
    /// 8 — `ContainerImpl` (NM) reached RUNNING.
    ContainerNmRunning,
    /// `ContainerImpl` (NM) reached DONE.
    ContainerDone,

    /// 9 — first log line of the driver process.
    DriverFirstLog,
    /// 10 — the driver registered with the ResourceManager.
    DriverRegistered,
    /// 11 — the driver started requesting executor containers
    /// (the authors' Spark patch).
    StartAllo,
    /// 12 — all requested executor containers were granted.
    EndAllo,
    /// 13 — first log line of an executor process.
    ExecutorFirstLog,
    /// 14 — a task was assigned to an executor.
    TaskAssigned,
}

impl EventKind {
    /// Every kind, in Table-I-then-terminal order (for iteration in
    /// reports and tests).
    pub const ALL: [EventKind; 21] = [
        EventKind::AppSubmitted,
        EventKind::AppAccepted,
        EventKind::AttemptRegistered,
        EventKind::AppUnregistered,
        EventKind::AppFinished,
        EventKind::AppFailed,
        EventKind::AppKilled,
        EventKind::ContainerAllocated,
        EventKind::ContainerAcquired,
        EventKind::ContainerRmRunning,
        EventKind::ContainerCompleted,
        EventKind::ContainerLocalizing,
        EventKind::ContainerScheduled,
        EventKind::ContainerNmRunning,
        EventKind::ContainerDone,
        EventKind::DriverFirstLog,
        EventKind::DriverRegistered,
        EventKind::StartAllo,
        EventKind::EndAllo,
        EventKind::ExecutorFirstLog,
        EventKind::TaskAssigned,
    ];

    /// Stable display/metric name (used as the `kind` label of the
    /// `extract_events_total` counter).
    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            AppSubmitted => "AppSubmitted",
            AppAccepted => "AppAccepted",
            AttemptRegistered => "AttemptRegistered",
            AppUnregistered => "AppUnregistered",
            AppFinished => "AppFinished",
            AppFailed => "AppFailed",
            AppKilled => "AppKilled",
            ContainerAllocated => "ContainerAllocated",
            ContainerAcquired => "ContainerAcquired",
            ContainerRmRunning => "ContainerRmRunning",
            ContainerCompleted => "ContainerCompleted",
            ContainerLocalizing => "ContainerLocalizing",
            ContainerScheduled => "ContainerScheduled",
            ContainerNmRunning => "ContainerNmRunning",
            ContainerDone => "ContainerDone",
            DriverFirstLog => "DriverFirstLog",
            DriverRegistered => "DriverRegistered",
            StartAllo => "StartAllo",
            EndAllo => "EndAllo",
            ExecutorFirstLog => "ExecutorFirstLog",
            TaskAssigned => "TaskAssigned",
        }
    }

    /// Table-I log-message number, if this kind has one.
    pub fn table1_number(self) -> Option<u8> {
        use EventKind::*;
        Some(match self {
            AppSubmitted => 1,
            AppAccepted => 2,
            AttemptRegistered => 3,
            ContainerAllocated => 4,
            ContainerAcquired => 5,
            ContainerLocalizing => 6,
            ContainerScheduled => 7,
            ContainerNmRunning => 8,
            DriverFirstLog => 9,
            DriverRegistered => 10,
            StartAllo => 11,
            EndAllo => 12,
            ExecutorFirstLog => 13,
            TaskAssigned => 14,
            _ => return None,
        })
    }

    /// Whether the event comes from cluster-scheduler (YARN) logs, as
    /// opposed to application (Spark) logs.
    pub fn is_cluster_side(self) -> bool {
        use EventKind::*;
        !matches!(
            self,
            DriverFirstLog
                | DriverRegistered
                | StartAllo
                | EndAllo
                | ExecutorFirstLog
                | TaskAssigned
        )
    }
}

/// One extracted scheduling event, bound to its global IDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedEvent {
    /// When it was logged.
    pub ts: TsMs,
    /// What happened.
    pub kind: EventKind,
    /// The owning application (always derivable — every Table-I message
    /// carries an application or container id).
    pub app: ApplicationId,
    /// The container, for container-scoped events.
    pub container: Option<ContainerId>,
    /// The NodeManager that logged it, for NM events.
    pub node: Option<NodeId>,
    /// Which log the event came from.
    pub source: LogSource,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_numbers_cover_paper() {
        use EventKind::*;
        let expected = [
            (AppSubmitted, 1),
            (AppAccepted, 2),
            (AttemptRegistered, 3),
            (ContainerAllocated, 4),
            (ContainerAcquired, 5),
            (ContainerLocalizing, 6),
            (ContainerScheduled, 7),
            (ContainerNmRunning, 8),
            (DriverFirstLog, 9),
            (DriverRegistered, 10),
            (StartAllo, 11),
            (EndAllo, 12),
            (ExecutorFirstLog, 13),
            (TaskAssigned, 14),
        ];
        for (k, n) in expected {
            assert_eq!(k.table1_number(), Some(n), "{k:?}");
        }
        assert_eq!(AppFinished.table1_number(), None);
        assert_eq!(ContainerDone.table1_number(), None);
        assert_eq!(AppFailed.table1_number(), None);
        assert_eq!(AppKilled.table1_number(), None);
    }

    #[test]
    fn names_are_unique_and_cover_all() {
        let names: std::collections::BTreeSet<&str> =
            EventKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), EventKind::ALL.len());
        for k in EventKind::ALL {
            assert_eq!(format!("{k:?}"), k.name());
        }
    }

    #[test]
    fn cluster_vs_app_side() {
        assert!(EventKind::AppSubmitted.is_cluster_side());
        assert!(EventKind::ContainerScheduled.is_cluster_side());
        assert!(!EventKind::DriverRegistered.is_cluster_side());
        assert!(!EventKind::TaskAssigned.is_cluster_side());
    }
}
