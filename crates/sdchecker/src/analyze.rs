//! The end-to-end SDchecker pipeline: log store → events → scheduling
//! graphs → delay decomposition → bug report.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use logmodel::{par, ApplicationId, LogStore, Parallelism, TsMs};

use crate::bugs::{find_unused_containers, UnusedContainer};
use crate::decompose::{decompose, AppDelays, AppOutcome};
use crate::event::SchedEvent;
use crate::extract::{extract_all_cov_with, extract_app_names_with, ParseCoverage};
use crate::graph::{build_graphs, SchedulingGraph};
use crate::throughput::{allocation_throughput, Throughput};

/// Full analysis result over one log corpus.
#[derive(Debug)]
pub struct Analysis {
    /// All extracted events, time-sorted.
    pub events: Vec<SchedEvent>,
    /// Per-application scheduling graphs.
    pub graphs: BTreeMap<ApplicationId, SchedulingGraph>,
    /// Per-application delay decompositions, in graph (= ascending
    /// application-id) order. [`Analysis::delays_of`] relies on this
    /// ordering for its binary search.
    pub delays: Vec<AppDelays>,
    /// Allocated-but-never-used containers across all applications.
    pub unused_containers: Vec<UnusedContainer>,
    /// Application display names mined from driver banners (e.g. the
    /// TPC-H query label), where available.
    pub app_names: BTreeMap<ApplicationId, String>,
    /// How much of the corpus the extraction rules understood, per log
    /// family (matched / unmatched / ignored lines).
    pub coverage: ParseCoverage,
    /// The newest record timestamp in the corpus — the log-time
    /// watermark batch analysis ends at. `None` for an empty corpus.
    /// The incremental pipeline's `finish()` retires at exactly this
    /// instant, which is what makes batch wide-event lines byte-equal
    /// to a tailed run's.
    pub watermark: Option<TsMs>,
}

impl Analysis {
    /// Delay record for one application. O(log n): `delays` mirrors the
    /// graph map's ascending application-id order (report rendering calls
    /// this per app, so a linear scan would make rendering quadratic).
    pub fn delays_of(&self, app: ApplicationId) -> Option<&AppDelays> {
        debug_assert!(self.delays.windows(2).all(|w| w[0].app < w[1].app));
        self.delays
            .binary_search_by(|d| d.app.cmp(&app))
            .ok()
            .map(|i| &self.delays[i])
    }

    /// Applications with a complete total-scheduling-delay measurement
    /// (Spark jobs that reached their first task).
    pub fn complete_delays(&self) -> impl Iterator<Item = &AppDelays> {
        self.delays.iter().filter(|d| d.total_ms.is_some())
    }

    /// Collect one component across complete apps, in ms, via an
    /// accessor.
    pub fn component_ms(&self, f: impl Fn(&AppDelays) -> Option<u64>) -> Vec<u64> {
        self.delays.iter().filter_map(f).collect()
    }

    /// All per-container values of a component, in ms. `workers_only`
    /// excludes AM containers.
    pub fn container_component_ms(
        &self,
        workers_only: bool,
        f: impl Fn(&crate::decompose::ContainerDelays) -> Option<u64>,
    ) -> Vec<u64> {
        self.delays
            .iter()
            .flat_map(|d| d.containers.iter())
            .filter(|c| !workers_only || !c.is_am)
            .filter_map(f)
            .collect()
    }

    /// Allocation throughput with the given peak window.
    pub fn allocation_throughput(&self, window_ms: u64) -> Throughput {
        allocation_throughput(&self.events, window_ms)
    }

    /// The mined display name of an application.
    pub fn name_of(&self, app: ApplicationId) -> Option<&str> {
        self.app_names.get(&app).map(String::as_str)
    }

    /// Group complete delay records by mined application name (per-query
    /// breakdowns for a TPC-H trace). Unnamed applications group under
    /// `"(unnamed)"`.
    pub fn by_name(&self) -> BTreeMap<String, Vec<&AppDelays>> {
        let mut out: BTreeMap<String, Vec<&AppDelays>> = BTreeMap::new();
        for d in self.complete_delays() {
            let name = self.name_of(d.app).unwrap_or("(unnamed)").to_string();
            out.entry(name).or_default().push(d);
        }
        out
    }

    /// How many applications ended in each terminal outcome. Every
    /// application in the corpus lands in exactly one bucket, so the
    /// counts sum to `delays.len()` — the conservation property the
    /// corruption fuzz harness checks.
    pub fn outcome_counts(&self) -> BTreeMap<AppOutcome, u64> {
        let mut out = BTreeMap::new();
        for d in &self.delays {
            *out.entry(d.outcome).or_insert(0) += 1;
        }
        out
    }

    /// Applications whose AM was retried at least once.
    pub fn retried_apps(&self) -> impl Iterator<Item = &AppDelays> {
        self.delays.iter().filter(|d| d.attempts > 1)
    }

    /// Total wall-clock time burned inside failed AM attempts across the
    /// corpus, in ms.
    pub fn total_wasted_ms(&self) -> u64 {
        self.delays.iter().map(|d| d.wasted_ms).sum()
    }

    /// Whether the corpus shows any hard failure evidence: a failed or
    /// killed application, a retried AM, wasted delay in dead attempts,
    /// or transition-shaped lines with corrupt ids. Truncated apps alone
    /// do not count — a log capture that simply stops early is not a
    /// cluster failure.
    pub fn has_failures(&self) -> bool {
        self.delays.iter().any(|d| {
            matches!(d.outcome, AppOutcome::Failed | AppOutcome::Killed)
                || d.attempts > 1
                || d.wasted_ms > 0
        }) || self.coverage.total().anomalous > 0
    }
}

/// Run the pipeline over an in-memory store, sequentially.
pub fn analyze_store(store: &LogStore) -> Analysis {
    analyze_store_with(store, Parallelism::ONE)
}

/// Run the pipeline over an in-memory store with `par` worker threads.
///
/// Parallel at two granularities: extraction shards one `Extractor` pass
/// per log stream (merged deterministically — see
/// [`crate::extract::extract_all_with`]), and graph construction, delay
/// decomposition, and bug finding run one task per application. The result
/// is identical for every thread count; `Parallelism::ONE` runs the exact
/// sequential code path on the calling thread.
pub fn analyze_store_with(store: &LogStore, par: Parallelism) -> Analysis {
    let _span = obs::span("analyze");
    let watermark = store
        .sources()
        .flat_map(|s| store.records(s).iter().map(|r| r.ts))
        .max();
    let (events, coverage) = extract_all_cov_with(store, par);
    let app_names = extract_app_names_with(store, par);
    if par.is_sequential() {
        let graphs = {
            let _s = obs::span("graph_build");
            build_graphs(&events)
        };
        let delays: Vec<AppDelays> = {
            let _s = obs::span("decompose");
            graphs.values().map(decompose).collect()
        };
        let unused_containers: Vec<UnusedContainer> = {
            let _s = obs::span("bug_detect");
            graphs.values().flat_map(find_unused_containers).collect()
        };
        flush_analysis_metrics(graphs.len(), unused_containers.len());
        flush_failure_metrics(&delays);
        stream_delay_sketches(&delays);
        return Analysis {
            events,
            graphs,
            delays,
            unused_containers,
            app_names,
            coverage,
            watermark,
        };
    }
    // Partition the (globally sorted) events by owning application; each
    // application's graph, decomposition, and bug scan are independent, so
    // they fan out one task per application. BTreeMap partitioning keeps
    // applications in ascending-id order, matching the sequential path's
    // graph-map iteration order.
    let mut by_app: BTreeMap<ApplicationId, Vec<SchedEvent>> = BTreeMap::new();
    for ev in &events {
        by_app.entry(ev.app).or_default().push(ev.clone());
    }
    let per_app = par::map(par, by_app.into_iter().collect(), |(app, evs)| {
        let _span = obs::span("analyze_app").arg("app", app);
        let (graph, delays, unused) = analyze_app_events(app, &evs);
        (app, graph, delays, unused)
    });
    let mut graphs = BTreeMap::new();
    let mut delays = Vec::with_capacity(per_app.len());
    let mut unused_containers = Vec::new();
    for (app, graph, d, unused) in per_app {
        graphs.insert(app, graph);
        delays.push(d);
        unused_containers.extend(unused);
    }
    flush_analysis_metrics(graphs.len(), unused_containers.len());
    flush_failure_metrics(&delays);
    stream_delay_sketches(&delays);
    Analysis {
        events,
        graphs,
        delays,
        unused_containers,
        app_names,
        coverage,
        watermark,
    }
}

/// Analyze one application from its (time-sorted) event slice: build
/// the scheduling graph, decompose delays, and scan for unused
/// containers. This is the per-app unit both the parallel batch path
/// and the incremental (tailing) pipeline retire applications through,
/// which is what keeps their per-app results identical.
pub fn analyze_app_events(
    app: ApplicationId,
    events: &[SchedEvent],
) -> (SchedulingGraph, AppDelays, Vec<UnusedContainer>) {
    let mut graphs = build_graphs(events);
    // Partitioned events build exactly one graph; if that invariant
    // ever breaks, analyze the app as event-free rather than abort
    // the whole corpus (partial-decomposition semantics).
    let graph = graphs
        .remove(&app)
        .unwrap_or_else(|| SchedulingGraph::empty(app));
    let delays = decompose(&graph);
    let unused = find_unused_containers(&graph);
    (graph, delays, unused)
}

/// Corpus-level analysis counters (no-ops when recording is disabled;
/// both are pure functions of the corpus, so exports stay deterministic).
fn flush_analysis_metrics(apps: usize, unused: usize) {
    if obs::enabled() {
        obs::count("analyze_apps_total", apps as u64);
        obs::count("unused_containers_total", unused as u64);
    }
}

/// Failure-side counters. Each series is emitted only when nonzero so a
/// fault-free corpus exports byte-identical metrics to builds that predate
/// fault awareness. Truncated apps deliberately get no series: a log
/// capture that stops early is routine (the golden corpora contain one),
/// not failure evidence.
fn flush_failure_metrics(delays: &[AppDelays]) {
    if !obs::enabled() {
        return;
    }
    let mut by_outcome: BTreeMap<&'static str, u64> = BTreeMap::new();
    for d in delays {
        if matches!(d.outcome, AppOutcome::Failed | AppOutcome::Killed) {
            *by_outcome.entry(d.outcome.label()).or_insert(0) += 1;
        }
    }
    for (label, n) in by_outcome {
        obs::count_labeled("analyze_app_outcomes_total", &[("outcome", label)], n);
    }
    let retried = delays.iter().filter(|d| d.attempts > 1).count() as u64;
    if retried > 0 {
        obs::count("analyze_retried_apps_total", retried);
    }
    let wasted: u64 = delays.iter().map(|d| d.wasted_ms).sum();
    if wasted > 0 {
        obs::count("analyze_wasted_delay_ms_total", wasted);
    }
}

/// Stream every decomposed delay component into the global quantile
/// sketches (`app_delay_ms{component=…}` / `container_delay_ms{…}`).
/// This is how `run_experiments` aggregates fleet percentiles across an
/// unbounded number of applications without retaining raw samples: the
/// sketch merge is order-independent, so the exported quantiles are
/// identical for every thread count. A no-op when recording is disabled.
fn stream_delay_sketches(delays: &[AppDelays]) {
    if !obs::enabled() {
        return;
    }
    for d in delays {
        stream_one_delay_sketches(d);
    }
}

/// Stream one application's delay components into the global sketches.
/// The incremental pipeline calls this at retirement time, so a live
/// `/metrics` scrape sees the same `app_delay_ms`/`container_delay_ms`
/// summaries a batch run would export at end-of-run.
pub(crate) fn stream_one_delay_sketches(d: &AppDelays) {
    use crate::decompose::{APP_COMPONENTS, CONTAINER_COMPONENTS};
    for (name, f) in APP_COMPONENTS.iter() {
        if let Some(v) = f(d) {
            obs::sketch_observe_labeled("app_delay_ms", &[("component", name)], v);
        }
    }
    for c in &d.containers {
        for (name, f) in CONTAINER_COMPONENTS.iter() {
            if let Some(v) = f(c) {
                obs::sketch_observe_labeled("container_delay_ms", &[("component", name)], v);
            }
        }
    }
}

/// Register `# HELP` strings for every metric family the pipeline can
/// emit, so Prometheus exposition is self-describing. Binaries call
/// this once at startup; it is idempotent.
pub fn describe_metrics() {
    obs::describe("ingest_files_total", "Log files discovered during ingest");
    obs::describe(
        "ingest_lines_total",
        "Ingested log lines by parse status (parsed/skipped)",
    );
    obs::describe("ingest_file_lines", "Lines per ingested log file");
    obs::describe(
        "extract_events_total",
        "Scheduling events extracted, by event kind",
    );
    obs::describe(
        "parse_lines_total",
        "Log lines classified by the extraction rules, by source family and status",
    );
    obs::describe("extract_stream_events", "Extracted events per log stream");
    obs::describe("analyze_apps_total", "Applications analyzed");
    obs::describe(
        "unused_containers_total",
        "Containers allocated by the RM but never used by the app (SPARK-21562 signature)",
    );
    obs::describe(
        "analyze_app_outcomes_total",
        "Applications that ended in a hard failure outcome (failed/killed)",
    );
    obs::describe(
        "analyze_retried_apps_total",
        "Applications whose ApplicationMaster was retried at least once",
    );
    obs::describe(
        "analyze_wasted_delay_ms_total",
        "Wall-clock time burned inside failed AM attempts, in ms",
    );
    obs::describe(
        "app_delay_ms",
        "Per-application scheduling-delay components, in ms",
    );
    obs::describe(
        "container_delay_ms",
        "Per-container scheduling-delay components, in ms",
    );
    obs::describe(
        "analyze_threads_requested",
        "Worker threads requested via --threads (or auto)",
    );
    obs::describe(
        "analyze_threads_effective",
        "Worker threads actually used after clamping to hardware parallelism",
    );
}

/// Run the pipeline over a log directory (the CLI path: what the paper's
/// tool does offline after collecting cluster and application logs),
/// sequentially.
pub fn analyze_dir(dir: &Path) -> io::Result<Analysis> {
    analyze_dir_with(dir, Parallelism::ONE)
}

/// [`analyze_dir`] with `par` worker threads: directory ingest parses one
/// log file per task, then the in-memory analysis fans out per stream and
/// per application. Identical output for every thread count.
pub fn analyze_dir_with(dir: &Path, par: Parallelism) -> io::Result<Analysis> {
    let store = LogStore::read_dir_with(dir, par)?;
    Ok(analyze_store_with(&store, par))
}

#[cfg(test)]
mod tests {
    use super::*;
    use logmodel::{Epoch, LogSource, TsMs};

    /// Assemble a miniature but complete two-app log corpus by hand and
    /// run the full pipeline on it.
    fn mini_corpus() -> LogStore {
        let epoch = Epoch::default_run();
        let mut s = LogStore::new(epoch);
        let cts = epoch.unix_ms;
        for seq in 1..=2u32 {
            let a = ApplicationId::new(cts, seq);
            let base = (seq as u64 - 1) * 60_000;
            let am = a.attempt(1).container(1);
            let ex = a.attempt(1).container(2);
            let rm = LogSource::ResourceManager;
            s.info(
                rm,
                TsMs(base + 100),
                "RMAppImpl",
                format!("{a} State change from NEW_SAVING to SUBMITTED on event = APP_NEW_SAVED"),
            );
            s.info(
                rm,
                TsMs(base + 120),
                "RMAppImpl",
                format!("{a} State change from SUBMITTED to ACCEPTED on event = APP_ACCEPTED"),
            );
            s.info(
                rm,
                TsMs(base + 150),
                "RMContainerImpl",
                format!("{am} Container Transitioned from NEW to ALLOCATED"),
            );
            s.info(
                rm,
                TsMs(base + 151),
                "RMContainerImpl",
                format!("{am} Container Transitioned from ALLOCATED to ACQUIRED"),
            );
            let nm = LogSource::NodeManager(logmodel::NodeId(seq));
            s.info(
                nm,
                TsMs(base + 160),
                "ContainerImpl",
                format!("Container {am} transitioned from NEW to LOCALIZING"),
            );
            s.info(
                nm,
                TsMs(base + 700),
                "ContainerImpl",
                format!("Container {am} transitioned from LOCALIZING to SCHEDULED"),
            );
            s.info(
                nm,
                TsMs(base + 705),
                "ContainerImpl",
                format!("Container {am} transitioned from SCHEDULED to RUNNING"),
            );
            let drv = LogSource::Driver(a);
            s.info(
                drv,
                TsMs(base + 1400),
                "ApplicationMaster",
                format!("Starting ApplicationMaster for tpch-q{seq:02}"),
            );
            s.info(
                drv,
                TsMs(base + 4400),
                "ApplicationMaster",
                "Registered with ResourceManager as attempt",
            );
            s.info(
                rm,
                TsMs(base + 4400),
                "RMAppImpl",
                format!("{a} State change from ACCEPTED to RUNNING on event = ATTEMPT_REGISTERED"),
            );
            s.info(
                drv,
                TsMs(base + 4401),
                "YarnAllocator",
                "START_ALLO Requesting 1 executor containers",
            );
            s.info(
                rm,
                TsMs(base + 4500),
                "RMContainerImpl",
                format!("{ex} Container Transitioned from NEW to ALLOCATED"),
            );
            s.info(
                rm,
                TsMs(base + 5400),
                "RMContainerImpl",
                format!("{ex} Container Transitioned from ALLOCATED to ACQUIRED"),
            );
            s.info(
                drv,
                TsMs(base + 5400),
                "YarnAllocator",
                "END_ALLO All 1 requested executor containers allocated",
            );
            s.info(
                nm,
                TsMs(base + 5420),
                "ContainerImpl",
                format!("Container {ex} transitioned from NEW to LOCALIZING"),
            );
            s.info(
                nm,
                TsMs(base + 5920),
                "ContainerImpl",
                format!("Container {ex} transitioned from LOCALIZING to SCHEDULED"),
            );
            s.info(
                nm,
                TsMs(base + 5925),
                "ContainerImpl",
                format!("Container {ex} transitioned from SCHEDULED to RUNNING"),
            );
            let exl = LogSource::Executor(ex);
            s.info(
                exl,
                TsMs(base + 6625),
                "CoarseGrainedExecutorBackend",
                "Started executor",
            );
            s.info(
                exl,
                TsMs(base + 11_000),
                "Executor",
                "Got assigned task 0 in stage 0.0 (TID 0)",
            );
            s.info(
                rm,
                TsMs(base + 40_100),
                "RMAppImpl",
                format!(
                    "{a} State change from RUNNING to FINAL_SAVING on event = ATTEMPT_UNREGISTERED"
                ),
            );
        }
        s
    }

    #[test]
    fn pipeline_end_to_end() {
        let store = mini_corpus();
        let an = analyze_store(&store);
        assert_eq!(an.graphs.len(), 2);
        assert_eq!(an.delays.len(), 2);
        assert_eq!(an.complete_delays().count(), 2);
        for d in &an.delays {
            assert_eq!(d.total_ms, Some(10_900));
            assert_eq!(d.am_ms, Some(4_300));
            assert_eq!(d.driver_ms, Some(3_000));
            assert_eq!(d.executor_ms, Some(4_375));
            assert_eq!(d.alloc_ms, Some(999));
            assert_eq!(d.job_runtime_ms, Some(40_000));
        }
        assert!(an.unused_containers.is_empty());
    }

    #[test]
    fn component_collection() {
        let an = analyze_store(&mini_corpus());
        let totals = an.component_ms(|d| d.total_ms);
        assert_eq!(totals, vec![10_900, 10_900]);
        let locals = an.container_component_ms(true, |c| c.localization_ms);
        assert_eq!(locals, vec![500, 500]);
        let all_locals = an.container_component_ms(false, |c| c.localization_ms);
        assert_eq!(all_locals.len(), 4);
    }

    #[test]
    fn dir_roundtrip_matches_in_memory() {
        let store = mini_corpus();
        let dir = std::env::temp_dir().join(format!("sdchecker_an_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        store.write_dir(&dir).unwrap();
        let from_dir = analyze_dir(&dir).unwrap();
        let in_mem = analyze_store(&store);
        assert_eq!(from_dir.events.len(), in_mem.events.len());
        assert_eq!(from_dir.delays.len(), in_mem.delays.len());
        for (a, b) in from_dir.delays.iter().zip(in_mem.delays.iter()) {
            assert_eq!(a.total_ms, b.total_ms);
            assert_eq!(a.containers.len(), b.containers.len());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn names_mined_and_grouped() {
        let an = analyze_store(&mini_corpus());
        assert_eq!(an.app_names.len(), 2);
        assert_eq!(
            an.name_of(ApplicationId::new(
                an.app_names.keys().next().unwrap().cluster_ts,
                1
            )),
            Some("tpch-q01")
        );
        let by_name = an.by_name();
        assert_eq!(by_name.len(), 2);
        assert!(by_name.contains_key("tpch-q01"));
        assert!(by_name.contains_key("tpch-q02"));
        assert_eq!(by_name["tpch-q01"].len(), 1);
    }

    #[test]
    fn coverage_rides_along_and_is_thread_count_independent() {
        use crate::extract::SourceKind;
        let store = mini_corpus();
        let an = analyze_store(&store);
        assert!(an.coverage.get(SourceKind::ResourceManager).matched > 0);
        assert!(an.coverage.get(SourceKind::NodeManager).matched > 0);
        assert_eq!(an.coverage.total().unmatched, 0);
        let par = analyze_store_with(&store, Parallelism::new(4));
        assert_eq!(par.coverage, an.coverage);
    }

    #[test]
    fn throughput_over_corpus() {
        let an = analyze_store(&mini_corpus());
        let t = an.allocation_throughput(1000);
        assert_eq!(t.total, 4); // 2 apps × (AM + executor)
    }

    #[test]
    fn outcome_accounting_conserves_every_app() {
        let an = analyze_store(&mini_corpus());
        let counts = an.outcome_counts();
        assert_eq!(counts.values().sum::<u64>(), an.delays.len() as u64);
        assert_eq!(counts.get(&AppOutcome::Completed), Some(&2));
        assert_eq!(an.retried_apps().count(), 0);
        assert_eq!(an.total_wasted_ms(), 0);
        assert!(!an.has_failures());
    }
}
