//! Application-time Perfetto traces: the scheduling graph as a slice
//! timeline in *log time*, not wall-clock time.
//!
//! `obs::export` already renders the analysis pipeline's own spans in
//! wall time; this module reuses the same [`TraceEvents`] writer but
//! feeds it the **simulated/log clock** — every `ts` is the event's
//! `TsMs` (milliseconds since the run epoch) converted to microseconds.
//! One Perfetto *process* per application, one *thread* lane per entity
//! (app, RM, driver, the critical path, and each container), one slice
//! per named delay component of [`decompose`](crate::decompose), and
//! flow arrows chaining the [`critical_path`](crate::critical) segments.
//! Open the file in <https://ui.perfetto.dev> and the paper's Fig 10
//! picture — executors idling while the driver initializes — is directly
//! visible, per application, with exact component boundaries.

use obs::export::TraceEvents;

use logmodel::TsMs;

use crate::analyze::Analysis;
use crate::critical::critical_path;
use crate::event::EventKind;
use crate::graph::{ContainerTrack, SchedulingGraph};

/// Reserved lane ids inside each application's process group.
const TID_APP: u64 = 0;
const TID_RM: u64 = 1;
const TID_DRIVER: u64 = 2;
const TID_CRITICAL: u64 = 3;
const TID_CONTAINERS: u64 = 4;

fn us(t: TsMs) -> u64 {
    t.0 * 1000
}

/// Emit one component slice when both endpoints exist and are ordered;
/// returns the slice's `(from, to)` when emitted.
#[allow(clippy::too_many_arguments)]
fn slice(
    t: &mut TraceEvents,
    pid: u64,
    tid: u64,
    name: &str,
    from: Option<TsMs>,
    to: Option<TsMs>,
    args: &[(&str, String)],
) -> Option<(TsMs, TsMs)> {
    let (from, to) = (from?, to?);
    if to < from {
        return None;
    }
    let mut all = vec![("dur_ms", to.since(from).to_string())];
    all.extend(args.iter().map(|(k, v)| (*k, v.clone())));
    t.complete(
        pid,
        tid,
        name,
        us(from),
        us(to).saturating_sub(us(from)),
        &all,
    );
    Some((from, to))
}

/// One container's lane. `first_log` is the instance's first log line —
/// the driver banner for the AM, the executor banner otherwise, matching
/// `decompose_container`.
fn container_lane(
    t: &mut TraceEvents,
    pid: u64,
    tid: u64,
    c: &ContainerTrack,
    first_log: Option<TsMs>,
) {
    use EventKind::*;
    let role = if c.is_am() { "am" } else { "exec" };
    let node = c
        .node
        .map(|n| n.to_string())
        .unwrap_or_else(|| "?".to_string());
    t.thread_name(pid, tid, &format!("{role} {}", c.cid));
    let args = vec![
        ("cid", c.cid.to_string()),
        ("node", node),
        ("is_am", c.is_am().to_string()),
    ];
    slice(
        t,
        pid,
        tid,
        "acquisition",
        c.first(ContainerAllocated),
        c.first(ContainerAcquired),
        &args,
    );
    slice(
        t,
        pid,
        tid,
        "localization",
        c.first(ContainerLocalizing),
        c.first(ContainerScheduled),
        &args,
    );
    let launch = slice(
        t,
        pid,
        tid,
        "launching",
        c.first(ContainerScheduled),
        first_log,
        &args,
    );
    // NM queueing nests inside launching; skip it when evidence is
    // inconsistent (it would overlap instead of nest).
    if let Some((_, launch_end)) = launch {
        if let Some(running) = c.first(ContainerNmRunning) {
            if running <= launch_end {
                slice(
                    t,
                    pid,
                    tid,
                    "nm_queue",
                    c.first(ContainerScheduled),
                    Some(running),
                    &args,
                );
            }
        }
    }
    if !c.is_am() {
        slice(
            t,
            pid,
            tid,
            "executor_idle",
            c.first(ExecutorFirstLog),
            c.first(TaskAssigned),
            &args,
        );
    }
}

/// Emit one application's lanes into an existing trace document.
///
/// `pid` must be unique per application within the document (the
/// application sequence number is the natural choice); `name` is the
/// mined display name, when available.
pub fn app_trace_into(t: &mut TraceEvents, g: &SchedulingGraph, pid: u64, name: Option<&str>) {
    use EventKind::*;
    let title = match name {
        Some(n) => format!("{} ({n})", g.app),
        None => g.app.to_string(),
    };
    t.process_name(pid, &title);
    t.thread_name(pid, TID_APP, "app");
    t.thread_name(pid, TID_RM, "rm");
    t.thread_name(pid, TID_DRIVER, "driver");
    t.thread_name(pid, TID_CRITICAL, "critical path");

    let submitted = g.first(AppSubmitted);
    let first_task = g
        .worker_containers()
        .filter_map(|c| c.first(TaskAssigned))
        .min();
    let app_args = vec![("app", g.app.to_string())];

    // App lane: the end-to-end delay with its two big sub-phases. All
    // three nest inside `total_scheduling_delay` by construction (the AM
    // registers and executors log before the first task can exist), so
    // the lane renders as a proper slice stack.
    slice(
        t,
        pid,
        TID_APP,
        "total_scheduling_delay",
        submitted,
        first_task,
        &app_args,
    );
    let registered = g
        .first(AttemptRegistered)
        .filter(|r| first_task.is_none_or(|ft| *r <= ft));
    slice(
        t, pid, TID_APP, "am_delay", submitted, registered, &app_args,
    );
    slice(
        t,
        pid,
        TID_APP,
        "executor_delay",
        g.first_worker(ExecutorFirstLog),
        first_task,
        &app_args,
    );

    // RM lane: admission, then the RM-side wait for the AM container.
    let accepted = g.first(AppAccepted);
    slice(t, pid, TID_RM, "admission", submitted, accepted, &app_args);
    slice(
        t,
        pid,
        TID_RM,
        "am_scheduling",
        accepted,
        g.am_container().and_then(|c| c.first(ContainerAllocated)),
        &app_args,
    );

    // Driver lane: driver init, then the allocation round-trip.
    slice(
        t,
        pid,
        TID_DRIVER,
        "driver_delay",
        g.first(DriverFirstLog),
        g.first(DriverRegistered),
        &app_args,
    );
    slice(
        t,
        pid,
        TID_DRIVER,
        "allocation",
        g.first(StartAllo),
        g.first(EndAllo),
        &app_args,
    );

    // Critical-path lane: the tiling of submitted → first task, plus flow
    // arrows chaining consecutive segments. Arrow anchors sit at slice
    // midpoints so renderers bind them to the enclosing slice.
    if let Some(p) = critical_path(g) {
        for seg in &p.segments {
            slice(
                t,
                pid,
                TID_CRITICAL,
                seg.component,
                Some(seg.from),
                Some(seg.to),
                &[
                    ("entity", seg.entity.clone()),
                    ("blame_pct", format!("{:.1}", p.blame_pct(seg))),
                ],
            );
        }
        let mid = |s: &crate::critical::CriticalSegment| us(s.from) + (us(s.to) - us(s.from)) / 2;
        for (i, pair) in p.segments.windows(2).enumerate() {
            let id = pid * 10_000 + i as u64;
            t.flow_start(pid, TID_CRITICAL, id, "critical", mid(&pair[0]));
            t.flow_end(pid, TID_CRITICAL, id, "critical", mid(&pair[1]));
        }
    }

    // One lane per container. The AM's first log is the driver banner,
    // which lives on the app event track.
    for (i, c) in g.containers.values().enumerate() {
        let tid = TID_CONTAINERS + i as u64;
        let first_log = if c.is_am() {
            g.first(DriverFirstLog)
        } else {
            c.first(ExecutorFirstLog)
        };
        container_lane(t, pid, tid, c, first_log);
    }
}

/// Render every analyzed application as one Chrome-trace/Perfetto JSON
/// document in log time: one process per application, one lane per
/// entity. The back-end of every binary's `--app-trace-out` flag.
pub fn corpus_app_trace(an: &Analysis) -> String {
    let mut t = TraceEvents::new();
    for g in an.graphs.values() {
        let pid = g.app.seq as u64;
        app_trace_into(&mut t, g, pid, an.name_of(g.app));
    }
    t.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SchedEvent;
    use crate::graph::build_graphs;
    use logmodel::{ApplicationId, ContainerId, LogSource};
    use obs::json;

    const CTS: u64 = 1_521_018_000_000;

    fn mk(
        ts: u64,
        kind: EventKind,
        app: ApplicationId,
        container: Option<ContainerId>,
    ) -> SchedEvent {
        SchedEvent {
            ts: TsMs(ts),
            kind,
            app,
            container,
            node: None,
            source: LogSource::ResourceManager,
        }
    }

    fn full_graph() -> SchedulingGraph {
        use EventKind::*;
        let a = ApplicationId::new(CTS, 1);
        let am = a.attempt(1).container(1);
        let e1 = a.attempt(1).container(2);
        let evs = vec![
            mk(1_000, AppSubmitted, a, None),
            mk(1_020, AppAccepted, a, None),
            mk(1_100, ContainerAllocated, a, Some(am)),
            mk(1_101, ContainerAcquired, a, Some(am)),
            mk(1_110, ContainerLocalizing, a, Some(am)),
            mk(1_700, ContainerScheduled, a, Some(am)),
            mk(1_705, ContainerNmRunning, a, Some(am)),
            mk(2_400, DriverFirstLog, a, None),
            mk(5_400, DriverRegistered, a, None),
            mk(5_400, AttemptRegistered, a, None),
            mk(5_401, StartAllo, a, None),
            mk(5_600, ContainerAllocated, a, Some(e1)),
            mk(6_400, ContainerAcquired, a, Some(e1)),
            mk(6_400, EndAllo, a, None),
            mk(6_420, ContainerLocalizing, a, Some(e1)),
            mk(6_920, ContainerScheduled, a, Some(e1)),
            mk(6_925, ContainerNmRunning, a, Some(e1)),
            mk(7_620, ExecutorFirstLog, a, Some(e1)),
            mk(13_000, TaskAssigned, a, Some(e1)),
        ];
        build_graphs(&evs).remove(&a).unwrap()
    }

    fn trace_of(g: &SchedulingGraph) -> json::Json {
        let mut t = TraceEvents::new();
        app_trace_into(&mut t, g, 1, Some("tpch-q01"));
        json::parse(&t.finish()).expect("app trace must be valid JSON")
    }

    #[test]
    fn timestamps_are_log_time_microseconds() {
        let g = full_graph();
        let doc = trace_of(&g);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let total = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("total_scheduling_delay"))
            .unwrap();
        // Submitted at 1000 ms of log time → ts 1_000_000 µs; 12 s total.
        assert_eq!(total.get("ts").unwrap().as_f64(), Some(1_000_000.0));
        assert_eq!(total.get("dur").unwrap().as_f64(), Some(12_000_000.0));
    }

    #[test]
    fn lanes_and_process_are_named() {
        let g = full_graph();
        let doc = trace_of(&g);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let meta_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
            })
            .collect();
        assert!(meta_names.iter().any(|n| n.contains("tpch-q01")));
        for lane in ["app", "rm", "driver", "critical path"] {
            assert!(meta_names.contains(&lane), "missing lane {lane}");
        }
        assert!(meta_names.iter().any(|n| n.starts_with("am container_")));
        assert!(meta_names.iter().any(|n| n.starts_with("exec container_")));
    }

    #[test]
    fn critical_lane_tiles_the_total_and_flows_connect() {
        let g = full_graph();
        let doc = trace_of(&g);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let crit: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("tid").and_then(|t| t.as_f64()) == Some(TID_CRITICAL as f64)
            })
            .collect();
        assert!(!crit.is_empty());
        let sum: f64 = crit
            .iter()
            .map(|e| e.get("dur").unwrap().as_f64().unwrap())
            .sum();
        assert_eq!(sum, 12_000_000.0, "critical tiles must sum to the total");
        let starts = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("f"))
            .count();
        assert_eq!(starts, crit.len() - 1);
        assert_eq!(starts, ends);
    }

    #[test]
    fn slices_nest_or_tile_per_lane() {
        let g = full_graph();
        let doc = trace_of(&g);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let mut by_lane: std::collections::BTreeMap<u64, Vec<(u64, u64)>> = Default::default();
        for e in events {
            if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
                continue;
            }
            let tid = e.get("tid").unwrap().as_f64().unwrap() as u64;
            let ts = e.get("ts").unwrap().as_f64().unwrap() as u64;
            let dur = e.get("dur").unwrap().as_f64().unwrap() as u64;
            by_lane.entry(tid).or_default().push((ts, ts + dur));
        }
        for (tid, slices) in by_lane {
            for (i, a) in slices.iter().enumerate() {
                for b in slices.iter().skip(i + 1) {
                    let disjoint = a.1 <= b.0 || b.1 <= a.0;
                    let nested = (a.0 <= b.0 && b.1 <= a.1) || (b.0 <= a.0 && a.1 <= b.1);
                    assert!(
                        disjoint || nested,
                        "lane {tid}: slices {a:?} and {b:?} overlap without nesting"
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_graph_produces_a_valid_trace() {
        use EventKind::*;
        let a = ApplicationId::new(CTS, 7);
        let evs = vec![mk(0, AppSubmitted, a, None), mk(10, AppAccepted, a, None)];
        let g = build_graphs(&evs).remove(&a).unwrap();
        let doc = trace_of(&g);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Admission is the only measurable slice; no critical path exists.
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("admission")));
        assert!(!events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s")));
    }
}
